#include "dataplane/wcmp.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace rwc::dataplane {

namespace {

// fmix64 of MurmurHash3 / splitmix64 finalizer: a cheap full-avalanche
// mix. The dataplane never uses Rng in its hot loop — placement must be a
// pure function of identities, not of draw order.
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

inline std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return mix(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

// Uniform in (0, 1]: never 0, so -ln(u) is finite.
inline double to_unit(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

std::uint64_t path_identity(std::span<const graph::EdgeId> edges) {
  std::uint64_t h = 0x1c0ffee0d00dull;
  for (const graph::EdgeId edge : edges)
    h = combine(h, static_cast<std::uint64_t>(edge.value));
  return h;
}

std::uint64_t flowlet_key(std::uint32_t od, std::uint32_t flowlet,
                          std::uint64_t salt) {
  return combine(combine(salt, od), flowlet);
}

std::size_t wcmp_pick(std::uint64_t key, std::span<const double> weights,
                      std::span<const std::uint64_t> identities) {
  RWC_CHECK_MSG(!weights.empty(), "wcmp_pick: no candidate paths");
  RWC_CHECK_MSG(weights.size() == identities.size(),
                "wcmp_pick: weights/identities size mismatch");
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  bool any_positive = false;
  for (std::size_t p = 0; p < weights.size(); ++p) {
    if (!(weights[p] > 0.0)) continue;
    any_positive = true;
    const double u = to_unit(combine(key, identities[p]));
    const double score = -std::log(u) / weights[p];
    if (score < best_score) {
      best_score = score;
      best = p;
    }
  }
  // All-zero weights (an OD the plan routed at volume 0): fall back to the
  // deterministic first path so the flowlet still has a pipeline to drain.
  if (!any_positive) return 0;
  return best;
}

}  // namespace rwc::dataplane
