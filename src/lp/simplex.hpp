// A self-contained dense two-phase primal simplex LP solver.
//
// This is the "LP solver substrate" for the SWAN-style TE engine (path-based
// multi-commodity flow). It targets the small/medium instances WAN TE
// produces (hundreds of rows/columns); no sparsity or factorization tricks
// on the cold path.
//
// Model: optimize c'x subject to linear constraints, x >= 0. Finite upper
// bounds are lowered to explicit constraints at solve time.
//
// Warm starts (docs/SOLVERS.md): an optimal solve can record its pivot
// sequence into a PivotRecording keyed by two fingerprints — exact (every
// input bit) and structural (everything EXCEPT right-hand-side magnitudes;
// rhs signs are included because the tableau's sign normalization flips row
// cells on negative rhs). In the dense tableau, every non-rhs cell and
// every reduced cost evolve independently of rhs values, so across an
// RHS-ONLY perturbation — exactly what capacity/demand changes produce in
// the SWAN LPs — the entering-column choices are provably identical and
// only the ratio test (leaving row) can differ. Replay therefore
// re-executes the recorded pivots on a tableau restricted to the columns
// that ever pivot (O(m · pivots²) instead of O(m · n · pivots)), verifying
// each leaving row by replicating the exact ratio test; any mismatch falls
// back to a cold dense solve. Replayed results are bit-identical to cold
// solves by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rwc::lp {

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(LpStatus status);

/// One term of a linear expression: coefficient * variable.
struct Term {
  int variable = -1;
  double coefficient = 0.0;
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // per variable, empty unless optimal

  bool optimal() const { return status == LpStatus::kOptimal; }
};

/// Exact + structural fingerprints of an LpProblem (see header comment).
struct LpFingerprints {
  std::uint64_t exact = 0;
  std::uint64_t structural = 0;
};

/// Recording of one optimal solve's pivot sequence plus its solution.
/// Immutable once stored in an LpWarmCache; safe to share across threads.
struct PivotRecording {
  enum class PivotKind : std::uint8_t {
    kPhase1,           ///< phase-1 iterate pivot (ratio test verified)
    kDriveArtificial,  ///< post-feasibility artificial drive-out
    kPhase2,           ///< phase-2 iterate pivot (ratio test verified)
  };
  struct Pivot {
    int row = -1;
    int col = -1;
    PivotKind kind = PivotKind::kPhase1;
  };

  std::uint64_t exact_fingerprint = 0;
  std::uint64_t structural_fingerprint = 0;
  std::vector<Pivot> pivots;
  /// The recorded solve's optimal solution — returned directly on an
  /// exact-fingerprint match (whole-solution memo).
  LpSolution solution;

  bool empty() const { return exact_fingerprint == 0; }
};

/// Thread-safe store of pivot recordings keyed by STRUCTURAL fingerprint
/// (one recording per structure, latest wins) with FIFO eviction. Shared
/// by repeated solves of rhs-perturbed problems (SwanTe across controller
/// rounds); safe under concurrent solvers because replay output is
/// bit-identical to a cold solve — the cache only changes timing.
class LpWarmCache {
 public:
  explicit LpWarmCache(std::size_t max_entries = 512);

  /// The recording for `structural_fingerprint`, or nullptr.
  std::shared_ptr<const PivotRecording> find(
      std::uint64_t structural_fingerprint) const;

  /// Stores (or replaces) the recording under its structural fingerprint.
  void store(std::shared_ptr<const PivotRecording> recording);

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const PivotRecording>>
      entries_;
  std::deque<std::uint64_t> insertion_order_;  // FIFO eviction queue
};

/// Linear program builder. Variables are implicitly >= 0.
class LpProblem {
 public:
  /// A stored constraint row (public so solver helpers can share the
  /// tableau-construction logic between the cold and replay paths).
  struct Row {
    std::vector<Term> terms;
    Relation relation = Relation::kLessEqual;
    double rhs = 0.0;
  };

  explicit LpProblem(Sense sense = Sense::kMinimize) : sense_(sense) {}

  /// Adds a variable with the given objective coefficient and optional
  /// finite upper bound; returns its index.
  int add_variable(double objective_coefficient,
                   double upper_bound = std::numeric_limits<double>::infinity(),
                   std::string name = {});

  /// Adds a constraint sum(terms) REL rhs. Terms may repeat a variable
  /// (coefficients are accumulated).
  void add_constraint(std::vector<Term> terms, Relation relation, double rhs);

  void set_sense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  int variable_count() const { return static_cast<int>(objective_.size()); }
  int constraint_count() const { return static_cast<int>(rows_.size()); }
  const std::string& variable_name(int v) const;
  const std::vector<Row>& rows() const { return rows_; }
  double objective_coefficient(int v) const;
  double upper_bound(int v) const;

  /// Fingerprints of this problem (names excluded; they never affect the
  /// solve). Structural hashes rhs SIGNS but not magnitudes.
  LpFingerprints fingerprints() const;

  /// Solves with the two-phase primal simplex.
  LpSolution solve() const;

  /// Warm-started solve: exact-fingerprint memo, then verified pivot
  /// replay on a structural match, then cold (recording into `cache` when
  /// optimal). Results are bit-identical to solve() on every path; the
  /// cache only changes timing (counted under lp.basis_reuse_* —
  /// docs/OBSERVABILITY.md). nullptr cache degrades to solve().
  LpSolution solve(LpWarmCache* cache) const;

 private:
  LpSolution solve_cold(PivotRecording* recording) const;
  /// Replays `recording` with ratio-test verification. Returns true and
  /// fills `out` when the replay completes (kOptimal, or kInfeasible when
  /// the perturbed rhs fails the phase-1 feasibility check exactly as a
  /// cold solve would); false on any divergence (caller solves cold).
  bool try_replay(const PivotRecording& recording, LpSolution& out) const;

  Sense sense_;
  std::vector<double> objective_;
  std::vector<double> upper_bounds_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace rwc::lp
