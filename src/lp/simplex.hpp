// A self-contained dense two-phase primal simplex LP solver.
//
// This is the "LP solver substrate" for the SWAN-style TE engine (path-based
// multi-commodity flow). It targets the small/medium instances WAN TE
// produces (hundreds of rows/columns); no sparsity or factorization tricks.
//
// Model: optimize c'x subject to linear constraints, x >= 0. Finite upper
// bounds are lowered to explicit constraints at solve time.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace rwc::lp {

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(LpStatus status);

/// One term of a linear expression: coefficient * variable.
struct Term {
  int variable = -1;
  double coefficient = 0.0;
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // per variable, empty unless optimal

  bool optimal() const { return status == LpStatus::kOptimal; }
};

/// Linear program builder. Variables are implicitly >= 0.
class LpProblem {
 public:
  explicit LpProblem(Sense sense = Sense::kMinimize) : sense_(sense) {}

  /// Adds a variable with the given objective coefficient and optional
  /// finite upper bound; returns its index.
  int add_variable(double objective_coefficient,
                   double upper_bound = std::numeric_limits<double>::infinity(),
                   std::string name = {});

  /// Adds a constraint sum(terms) REL rhs. Terms may repeat a variable
  /// (coefficients are accumulated).
  void add_constraint(std::vector<Term> terms, Relation relation, double rhs);

  void set_sense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  int variable_count() const { return static_cast<int>(objective_.size()); }
  int constraint_count() const { return static_cast<int>(rows_.size()); }
  const std::string& variable_name(int v) const;

  /// Solves with the two-phase primal simplex.
  LpSolution solve() const;

 private:
  struct Row {
    std::vector<Term> terms;
    Relation relation = Relation::kLessEqual;
    double rhs = 0.0;
  };

  Sense sense_;
  std::vector<double> objective_;
  std::vector<double> upper_bounds_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace rwc::lp
