#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::lp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kPivotEps = 1e-8;

/// Dense simplex tableau. Row 0..m-1 are constraints; the objective is kept
/// as a separate reduced-cost vector updated by pivoting.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols),
        cells_(static_cast<std::size_t>(rows) * cols, 0.0),
        rhs_(rows, 0.0), basis_(rows, -1) {}

  double& at(int r, int c) {
    return cells_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double at(int r, int c) const {
    return cells_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double& rhs(int r) { return rhs_[static_cast<std::size_t>(r)]; }
  double rhs(int r) const { return rhs_[static_cast<std::size_t>(r)]; }
  int& basis(int r) { return basis_[static_cast<std::size_t>(r)]; }
  int basis(int r) const { return basis_[static_cast<std::size_t>(r)]; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Pivot on (pivot_row, pivot_col): normalize the row and eliminate the
  /// column from all other rows and from the reduced costs.
  void pivot(int pivot_row, int pivot_col, std::vector<double>& reduced,
             double& objective_value) {
    const double pivot_value = at(pivot_row, pivot_col);
    RWC_CHECK(std::abs(pivot_value) > kPivotEps);
    const double inv = 1.0 / pivot_value;
    for (int c = 0; c < cols_; ++c) at(pivot_row, c) *= inv;
    rhs(pivot_row) *= inv;
    at(pivot_row, pivot_col) = 1.0;  // exact

    for (int r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (std::abs(factor) < kEps) {
        at(r, pivot_col) = 0.0;
        continue;
      }
      for (int c = 0; c < cols_; ++c)
        at(r, c) -= factor * at(pivot_row, c);
      at(r, pivot_col) = 0.0;  // exact
      rhs(r) -= factor * rhs(pivot_row);
    }
    const double factor = reduced[static_cast<std::size_t>(pivot_col)];
    if (std::abs(factor) > 0.0) {
      for (int c = 0; c < cols_; ++c)
        reduced[static_cast<std::size_t>(c)] -= factor * at(pivot_row, c);
      reduced[static_cast<std::size_t>(pivot_col)] = 0.0;
      objective_value -= factor * rhs(pivot_row);
    }
    basis(pivot_row) = pivot_col;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> cells_;
  std::vector<double> rhs_;
  std::vector<int> basis_;
};

enum class IterationOutcome { kOptimal, kUnbounded, kIterationLimit };

/// Runs simplex iterations minimizing the objective encoded in `reduced`.
/// `allowed_cols` marks columns eligible to enter the basis. Pivot count is
/// accumulated into `iterations_done` for the solver counters.
IterationOutcome iterate(Tableau& tableau, std::vector<double>& reduced,
                         double& objective_value,
                         const std::vector<bool>& allowed_cols,
                         int iteration_limit,
                         std::uint64_t& iterations_done) {
  const int bland_after = iteration_limit / 2;
  for (int iteration = 0; iteration < iteration_limit;
       ++iteration, ++iterations_done) {
    const bool use_bland = iteration >= bland_after;

    // Entering column: most negative reduced cost (Dantzig) or first
    // negative (Bland, anti-cycling).
    int entering = -1;
    double best = -kEps;
    for (int c = 0; c < tableau.cols(); ++c) {
      if (!allowed_cols[static_cast<std::size_t>(c)]) continue;
      const double rc = reduced[static_cast<std::size_t>(c)];
      if (rc < best) {
        entering = c;
        best = rc;
        if (use_bland) break;
      }
    }
    if (entering < 0) return IterationOutcome::kOptimal;

    // Ratio test.
    int leaving = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < tableau.rows(); ++r) {
      const double coeff = tableau.at(r, entering);
      if (coeff <= kPivotEps) continue;
      const double ratio = tableau.rhs(r) / coeff;
      if (leaving < 0 || ratio < best_ratio - kEps ||
          (use_bland && ratio < best_ratio + kEps &&
           tableau.basis(r) < tableau.basis(leaving))) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    if (leaving < 0) return IterationOutcome::kUnbounded;

    tableau.pivot(leaving, entering, reduced, objective_value);
  }
  return IterationOutcome::kIterationLimit;
}

}  // namespace

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

int LpProblem::add_variable(double objective_coefficient, double upper_bound,
                            std::string name) {
  RWC_EXPECTS(upper_bound >= 0.0);
  const int index = variable_count();
  objective_.push_back(objective_coefficient);
  upper_bounds_.push_back(upper_bound);
  if (name.empty()) name = "x" + std::to_string(index);
  names_.push_back(std::move(name));
  return index;
}

void LpProblem::add_constraint(std::vector<Term> terms, Relation relation,
                               double rhs) {
  for (const Term& t : terms)
    RWC_EXPECTS(t.variable >= 0 && t.variable < variable_count());
  rows_.push_back(Row{std::move(terms), relation, rhs});
}

const std::string& LpProblem::variable_name(int v) const {
  RWC_EXPECTS(v >= 0 && v < variable_count());
  return names_[static_cast<std::size_t>(v)];
}

LpSolution LpProblem::solve() const {
  // Pivot counter flushed to the registry on every exit path
  // (docs/OBSERVABILITY.md: lp.simplex.*).
  std::uint64_t iterations = 0;
  struct CounterFlush {
    const std::uint64_t& iterations;
    ~CounterFlush() {
      static auto& solves =
          obs::Registry::global().counter("lp.simplex.solves");
      static auto& pivots =
          obs::Registry::global().counter("lp.simplex.iterations");
      solves.add();
      pivots.add(iterations);
    }
  } flush{iterations};

  const int n = variable_count();

  // Materialize rows, lowering finite upper bounds to x_j <= ub.
  std::vector<Row> rows = rows_;
  for (int v = 0; v < n; ++v) {
    const double ub = upper_bounds_[static_cast<std::size_t>(v)];
    if (std::isfinite(ub))
      rows.push_back(Row{{Term{v, 1.0}}, Relation::kLessEqual, ub});
  }
  const int m = static_cast<int>(rows.size());

  // Column layout: [structural n] [slack/surplus per row] [artificial per
  // row as needed].
  int slack_count = 0;
  for (const Row& row : rows)
    if (row.relation != Relation::kEqual) ++slack_count;

  // Normalize rhs >= 0 and decide which rows need artificials.
  struct RowPlan {
    double sign = 1.0;           // row multiplier to make rhs >= 0
    int slack_col = -1;          // slack/surplus column
    double slack_coeff = 0.0;    // +1 slack, -1 surplus (after sign flip)
    int artificial_col = -1;
  };
  std::vector<RowPlan> plan(static_cast<std::size_t>(m));
  int next_col = n;
  for (int r = 0; r < m; ++r) {
    Relation rel = rows[static_cast<std::size_t>(r)].relation;
    double rhs = rows[static_cast<std::size_t>(r)].rhs;
    double sign = 1.0;
    if (rhs < 0.0) {
      sign = -1.0;
      rhs = -rhs;
      if (rel == Relation::kLessEqual)
        rel = Relation::kGreaterEqual;
      else if (rel == Relation::kGreaterEqual)
        rel = Relation::kLessEqual;
    }
    auto& p = plan[static_cast<std::size_t>(r)];
    p.sign = sign;
    if (rel == Relation::kLessEqual) {
      p.slack_col = next_col++;
      p.slack_coeff = 1.0;
    } else if (rel == Relation::kGreaterEqual) {
      p.slack_col = next_col++;
      p.slack_coeff = -1.0;
    }
  }
  int artificial_start = next_col;
  for (int r = 0; r < m; ++r) {
    auto& p = plan[static_cast<std::size_t>(r)];
    // <= rows start basic on their slack; >= and = rows need an artificial.
    if (p.slack_coeff != 1.0) p.artificial_col = next_col++;
  }
  const int total_cols = next_col;

  Tableau tableau(m, total_cols);
  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<std::size_t>(r)];
    const auto& p = plan[static_cast<std::size_t>(r)];
    for (const Term& t : row.terms)
      tableau.at(r, t.variable) += p.sign * t.coefficient;
    tableau.rhs(r) = p.sign * row.rhs;
    if (p.slack_col >= 0) tableau.at(r, p.slack_col) = p.slack_coeff;
    if (p.artificial_col >= 0) tableau.at(r, p.artificial_col) = 1.0;
    tableau.basis(r) = p.artificial_col >= 0 ? p.artificial_col : p.slack_col;
  }

  const int iteration_limit = 200 * (m + total_cols) + 2000;

  // ---- Phase 1: minimize the sum of artificials. ----
  bool has_artificials = artificial_start < total_cols;
  if (has_artificials) {
    std::vector<double> reduced(static_cast<std::size_t>(total_cols), 0.0);
    double phase1_value = 0.0;
    // Objective: sum of artificial columns; express in terms of non-basics
    // by subtracting basic (artificial) rows.
    for (int c = artificial_start; c < total_cols; ++c)
      reduced[static_cast<std::size_t>(c)] = 1.0;
    for (int r = 0; r < m; ++r) {
      const int b = tableau.basis(r);
      if (b >= artificial_start) {
        for (int c = 0; c < total_cols; ++c)
          reduced[static_cast<std::size_t>(c)] -= tableau.at(r, c);
        phase1_value += tableau.rhs(r);
      }
    }
    std::vector<bool> allowed(static_cast<std::size_t>(total_cols), true);
    const auto outcome = iterate(tableau, reduced, phase1_value, allowed,
                                 iteration_limit, iterations);
    if (outcome == IterationOutcome::kIterationLimit)
      return LpSolution{LpStatus::kIterationLimit, 0.0, {}};
    // Phase-1 objective is bounded below by 0, so kUnbounded cannot happen.
    // Recompute the artificial sum from the tableau (robust to the sign
    // convention of the incremental tracker).
    double artificial_sum = 0.0;
    for (int r = 0; r < m; ++r)
      if (tableau.basis(r) >= artificial_start)
        artificial_sum += std::max(0.0, tableau.rhs(r));
    if (artificial_sum > 1e-6)
      return LpSolution{LpStatus::kInfeasible, 0.0, {}};

    // Drive any residual artificial out of the basis (degenerate rows).
    for (int r = 0; r < m; ++r) {
      if (tableau.basis(r) < artificial_start) continue;
      int replacement = -1;
      for (int c = 0; c < artificial_start; ++c) {
        if (std::abs(tableau.at(r, c)) > kPivotEps) {
          replacement = c;
          break;
        }
      }
      if (replacement >= 0) {
        double dummy = 0.0;
        std::vector<double> zero(static_cast<std::size_t>(total_cols), 0.0);
        tableau.pivot(r, replacement, zero, dummy);
      }
      // Otherwise the row is all-zero over structural columns (redundant
      // constraint); the artificial stays basic at value ~0, harmless.
    }
  }

  // ---- Phase 2: original objective over structural + slack columns. ----
  const double obj_sign = sense_ == Sense::kMinimize ? 1.0 : -1.0;
  std::vector<double> reduced(static_cast<std::size_t>(total_cols), 0.0);
  double objective_value = 0.0;
  for (int v = 0; v < n; ++v)
    reduced[static_cast<std::size_t>(v)] =
        obj_sign * objective_[static_cast<std::size_t>(v)];
  for (int r = 0; r < m; ++r) {
    const int b = tableau.basis(r);
    const double cb = reduced[static_cast<std::size_t>(b)];
    if (std::abs(cb) < kEps) continue;
    for (int c = 0; c < total_cols; ++c)
      reduced[static_cast<std::size_t>(c)] -= cb * tableau.at(r, c);
    reduced[static_cast<std::size_t>(b)] = 0.0;
    objective_value -= cb * tableau.rhs(r);
  }
  std::vector<bool> allowed(static_cast<std::size_t>(total_cols), true);
  for (int c = artificial_start; c < total_cols; ++c)
    allowed[static_cast<std::size_t>(c)] = false;
  const auto outcome = iterate(tableau, reduced, objective_value, allowed,
                               iteration_limit, iterations);
  if (outcome == IterationOutcome::kIterationLimit)
    return LpSolution{LpStatus::kIterationLimit, 0.0, {}};
  if (outcome == IterationOutcome::kUnbounded)
    return LpSolution{LpStatus::kUnbounded, 0.0, {}};

  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = tableau.basis(r);
    if (b >= 0 && b < n)
      solution.values[static_cast<std::size_t>(b)] =
          std::max(0.0, tableau.rhs(r));
  }
  // Recompute the objective from the primal values (robust to the sign
  // convention of the incremental tracker used during pivoting).
  solution.objective = 0.0;
  for (int v = 0; v < n; ++v)
    solution.objective += objective_[static_cast<std::size_t>(v)] *
                          solution.values[static_cast<std::size_t>(v)];
  return solution;
}

}  // namespace rwc::lp
