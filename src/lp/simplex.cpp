#include "lp/simplex.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::lp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kPivotEps = 1e-8;

/// Word-at-a-time mixer (murmur3-finalizer style), matching the flow-layer
/// fingerprints so collision behavior is uniform across solver tiers.
inline std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  hash = (hash ^ value) * 0x2545f4914f6cdd1dULL;
  return hash ^ (hash >> 29);
}

/// Dense simplex tableau. Row 0..m-1 are constraints; the objective is kept
/// as a separate reduced-cost vector updated by pivoting.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols),
        cells_(static_cast<std::size_t>(rows) * cols, 0.0),
        rhs_(rows, 0.0), basis_(rows, -1) {}

  double& at(int r, int c) {
    return cells_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double at(int r, int c) const {
    return cells_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double& rhs(int r) { return rhs_[static_cast<std::size_t>(r)]; }
  double rhs(int r) const { return rhs_[static_cast<std::size_t>(r)]; }
  int& basis(int r) { return basis_[static_cast<std::size_t>(r)]; }
  int basis(int r) const { return basis_[static_cast<std::size_t>(r)]; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Pivot on (pivot_row, pivot_col): normalize the row and eliminate the
  /// column from all other rows and from the reduced costs.
  ///
  /// The arithmetic here — including the |factor| < kEps row skip, which
  /// also skips that row's rhs update — is replicated cell-for-cell by the
  /// warm-start replay in try_replay(); any change to one must be mirrored
  /// in the other or replayed solves stop being bit-identical.
  void pivot(int pivot_row, int pivot_col, std::vector<double>& reduced,
             double& objective_value) {
    const double pivot_value = at(pivot_row, pivot_col);
    RWC_CHECK(std::abs(pivot_value) > kPivotEps);
    const double inv = 1.0 / pivot_value;
    for (int c = 0; c < cols_; ++c) at(pivot_row, c) *= inv;
    rhs(pivot_row) *= inv;
    at(pivot_row, pivot_col) = 1.0;  // exact

    for (int r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (std::abs(factor) < kEps) {
        at(r, pivot_col) = 0.0;
        continue;
      }
      for (int c = 0; c < cols_; ++c)
        at(r, c) -= factor * at(pivot_row, c);
      at(r, pivot_col) = 0.0;  // exact
      rhs(r) -= factor * rhs(pivot_row);
    }
    const double factor = reduced[static_cast<std::size_t>(pivot_col)];
    if (std::abs(factor) > 0.0) {
      for (int c = 0; c < cols_; ++c)
        reduced[static_cast<std::size_t>(c)] -= factor * at(pivot_row, c);
      reduced[static_cast<std::size_t>(pivot_col)] = 0.0;
      objective_value -= factor * rhs(pivot_row);
    }
    basis(pivot_row) = pivot_col;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> cells_;
  std::vector<double> rhs_;
  std::vector<int> basis_;
};

enum class IterationOutcome { kOptimal, kUnbounded, kIterationLimit };

/// Runs simplex iterations minimizing the objective encoded in `reduced`.
/// `allowed_cols` marks columns eligible to enter the basis. Pivot count is
/// accumulated into `iterations_done` for the solver counters. When
/// `record` is non-null every pivot is appended to it tagged `kind`.
IterationOutcome iterate(Tableau& tableau, std::vector<double>& reduced,
                         double& objective_value,
                         const std::vector<bool>& allowed_cols,
                         int iteration_limit,
                         std::uint64_t& iterations_done,
                         std::vector<PivotRecording::Pivot>* record,
                         PivotRecording::PivotKind kind) {
  const int bland_after = iteration_limit / 2;
  for (int iteration = 0; iteration < iteration_limit;
       ++iteration, ++iterations_done) {
    const bool use_bland = iteration >= bland_after;

    // Entering column: most negative reduced cost (Dantzig) or first
    // negative (Bland, anti-cycling).
    int entering = -1;
    double best = -kEps;
    for (int c = 0; c < tableau.cols(); ++c) {
      if (!allowed_cols[static_cast<std::size_t>(c)]) continue;
      const double rc = reduced[static_cast<std::size_t>(c)];
      if (rc < best) {
        entering = c;
        best = rc;
        if (use_bland) break;
      }
    }
    if (entering < 0) return IterationOutcome::kOptimal;

    // Ratio test.
    int leaving = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < tableau.rows(); ++r) {
      const double coeff = tableau.at(r, entering);
      if (coeff <= kPivotEps) continue;
      const double ratio = tableau.rhs(r) / coeff;
      if (leaving < 0 || ratio < best_ratio - kEps ||
          (use_bland && ratio < best_ratio + kEps &&
           tableau.basis(r) < tableau.basis(leaving))) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    if (leaving < 0) return IterationOutcome::kUnbounded;

    if (record != nullptr)
      record->push_back(PivotRecording::Pivot{leaving, entering, kind});
    tableau.pivot(leaving, entering, reduced, objective_value);
  }
  return IterationOutcome::kIterationLimit;
}

/// Per-row normalization plan: sign flip for negative rhs, slack/surplus
/// and artificial column assignment.
struct RowPlan {
  double sign = 1.0;         // row multiplier to make rhs >= 0
  int slack_col = -1;        // slack/surplus column
  double slack_coeff = 0.0;  // +1 slack, -1 surplus (after sign flip)
  int artificial_col = -1;
};

/// The solve-time shape of a problem: materialized rows (upper bounds
/// lowered to `x_j <= ub`), per-row plans and the column layout
/// [structural n][slack/surplus][artificials]. Shared by the cold solve and
/// the warm-start replay so both build bit-identical tableaus.
struct Prepared {
  std::vector<LpProblem::Row> rows;
  std::vector<RowPlan> plan;
  int m = 0;
  int artificial_start = 0;
  int total_cols = 0;
  int iteration_limit = 0;
  bool has_artificials = false;
};

Prepared prepare(const std::vector<LpProblem::Row>& base_rows,
                 const std::vector<double>& upper_bounds, int n) {
  Prepared prep;

  // Materialize rows, lowering finite upper bounds to x_j <= ub.
  prep.rows = base_rows;
  for (int v = 0; v < n; ++v) {
    const double ub = upper_bounds[static_cast<std::size_t>(v)];
    if (std::isfinite(ub))
      prep.rows.push_back(
          LpProblem::Row{{Term{v, 1.0}}, Relation::kLessEqual, ub});
  }
  prep.m = static_cast<int>(prep.rows.size());

  // Normalize rhs >= 0 and decide which rows need artificials.
  prep.plan.resize(static_cast<std::size_t>(prep.m));
  int next_col = n;
  for (int r = 0; r < prep.m; ++r) {
    Relation rel = prep.rows[static_cast<std::size_t>(r)].relation;
    double rhs = prep.rows[static_cast<std::size_t>(r)].rhs;
    double sign = 1.0;
    if (rhs < 0.0) {
      sign = -1.0;
      rhs = -rhs;
      if (rel == Relation::kLessEqual)
        rel = Relation::kGreaterEqual;
      else if (rel == Relation::kGreaterEqual)
        rel = Relation::kLessEqual;
    }
    auto& p = prep.plan[static_cast<std::size_t>(r)];
    p.sign = sign;
    if (rel == Relation::kLessEqual) {
      p.slack_col = next_col++;
      p.slack_coeff = 1.0;
    } else if (rel == Relation::kGreaterEqual) {
      p.slack_col = next_col++;
      p.slack_coeff = -1.0;
    }
  }
  prep.artificial_start = next_col;
  for (int r = 0; r < prep.m; ++r) {
    auto& p = prep.plan[static_cast<std::size_t>(r)];
    // <= rows start basic on their slack; >= and = rows need an artificial.
    if (p.slack_coeff != 1.0) p.artificial_col = next_col++;
  }
  prep.total_cols = next_col;
  prep.has_artificials = prep.artificial_start < prep.total_cols;
  prep.iteration_limit = 200 * (prep.m + prep.total_cols) + 2000;
  return prep;
}

}  // namespace

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

LpWarmCache::LpWarmCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::shared_ptr<const PivotRecording> LpWarmCache::find(
    std::uint64_t structural_fingerprint) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(structural_fingerprint);
  return it == entries_.end() ? nullptr : it->second;
}

void LpWarmCache::store(std::shared_ptr<const PivotRecording> recording) {
  RWC_EXPECTS(recording != nullptr && !recording->empty());
  const std::uint64_t key = recording->structural_fingerprint;
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = entries_.insert_or_assign(key,
                                                        std::move(recording));
  (void)it;
  if (inserted) insertion_order_.push_back(key);
  while (entries_.size() > max_entries_ && !insertion_order_.empty()) {
    const std::uint64_t victim = insertion_order_.front();
    insertion_order_.pop_front();
    entries_.erase(victim);
  }
}

std::size_t LpWarmCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

int LpProblem::add_variable(double objective_coefficient, double upper_bound,
                            std::string name) {
  RWC_EXPECTS(upper_bound >= 0.0);
  const int index = variable_count();
  objective_.push_back(objective_coefficient);
  upper_bounds_.push_back(upper_bound);
  if (name.empty()) name = "x" + std::to_string(index);
  names_.push_back(std::move(name));
  return index;
}

void LpProblem::add_constraint(std::vector<Term> terms, Relation relation,
                               double rhs) {
  for (const Term& t : terms)
    RWC_EXPECTS(t.variable >= 0 && t.variable < variable_count());
  rows_.push_back(Row{std::move(terms), relation, rhs});
}

const std::string& LpProblem::variable_name(int v) const {
  RWC_EXPECTS(v >= 0 && v < variable_count());
  return names_[static_cast<std::size_t>(v)];
}

double LpProblem::objective_coefficient(int v) const {
  RWC_EXPECTS(v >= 0 && v < variable_count());
  return objective_[static_cast<std::size_t>(v)];
}

double LpProblem::upper_bound(int v) const {
  RWC_EXPECTS(v >= 0 && v < variable_count());
  return upper_bounds_[static_cast<std::size_t>(v)];
}

LpFingerprints LpProblem::fingerprints() const {
  std::uint64_t exact = 0xcbf29ce484222325ULL;
  std::uint64_t structural = 0x9e3779b97f4a7c15ULL;
  const auto mix_both = [&](std::uint64_t value) {
    exact = mix64(exact, value);
    structural = mix64(structural, value);
  };
  mix_both(sense_ == Sense::kMinimize ? 0u : 1u);
  mix_both(static_cast<std::uint64_t>(variable_count()));
  mix_both(rows_.size());
  for (int v = 0; v < variable_count(); ++v) {
    mix_both(std::bit_cast<std::uint64_t>(
        objective_[static_cast<std::size_t>(v)]));
    // A finite upper bound becomes an `x_v <= ub` row at solve time:
    // finiteness is structure (the row exists, and ub >= 0 fixes its rhs
    // sign); the bound's value only ever reaches the rhs vector.
    const double ub = upper_bounds_[static_cast<std::size_t>(v)];
    mix_both(std::isfinite(ub) ? 1u : 0u);
    if (std::isfinite(ub))
      exact = mix64(exact, std::bit_cast<std::uint64_t>(ub));
  }
  for (const Row& row : rows_) {
    mix_both(static_cast<std::uint64_t>(row.relation));
    mix_both(row.terms.size());
    for (const Term& t : row.terms) {
      mix_both(static_cast<std::uint64_t>(t.variable));
      mix_both(std::bit_cast<std::uint64_t>(t.coefficient));
    }
    // The rhs SIGN is structural: a negative rhs flips the row's cells and
    // relation during normalization, so it changes the tableau everywhere,
    // not just in the rhs vector. The magnitude stays exact-only.
    mix_both(row.rhs < 0.0 ? 1u : 0u);
    exact = mix64(exact, std::bit_cast<std::uint64_t>(row.rhs));
  }
  // Reserve 0 as the "no recording" sentinel on both keys.
  return LpFingerprints{exact == 0 ? 1 : exact,
                        structural == 0 ? 1 : structural};
}

LpSolution LpProblem::solve() const { return solve_cold(nullptr); }

LpSolution LpProblem::solve(LpWarmCache* cache) const {
  if (cache == nullptr) return solve_cold(nullptr);
  static auto& memo_hits =
      obs::Registry::global().counter("lp.basis_reuse_memo_hits");
  static auto& hits = obs::Registry::global().counter("lp.basis_reuse_hits");
  static auto& rollbacks =
      obs::Registry::global().counter("lp.basis_reuse_rollbacks");
  static auto& misses =
      obs::Registry::global().counter("lp.basis_reuse_misses");

  const LpFingerprints prints = fingerprints();
  const auto cached = cache->find(prints.structural);
  if (cached != nullptr) {
    if (cached->exact_fingerprint == prints.exact) {
      // Whole-solution memo: the problem is bit-identical to the recorded
      // one. Still a solve for the lp.simplex.* counters (zero pivots).
      memo_hits.add();
      static auto& solves =
          obs::Registry::global().counter("lp.simplex.solves");
      solves.add();
      return cached->solution;
    }
    LpSolution replayed;
    if (try_replay(*cached, replayed)) {
      hits.add();
      return replayed;
    }
    rollbacks.add();
  } else {
    misses.add();
  }

  PivotRecording recording;
  LpSolution solution = solve_cold(&recording);
  if (solution.optimal()) {
    recording.exact_fingerprint = prints.exact;
    recording.structural_fingerprint = prints.structural;
    recording.solution = solution;
    cache->store(
        std::make_shared<const PivotRecording>(std::move(recording)));
  }
  return solution;
}

bool LpProblem::try_replay(const PivotRecording& rec, LpSolution& out) const {
  const int n = variable_count();
  const Prepared prep = prepare(rows_, upper_bounds_, n);
  const int m = prep.m;

  // Validate the recording against this structure up front: a fingerprint
  // collision must diverge cleanly, never index out of range.
  for (const PivotRecording::Pivot& p : rec.pivots) {
    if (p.row < 0 || p.row >= m || p.col < 0 || p.col >= prep.total_cols)
      return false;
  }

  // Pivot counters flushed on every exit path; a diverged replay counts
  // its pivots as work done but is not a completed solve (the cold
  // fallback will count that one).
  std::uint64_t iterations = 0;
  struct CounterFlush {
    const std::uint64_t& iterations;
    bool count_solve = false;
    ~CounterFlush() {
      static auto& solves =
          obs::Registry::global().counter("lp.simplex.solves");
      static auto& pivots =
          obs::Registry::global().counter("lp.simplex.iterations");
      if (count_solve) solves.add();
      pivots.add(iterations);
    }
  } flush{iterations};

  // Only the columns that ever pivot are materialized; everything else in
  // the dense tableau evolves rhs-independently and identically to the
  // recorded solve, so it never needs to be computed again.
  std::unordered_map<int, std::vector<double>> cols;
  for (const PivotRecording::Pivot& p : rec.pivots)
    cols.try_emplace(p.col, std::vector<double>(static_cast<std::size_t>(m),
                                                0.0));

  std::vector<double> rhs(static_cast<std::size_t>(m), 0.0);
  std::vector<int> basis(static_cast<std::size_t>(m), -1);
  for (int r = 0; r < m; ++r) {
    const Row& row = prep.rows[static_cast<std::size_t>(r)];
    const RowPlan& p = prep.plan[static_cast<std::size_t>(r)];
    for (const Term& t : row.terms) {
      const auto it = cols.find(t.variable);
      if (it != cols.end())
        it->second[static_cast<std::size_t>(r)] += p.sign * t.coefficient;
    }
    rhs[static_cast<std::size_t>(r)] = p.sign * row.rhs;
    if (p.slack_col >= 0) {
      const auto it = cols.find(p.slack_col);
      if (it != cols.end())
        it->second[static_cast<std::size_t>(r)] = p.slack_coeff;
    }
    if (p.artificial_col >= 0) {
      const auto it = cols.find(p.artificial_col);
      if (it != cols.end()) it->second[static_cast<std::size_t>(r)] = 1.0;
    }
    basis[static_cast<std::size_t>(r)] =
        p.artificial_col >= 0 ? p.artificial_col : p.slack_col;
  }

  // Tableau::pivot restricted to the tracked columns — replicated
  // cell-for-cell, including the |factor| < kEps row skip (which also
  // skips that row's rhs update) and the exact 1.0/0.0 assignments.
  const auto apply_pivot = [&](int pivot_row, int pivot_col) -> bool {
    const auto pit = cols.find(pivot_col);
    if (pit == cols.end()) return false;
    std::vector<double>& pcol = pit->second;
    const std::size_t pr = static_cast<std::size_t>(pivot_row);
    const double pivot_value = pcol[pr];
    // The cold path RWC_CHECKs this; with verified pivots it cannot fail,
    // but a collision-shaped recording must diverge, not abort.
    if (!(std::abs(pivot_value) > kPivotEps)) return false;
    const double inv = 1.0 / pivot_value;
    for (auto& kv : cols) kv.second[pr] *= inv;
    rhs[pr] *= inv;
    pcol[pr] = 1.0;  // exact
    for (int r = 0; r < m; ++r) {
      if (r == pivot_row) continue;
      const std::size_t sr = static_cast<std::size_t>(r);
      const double factor = pcol[sr];
      if (std::abs(factor) < kEps) {
        pcol[sr] = 0.0;
        continue;
      }
      for (auto& kv : cols) kv.second[sr] -= factor * kv.second[pr];
      pcol[sr] = 0.0;  // exact
      rhs[sr] -= factor * rhs[pr];
    }
    basis[pr] = pivot_col;
    return true;
  };

  // The exact ratio test from iterate(). Entering columns are not
  // re-derived: reduced costs evolve rhs-independently, so on a structural
  // match the recorded entering sequence is provably the one a cold solve
  // would choose. Only the leaving row can differ, and it is verified here
  // before every replayed pivot.
  const int bland_after = prep.iteration_limit / 2;
  const auto verify_leaving = [&](int entering, int phase_iteration) -> int {
    const std::vector<double>& col = cols.find(entering)->second;
    const bool use_bland = phase_iteration >= bland_after;
    int leaving = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < m; ++r) {
      const std::size_t sr = static_cast<std::size_t>(r);
      const double coeff = col[sr];
      if (coeff <= kPivotEps) continue;
      const double ratio = rhs[sr] / coeff;
      if (leaving < 0 || ratio < best_ratio - kEps ||
          (use_bland && ratio < best_ratio + kEps &&
           basis[sr] < basis[static_cast<std::size_t>(leaving)])) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    return leaving;
  };

  std::size_t idx = 0;

  // ---- Phase 1 pivots (ratio test verified per pivot). ----
  int phase1_iteration = 0;
  while (idx < rec.pivots.size() &&
         rec.pivots[idx].kind == PivotRecording::PivotKind::kPhase1) {
    const PivotRecording::Pivot& p = rec.pivots[idx];
    if (verify_leaving(p.col, phase1_iteration) != p.row) return false;
    if (!apply_pivot(p.row, p.col)) return false;
    ++iterations;
    ++phase1_iteration;
    ++idx;
  }

  if (prep.has_artificials) {
    // The same feasibility recheck as the cold path, on the perturbed rhs.
    double artificial_sum = 0.0;
    for (int r = 0; r < m; ++r) {
      const std::size_t sr = static_cast<std::size_t>(r);
      if (basis[sr] >= prep.artificial_start)
        artificial_sum += std::max(0.0, rhs[sr]);
    }
    if (artificial_sum > 1e-6) {
      // The perturbed rhs is infeasible. A cold solve would run the same
      // phase-1 pivots and stop exactly here, so this IS the solve.
      out = LpSolution{LpStatus::kInfeasible, 0.0, {}};
      flush.count_solve = true;
      return true;
    }

    // Drive-out pivots: the cold loop picks (row, replacement) from cells
    // and basis only, both rhs-independent, so these replay unverified.
    // The guards below catch collision-shaped recordings.
    while (idx < rec.pivots.size() &&
           rec.pivots[idx].kind ==
               PivotRecording::PivotKind::kDriveArtificial) {
      const PivotRecording::Pivot& p = rec.pivots[idx];
      if (basis[static_cast<std::size_t>(p.row)] < prep.artificial_start)
        return false;
      if (!apply_pivot(p.row, p.col)) return false;
      ++idx;
    }
  }

  // ---- Phase 2 pivots (ratio test verified per pivot). ----
  int phase2_iteration = 0;
  while (idx < rec.pivots.size()) {
    const PivotRecording::Pivot& p = rec.pivots[idx];
    if (p.kind != PivotRecording::PivotKind::kPhase2) return false;
    if (verify_leaving(p.col, phase2_iteration) != p.row) return false;
    if (!apply_pivot(p.row, p.col)) return false;
    ++iterations;
    ++phase2_iteration;
    ++idx;
  }

  // After the recorded pivots the reduced costs — identical to the
  // recorded solve's — admit no entering column, so the perturbed problem
  // is optimal at this basis.
  out.status = LpStatus::kOptimal;
  out.objective = 0.0;
  out.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const std::size_t sr = static_cast<std::size_t>(r);
    const int b = basis[sr];
    if (b >= 0 && b < n)
      out.values[static_cast<std::size_t>(b)] = std::max(0.0, rhs[sr]);
  }
  for (int v = 0; v < n; ++v)
    out.objective += objective_[static_cast<std::size_t>(v)] *
                     out.values[static_cast<std::size_t>(v)];
  flush.count_solve = true;
  return true;
}

LpSolution LpProblem::solve_cold(PivotRecording* recording) const {
  // Pivot counter flushed to the registry on every exit path
  // (docs/OBSERVABILITY.md: lp.simplex.*).
  std::uint64_t iterations = 0;
  struct CounterFlush {
    const std::uint64_t& iterations;
    ~CounterFlush() {
      static auto& solves =
          obs::Registry::global().counter("lp.simplex.solves");
      static auto& pivots =
          obs::Registry::global().counter("lp.simplex.iterations");
      solves.add();
      pivots.add(iterations);
    }
  } flush{iterations};

  const int n = variable_count();
  const Prepared prep = prepare(rows_, upper_bounds_, n);
  const int m = prep.m;
  const int artificial_start = prep.artificial_start;
  const int total_cols = prep.total_cols;
  const int iteration_limit = prep.iteration_limit;
  std::vector<PivotRecording::Pivot>* record =
      recording == nullptr ? nullptr : &recording->pivots;

  Tableau tableau(m, total_cols);
  for (int r = 0; r < m; ++r) {
    const Row& row = prep.rows[static_cast<std::size_t>(r)];
    const RowPlan& p = prep.plan[static_cast<std::size_t>(r)];
    for (const Term& t : row.terms)
      tableau.at(r, t.variable) += p.sign * t.coefficient;
    tableau.rhs(r) = p.sign * row.rhs;
    if (p.slack_col >= 0) tableau.at(r, p.slack_col) = p.slack_coeff;
    if (p.artificial_col >= 0) tableau.at(r, p.artificial_col) = 1.0;
    tableau.basis(r) = p.artificial_col >= 0 ? p.artificial_col : p.slack_col;
  }

  // ---- Phase 1: minimize the sum of artificials. ----
  if (prep.has_artificials) {
    std::vector<double> reduced(static_cast<std::size_t>(total_cols), 0.0);
    double phase1_value = 0.0;
    // Objective: sum of artificial columns; express in terms of non-basics
    // by subtracting basic (artificial) rows.
    for (int c = artificial_start; c < total_cols; ++c)
      reduced[static_cast<std::size_t>(c)] = 1.0;
    for (int r = 0; r < m; ++r) {
      const int b = tableau.basis(r);
      if (b >= artificial_start) {
        for (int c = 0; c < total_cols; ++c)
          reduced[static_cast<std::size_t>(c)] -= tableau.at(r, c);
        phase1_value += tableau.rhs(r);
      }
    }
    std::vector<bool> allowed(static_cast<std::size_t>(total_cols), true);
    const auto outcome =
        iterate(tableau, reduced, phase1_value, allowed, iteration_limit,
                iterations, record, PivotRecording::PivotKind::kPhase1);
    if (outcome == IterationOutcome::kIterationLimit)
      return LpSolution{LpStatus::kIterationLimit, 0.0, {}};
    // Phase-1 objective is bounded below by 0, so kUnbounded cannot happen.
    // Recompute the artificial sum from the tableau (robust to the sign
    // convention of the incremental tracker).
    double artificial_sum = 0.0;
    for (int r = 0; r < m; ++r)
      if (tableau.basis(r) >= artificial_start)
        artificial_sum += std::max(0.0, tableau.rhs(r));
    if (artificial_sum > 1e-6)
      return LpSolution{LpStatus::kInfeasible, 0.0, {}};

    // Drive any residual artificial out of the basis (degenerate rows).
    for (int r = 0; r < m; ++r) {
      if (tableau.basis(r) < artificial_start) continue;
      int replacement = -1;
      for (int c = 0; c < artificial_start; ++c) {
        if (std::abs(tableau.at(r, c)) > kPivotEps) {
          replacement = c;
          break;
        }
      }
      if (replacement >= 0) {
        double dummy = 0.0;
        std::vector<double> zero(static_cast<std::size_t>(total_cols), 0.0);
        if (record != nullptr)
          record->push_back(PivotRecording::Pivot{
              r, replacement, PivotRecording::PivotKind::kDriveArtificial});
        tableau.pivot(r, replacement, zero, dummy);
      }
      // Otherwise the row is all-zero over structural columns (redundant
      // constraint); the artificial stays basic at value ~0, harmless.
    }
  }

  // ---- Phase 2: original objective over structural + slack columns. ----
  const double obj_sign = sense_ == Sense::kMinimize ? 1.0 : -1.0;
  std::vector<double> reduced(static_cast<std::size_t>(total_cols), 0.0);
  double objective_value = 0.0;
  for (int v = 0; v < n; ++v)
    reduced[static_cast<std::size_t>(v)] =
        obj_sign * objective_[static_cast<std::size_t>(v)];
  for (int r = 0; r < m; ++r) {
    const int b = tableau.basis(r);
    const double cb = reduced[static_cast<std::size_t>(b)];
    if (std::abs(cb) < kEps) continue;
    for (int c = 0; c < total_cols; ++c)
      reduced[static_cast<std::size_t>(c)] -= cb * tableau.at(r, c);
    reduced[static_cast<std::size_t>(b)] = 0.0;
    objective_value -= cb * tableau.rhs(r);
  }
  std::vector<bool> allowed(static_cast<std::size_t>(total_cols), true);
  for (int c = artificial_start; c < total_cols; ++c)
    allowed[static_cast<std::size_t>(c)] = false;
  const auto outcome =
      iterate(tableau, reduced, objective_value, allowed, iteration_limit,
              iterations, record, PivotRecording::PivotKind::kPhase2);
  if (outcome == IterationOutcome::kIterationLimit)
    return LpSolution{LpStatus::kIterationLimit, 0.0, {}};
  if (outcome == IterationOutcome::kUnbounded)
    return LpSolution{LpStatus::kUnbounded, 0.0, {}};

  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = tableau.basis(r);
    if (b >= 0 && b < n)
      solution.values[static_cast<std::size_t>(b)] =
          std::max(0.0, tableau.rhs(r));
  }
  // Recompute the objective from the primal values (robust to the sign
  // convention of the incremental tracker used during pivoting).
  solution.objective = 0.0;
  for (int v = 0; v < n; ++v)
    solution.objective += objective_[static_cast<std::size_t>(v)] *
                          solution.values[static_cast<std::size_t>(v)];
  return solution;
}

}  // namespace rwc::lp
