#include "graph/dijkstra.hpp"

#include <algorithm>

namespace rwc::graph {

ShortestPathTree dijkstra_by_weight(const Graph& graph, NodeId source) {
  return dijkstra(
      graph, source, [&](EdgeId id) { return graph.edge(id).weight; },
      [](EdgeId) { return true; });
}

Path extract_path(const Graph& graph, const ShortestPathTree& tree,
                  NodeId target) {
  Path path;
  if (!tree.reached(target)) {
    path.weight = ShortestPathTree::kUnreachable;
    return path;
  }
  path.weight = tree.distance[static_cast<std::size_t>(target.value)];
  NodeId node = target;
  while (true) {
    const EdgeId parent =
        tree.parent_edge[static_cast<std::size_t>(node.value)];
    if (!parent.valid()) break;  // reached the source
    path.edges.push_back(parent);
    node = graph.edge(parent).src;
  }
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

Path shortest_path(const Graph& graph, NodeId source, NodeId target) {
  return extract_path(graph, dijkstra_by_weight(graph, source), target);
}

}  // namespace rwc::graph
