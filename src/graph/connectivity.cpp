#include "graph/connectivity.hpp"

#include <queue>

namespace rwc::graph {

std::vector<bool> reachable_from(
    const Graph& graph, NodeId source,
    const std::function<bool(EdgeId)>& usable) {
  std::vector<bool> seen(graph.node_count(), false);
  if (graph.node_count() == 0) return seen;
  std::queue<NodeId> frontier;
  seen[static_cast<std::size_t>(source.value)] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (EdgeId id : graph.out_edges(node)) {
      if (!usable(id)) continue;
      const NodeId next = graph.edge(id).dst;
      auto reached = seen[static_cast<std::size_t>(next.value)];
      if (!reached) {
        seen[static_cast<std::size_t>(next.value)] = true;
        frontier.push(next);
      }
    }
  }
  return seen;
}

std::vector<bool> reachable_from(const Graph& graph, NodeId source) {
  return reachable_from(graph, source, [](EdgeId) { return true; });
}

bool is_strongly_connected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  for (NodeId node : graph.node_ids()) {
    const auto seen = reachable_from(graph, node);
    for (bool reached : seen)
      if (!reached) return false;
  }
  return true;
}

bool is_weakly_connected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  // BFS over the undirected view via both adjacency lists.
  std::vector<bool> seen(graph.node_count(), false);
  std::queue<NodeId> frontier;
  seen[0] = true;
  frontier.push(NodeId{0});
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    auto visit = [&](NodeId next) {
      auto reached = seen[static_cast<std::size_t>(next.value)];
      if (!reached) {
        seen[static_cast<std::size_t>(next.value)] = true;
        frontier.push(next);
        ++visited;
      }
    };
    for (EdgeId id : graph.out_edges(node)) visit(graph.edge(id).dst);
    for (EdgeId id : graph.in_edges(node)) visit(graph.edge(id).src);
  }
  return visited == graph.node_count();
}

}  // namespace rwc::graph
