#include "graph/graph.hpp"

#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace rwc::graph {

NodeId Graph::add_node(std::string name) {
  const NodeId id{static_cast<std::int32_t>(node_names_.size())};
  if (name.empty()) name = "n" + std::to_string(id.value);
  node_names_.push_back(std::move(name));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

EdgeId Graph::add_edge(NodeId src, NodeId dst, util::Gbps capacity,
                       double cost, double weight) {
  check_node(src);
  check_node(dst);
  RWC_EXPECTS(capacity.value >= 0.0);
  const EdgeId id{static_cast<std::int32_t>(edges_.size())};
  edges_.push_back(Edge{src, dst, capacity, cost, weight});
  out_edges_[static_cast<std::size_t>(src.value)].push_back(id);
  in_edges_[static_cast<std::size_t>(dst.value)].push_back(id);
  return id;
}

std::pair<EdgeId, EdgeId> Graph::add_bidirectional(NodeId a, NodeId b,
                                                   util::Gbps capacity,
                                                   double cost,
                                                   double weight) {
  return {add_edge(a, b, capacity, cost, weight),
          add_edge(b, a, capacity, cost, weight)};
}

const Edge& Graph::edge(EdgeId id) const {
  RWC_EXPECTS(id.valid() &&
              static_cast<std::size_t>(id.value) < edges_.size());
  return edges_[static_cast<std::size_t>(id.value)];
}

Edge& Graph::edge(EdgeId id) {
  RWC_EXPECTS(id.valid() &&
              static_cast<std::size_t>(id.value) < edges_.size());
  return edges_[static_cast<std::size_t>(id.value)];
}

std::span<const EdgeId> Graph::out_edges(NodeId node) const {
  check_node(node);
  return out_edges_[static_cast<std::size_t>(node.value)];
}

std::span<const EdgeId> Graph::in_edges(NodeId node) const {
  check_node(node);
  return in_edges_[static_cast<std::size_t>(node.value)];
}

const std::string& Graph::node_name(NodeId id) const {
  check_node(id);
  return node_names_[static_cast<std::size_t>(id.value)];
}

std::optional<NodeId> Graph::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < node_names_.size(); ++i)
    if (node_names_[i] == name) return NodeId{static_cast<std::int32_t>(i)};
  return std::nullopt;
}

std::vector<NodeId> Graph::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i)
    ids.push_back(NodeId{static_cast<std::int32_t>(i)});
  return ids;
}

std::vector<EdgeId> Graph::edge_ids() const {
  std::vector<EdgeId> ids;
  ids.reserve(edge_count());
  for (std::size_t i = 0; i < edge_count(); ++i)
    ids.push_back(EdgeId{static_cast<std::int32_t>(i)});
  return ids;
}

std::optional<EdgeId> Graph::find_edge(NodeId src, NodeId dst) const {
  for (EdgeId id : out_edges(src))
    if (edge(id).dst == dst) return id;
  return std::nullopt;
}

util::Gbps Graph::total_capacity() const {
  util::Gbps total{0.0};
  for (const Edge& e : edges_) total += e.capacity;
  return total;
}

void Graph::check_node(NodeId id) const {
  RWC_EXPECTS(id.valid() &&
              static_cast<std::size_t>(id.value) < node_names_.size());
}

std::vector<NodeId> path_nodes(const Graph& graph, const Path& path) {
  std::vector<NodeId> nodes;
  if (path.empty()) return nodes;
  nodes.reserve(path.edges.size() + 1);
  nodes.push_back(graph.edge(path.edges.front()).src);
  for (EdgeId id : path.edges) {
    RWC_EXPECTS(graph.edge(id).src == nodes.back());
    nodes.push_back(graph.edge(id).dst);
  }
  return nodes;
}

std::string path_to_string(const Graph& graph, const Path& path) {
  if (path.empty()) return "(empty)";
  std::ostringstream os;
  const auto nodes = path_nodes(graph, path);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) os << " -> ";
    os << graph.node_name(nodes[i]);
  }
  return os.str();
}

util::Gbps path_bottleneck(const Graph& graph, const Path& path) {
  util::Gbps bottleneck{std::numeric_limits<double>::infinity()};
  for (EdgeId id : path.edges)
    bottleneck = std::min(bottleneck, graph.edge(id).capacity);
  return bottleneck;
}

}  // namespace rwc::graph
