#include "graph/ksp.hpp"

#include <algorithm>
#include <set>

#include "graph/dijkstra.hpp"
#include "util/check.hpp"

namespace rwc::graph {

namespace {

/// Shortest path avoiding a set of edges and nodes.
Path constrained_shortest_path(const Graph& graph, NodeId source,
                               NodeId target,
                               const std::set<EdgeId>& banned_edges,
                               const std::vector<bool>& banned_nodes) {
  auto usable = [&](EdgeId id) {
    const Edge& e = graph.edge(id);
    if (banned_nodes[static_cast<std::size_t>(e.src.value)]) return false;
    if (banned_nodes[static_cast<std::size_t>(e.dst.value)]) return false;
    return !banned_edges.contains(id);
  };
  auto weight = [&](EdgeId id) { return graph.edge(id).weight; };
  return extract_path(graph, dijkstra(graph, source, weight, usable), target);
}

bool same_edges(const Path& a, const Path& b) { return a.edges == b.edges; }

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& graph, NodeId source,
                                   NodeId target, std::size_t k) {
  RWC_EXPECTS(k >= 1);
  RWC_EXPECTS(source != target);

  std::vector<Path> result;
  Path first = shortest_path(graph, source, target);
  if (first.empty()) return result;
  result.push_back(std::move(first));

  // Candidate pool ordered by weight; ties broken on edge sequence for
  // determinism.
  auto cmp = [](const Path& a, const Path& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.edges < b.edges;
  };
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& previous = result.back();
    const auto prev_nodes = path_nodes(graph, previous);

    for (std::size_t spur_index = 0; spur_index + 1 < prev_nodes.size();
         ++spur_index) {
      const NodeId spur_node = prev_nodes[spur_index];

      // Root = previous path up to (excluding) the spur edge.
      Path root;
      for (std::size_t i = 0; i < spur_index; ++i) {
        root.edges.push_back(previous.edges[i]);
        root.weight += graph.edge(previous.edges[i]).weight;
      }

      // Ban the next edge of every accepted path sharing this root.
      std::set<EdgeId> banned_edges;
      for (const Path& accepted : result) {
        if (accepted.edges.size() <= spur_index) continue;
        if (!std::equal(root.edges.begin(), root.edges.end(),
                        accepted.edges.begin()))
          continue;
        banned_edges.insert(accepted.edges[spur_index]);
      }

      // Ban root nodes (except the spur node) to keep paths loopless.
      std::vector<bool> banned_nodes(graph.node_count(), false);
      for (std::size_t i = 0; i < spur_index; ++i)
        banned_nodes[static_cast<std::size_t>(prev_nodes[i].value)] = true;

      Path spur = constrained_shortest_path(graph, spur_node, target,
                                            banned_edges, banned_nodes);
      if (spur.empty() && spur_node != target) continue;

      Path total = root;
      total.weight += spur.weight;
      total.edges.insert(total.edges.end(), spur.edges.begin(),
                         spur.edges.end());
      if (total.edges.empty()) continue;

      const bool duplicate =
          std::any_of(candidates.begin(), candidates.end(),
                      [&](const Path& c) { return same_edges(c, total); }) ||
          std::any_of(result.begin(), result.end(),
                      [&](const Path& r) { return same_edges(r, total); });
      if (!duplicate) candidates.push_back(std::move(total));
    }

    if (candidates.empty()) break;
    const auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

}  // namespace rwc::graph
