#include "graph/dot.hpp"

#include <sstream>

#include "util/table.hpp"

namespace rwc::graph {

std::string to_dot(const Graph& graph, const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (NodeId node : graph.node_ids())
    os << "  \"" << graph.node_name(node) << "\";\n";
  for (EdgeId id : graph.edge_ids()) {
    const Edge& e = graph.edge(id);
    os << "  \"" << graph.node_name(e.src) << "\" -> \""
       << graph.node_name(e.dst) << "\" [label=\""
       << util::format_double(e.capacity.value, 0) << "G";
    if (e.cost != 0.0) os << ", " << util::format_double(e.cost, 0);
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rwc::graph
