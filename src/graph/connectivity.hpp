// Reachability and connectivity queries (used for topology validation and
// for availability accounting when links fail).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rwc::graph {

/// Nodes reachable from `source` following directed edges that pass
/// `usable`. Result is indexed by node id.
std::vector<bool> reachable_from(
    const Graph& graph, NodeId source,
    const std::function<bool(EdgeId)>& usable);

/// Nodes reachable from `source` using all edges.
std::vector<bool> reachable_from(const Graph& graph, NodeId source);

/// True when every node can reach every other node (directed edges treated
/// as given; an empty graph is connected).
bool is_strongly_connected(const Graph& graph);

/// True when the underlying undirected graph is connected.
bool is_weakly_connected(const Graph& graph);

}  // namespace rwc::graph
