// Yen's algorithm for the k shortest loopless paths, by edge weight.
// SWAN-style TE preinstalls the k shortest tunnels per demand pair; the
// augmentation layer relies on fake links participating here like any edge.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace rwc::graph {

/// Up to k shortest loopless paths from source to target ordered by weight.
/// Fewer are returned when the graph does not contain k distinct paths.
std::vector<Path> k_shortest_paths(const Graph& graph, NodeId source,
                                   NodeId target, std::size_t k);

}  // namespace rwc::graph
