// Graphviz DOT export for debugging topologies and augmented views.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace rwc::graph {

/// Renders the graph in DOT syntax. Edge labels show capacity and, when
/// non-zero, the cost ("<capacity>, <cost>" like the paper's Figure 7b).
std::string to_dot(const Graph& graph, const std::string& name = "rwc");

}  // namespace rwc::graph
