// Cross-round cache of shortest-path computations (rwc::graph).
//
// K-shortest-path precomputation (SWAN tunnels, Yen's algorithm) is pure in
// the graph's *routing structure* — node/edge layout and edge weights — and
// independent of capacities. Controller rounds and scenario sweeps solve on
// graphs whose structure recurs across rounds while capacities churn, so
// the cache keys every entry on a topology version counter plus a weight
// fingerprint of the graph and answers repeat queries without re-running
// Yen. Results are by definition bit-identical to recomputation (entries
// ARE previous results), so caching can never change outputs — only time.
//
// Invalidation:
//   * note_topology_change()        — version bump; drops everything. For
//     structural edits (nodes/edges added) or weight changes.
//   * note_capacity_change(edge)    — drops entries whose cached paths
//     traverse `edge`. Weight-only consumers (SWAN tunnel precomputation)
//     do not need this; it exists for consumers that cache capacity-derived
//     data (e.g. bottlenecks) alongside paths. A capacity transition
//     through zero changes edge *usability* for capacity-filtered
//     consumers, which should bump the version instead.
//
// Thread-safe: lookups/inserts take a mutex; on a miss the KSP computation
// runs outside the lock, so concurrent solvers only serialize on map
// access. Hit/miss/invalidation counts stream into the global registry
// (cache.path.* — docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace rwc::graph {

class PathCache {
 public:
  /// `max_entries` bounds memory; oldest insertions are evicted first.
  explicit PathCache(std::size_t max_entries = 4096);

  /// Fingerprint of the routing-relevant structure: node count and every
  /// edge's (src, dst, weight) in id order. Capacity is deliberately
  /// excluded — shortest paths by weight do not depend on it.
  static std::uint64_t weight_fingerprint(const Graph& graph);

  /// k_shortest_paths through the cache: returns the cached result when
  /// (version, graph fingerprint, source, target, k) was computed before,
  /// else computes and stores it. Always identical to calling
  /// graph::k_shortest_paths directly.
  std::vector<Path> k_shortest(const Graph& graph, NodeId source,
                               NodeId target, std::size_t k);

  /// Structural or weight change: bumps the version, dropping every entry.
  void note_topology_change();

  /// Capacity change on `edge` (of a graph with `fingerprint`): drops the
  /// entries of that graph whose cached paths traverse the edge.
  void note_capacity_change(std::uint64_t fingerprint, EdgeId edge);

  /// Current topology version (starts at 1).
  std::uint64_t version() const;

  std::size_t size() const;

  /// One cache entry in externalized form, for checkpointing (rwc::replay).
  struct ExportedEntry {
    std::uint64_t fingerprint = 0;
    std::int32_t source = -1;
    std::int32_t target = -1;
    std::uint64_t k = 0;
    std::vector<Path> paths;
  };

  /// Every entry in FIFO-insertion order.
  std::vector<ExportedEntry> snapshot() const;

  /// Replaces the contents with `entries` (oldest first), rebuilding the
  /// traversed-edge index; an empty vector restores the explicit
  /// cold-cache state. The version counter is bumped, like any other
  /// wholesale content change.
  void restore(std::span<const ExportedEntry> entries);

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    std::int32_t source = -1;
    std::int32_t target = -1;
    std::size_t k = 0;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    std::vector<Path> paths;
    std::vector<EdgeId> edges_used;  // sorted, deduplicated
  };

  void evict_to_capacity_locked();

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::uint64_t version_ = 1;
  std::map<Key, Entry> entries_;
  std::deque<Key> insertion_order_;  // FIFO eviction queue
};

}  // namespace rwc::graph
