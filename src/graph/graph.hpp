// Directed multigraph used for IP topologies and their augmented views.
//
// Edges carry the three attributes the paper's abstraction manipulates:
//   capacity — link rate in Gbps,
//   cost     — per-unit-flow penalty seen by min-cost TE (Algorithm 1's P'),
//   weight   — routing metric (hop count / latency) for shortest-path TE.
// Node and edge ids are strong int wrappers to prevent index mix-ups.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace rwc::graph {

struct NodeId {
  std::int32_t value = -1;
  constexpr bool valid() const { return value >= 0; }
  constexpr auto operator<=>(const NodeId&) const = default;
};

struct EdgeId {
  std::int32_t value = -1;
  constexpr bool valid() const { return value >= 0; }
  constexpr auto operator<=>(const EdgeId&) const = default;
};

/// One directed edge. Plain data; Graph owns the adjacency indexes.
struct Edge {
  NodeId src;
  NodeId dst;
  util::Gbps capacity{0.0};
  double cost = 0.0;
  double weight = 1.0;
};

/// Directed multigraph with named nodes. Mutation is append-only (nodes and
/// edges are never removed; callers build filtered copies instead), which
/// keeps ids stable across the augmentation/translation round-trip.
class Graph {
 public:
  Graph() = default;

  /// Adds a node; name may be empty (a "n<i>" name is synthesized).
  NodeId add_node(std::string name = {});

  /// Adds a directed edge. Requires valid endpoints and capacity >= 0.
  EdgeId add_edge(NodeId src, NodeId dst, util::Gbps capacity,
                  double cost = 0.0, double weight = 1.0);

  /// Adds a pair of opposite directed edges (a bidirectional link).
  std::pair<EdgeId, EdgeId> add_bidirectional(NodeId a, NodeId b,
                                              util::Gbps capacity,
                                              double cost = 0.0,
                                              double weight = 1.0);

  std::size_t node_count() const { return node_names_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Edge& edge(EdgeId id) const;
  Edge& edge(EdgeId id);

  std::span<const EdgeId> out_edges(NodeId node) const;
  std::span<const EdgeId> in_edges(NodeId node) const;

  const std::string& node_name(NodeId id) const;
  /// Looks a node up by name; nullopt when absent.
  std::optional<NodeId> find_node(std::string_view name) const;

  /// All node ids, 0..node_count-1.
  std::vector<NodeId> node_ids() const;
  /// All edge ids, 0..edge_count-1.
  std::vector<EdgeId> edge_ids() const;

  /// Finds an edge src->dst (the first one, if parallel edges exist).
  std::optional<EdgeId> find_edge(NodeId src, NodeId dst) const;

  /// Sum of all edge capacities.
  util::Gbps total_capacity() const;

 private:
  void check_node(NodeId id) const;

  std::vector<std::string> node_names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

/// A path as an edge sequence plus its total routing weight.
struct Path {
  std::vector<EdgeId> edges;
  double weight = 0.0;

  bool empty() const { return edges.empty(); }
};

/// Node sequence of a path (src of first edge, then successive dsts).
std::vector<NodeId> path_nodes(const Graph& graph, const Path& path);

/// Human-readable "A -> B -> C" rendering.
std::string path_to_string(const Graph& graph, const Path& path);

/// Minimum capacity along the path's edges; infinite for an empty path.
util::Gbps path_bottleneck(const Graph& graph, const Path& path);

}  // namespace rwc::graph
