// Single-source shortest paths with pluggable edge weights and filters.
// Used by CSPF TE, Yen's k-shortest paths, and SWAN path precomputation.
#pragma once

#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace rwc::graph {

/// Result of a Dijkstra run: distance and predecessor edge per node.
struct ShortestPathTree {
  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

  std::vector<double> distance;     // indexed by node id
  std::vector<EdgeId> parent_edge;  // invalid at source / unreachable nodes

  bool reached(NodeId node) const {
    return distance[static_cast<std::size_t>(node.value)] != kUnreachable;
  }
};

/// Dijkstra with caller-supplied weight and usability predicates.
/// `weight(edge)` must be >= 0 for usable edges.
template <typename WeightFn, typename UsableFn>
ShortestPathTree dijkstra(const Graph& graph, NodeId source, WeightFn weight,
                          UsableFn usable) {
  ShortestPathTree tree;
  tree.distance.assign(graph.node_count(), ShortestPathTree::kUnreachable);
  tree.parent_edge.assign(graph.node_count(), EdgeId{});
  tree.distance[static_cast<std::size_t>(source.value)] = 0.0;

  using Entry = std::pair<double, NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(node.value)]) continue;
    for (EdgeId id : graph.out_edges(node)) {
      if (!usable(id)) continue;
      const double w = weight(id);
      RWC_CHECK_MSG(w >= 0.0, "negative edge weight in dijkstra");
      const NodeId next = graph.edge(id).dst;
      const double candidate = dist + w;
      auto& best = tree.distance[static_cast<std::size_t>(next.value)];
      if (candidate < best) {
        best = candidate;
        tree.parent_edge[static_cast<std::size_t>(next.value)] = id;
        heap.emplace(candidate, next);
      }
    }
  }
  return tree;
}

/// Dijkstra over the graph's `weight` attribute, all edges usable.
ShortestPathTree dijkstra_by_weight(const Graph& graph, NodeId source);

/// Reconstructs the path from the tree's source to `target`; empty Path with
/// weight = infinity when unreachable (or target == source).
Path extract_path(const Graph& graph, const ShortestPathTree& tree,
                  NodeId target);

/// Convenience: shortest path by the graph's weight attribute.
Path shortest_path(const Graph& graph, NodeId source, NodeId target);

}  // namespace rwc::graph
