#include "graph/path_cache.hpp"

#include <algorithm>
#include <bit>

#include "fault/registry.hpp"
#include "graph/ksp.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::graph {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: cache.path.*).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& invalidations;

  static CacheMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static CacheMetrics metrics{
        registry.counter("cache.path.hits"),
        registry.counter("cache.path.misses"),
        registry.counter("cache.path.invalidations"),
    };
    return metrics;
  }
};

/// Word-at-a-time mixer (murmur3-finalizer style); the fingerprint runs on
/// every cached lookup, so it hashes per 64-bit word, not per byte.
inline std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  hash = (hash ^ value) * 0x2545f4914f6cdd1dULL;
  return hash ^ (hash >> 29);
}

}  // namespace

PathCache::PathCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::uint64_t PathCache::weight_fingerprint(const Graph& graph) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  hash = mix64(hash, graph.node_count());
  hash = mix64(hash, graph.edge_count());
  for (EdgeId id : graph.edge_ids()) {
    const Edge& edge = graph.edge(id);
    hash = mix64(hash, static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(edge.src.value)));
    hash = mix64(hash, static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(edge.dst.value)));
    hash = mix64(hash, std::bit_cast<std::uint64_t>(edge.weight));
  }
  return hash;
}

std::vector<Path> PathCache::k_shortest(const Graph& graph, NodeId source,
                                        NodeId target, std::size_t k) {
  auto& metrics = CacheMetrics::instance();
  const Key key{weight_fingerprint(graph), source.value, target.value, k};
  // Fault injection: drop the entry before lookup (forced recompute).
  // Results cannot change — entries ARE previous results — so this only
  // exercises the miss path mid-round. Keyed deterministically by query.
  const std::uint64_t fault_key =
      key.fingerprint ^ (static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(source.value))
                         << 32) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(target.value)) ^
      (static_cast<std::uint64_t>(k) << 17);
  const bool forced_miss =
      static_cast<bool>(fault::at("cache.path.lookup", fault_key));
  {
    std::lock_guard lock(mutex_);
    if (forced_miss) {
      if (entries_.erase(key) > 0) {
        std::erase(insertion_order_, key);
        metrics.invalidations.add();
      }
    }
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      metrics.hits.add();
      return it->second.paths;
    }
  }
  metrics.misses.add();

  // Compute outside the lock: concurrent solvers only serialize on the map.
  Entry entry;
  entry.paths = k_shortest_paths(graph, source, target, k);
  for (const Path& path : entry.paths)
    entry.edges_used.insert(entry.edges_used.end(), path.edges.begin(),
                            path.edges.end());
  std::sort(entry.edges_used.begin(), entry.edges_used.end());
  entry.edges_used.erase(
      std::unique(entry.edges_used.begin(), entry.edges_used.end()),
      entry.edges_used.end());

  std::vector<Path> paths = entry.paths;
  {
    std::lock_guard lock(mutex_);
    // A concurrent miss may have stored the same key first; both computed
    // the same value (KSP is pure), so either insert winning is fine.
    const auto [it, inserted] = entries_.emplace(key, std::move(entry));
    (void)it;
    if (inserted) {
      insertion_order_.push_back(key);
      evict_to_capacity_locked();
    }
  }
  return paths;
}

void PathCache::note_topology_change() {
  std::lock_guard lock(mutex_);
  ++version_;
  CacheMetrics::instance().invalidations.add(entries_.size());
  entries_.clear();
  insertion_order_.clear();
}

void PathCache::note_capacity_change(std::uint64_t fingerprint, EdgeId edge) {
  RWC_EXPECTS(edge.valid());
  std::lock_guard lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.fingerprint == fingerprint &&
        std::binary_search(it->second.edges_used.begin(),
                           it->second.edges_used.end(), edge)) {
      std::erase(insertion_order_, it->first);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) CacheMetrics::instance().invalidations.add(dropped);
}

std::uint64_t PathCache::version() const {
  std::lock_guard lock(mutex_);
  return version_;
}

std::size_t PathCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<PathCache::ExportedEntry> PathCache::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<ExportedEntry> out;
  out.reserve(insertion_order_.size());
  for (const Key& key : insertion_order_) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    out.push_back(ExportedEntry{key.fingerprint, key.source, key.target,
                                static_cast<std::uint64_t>(key.k),
                                it->second.paths});
  }
  return out;
}

void PathCache::restore(std::span<const ExportedEntry> entries) {
  std::lock_guard lock(mutex_);
  ++version_;
  entries_.clear();
  insertion_order_.clear();
  for (const ExportedEntry& exported : entries) {
    const Key key{exported.fingerprint, exported.source, exported.target,
                  static_cast<std::size_t>(exported.k)};
    Entry entry;
    entry.paths = exported.paths;
    for (const Path& path : entry.paths)
      entry.edges_used.insert(entry.edges_used.end(), path.edges.begin(),
                              path.edges.end());
    std::sort(entry.edges_used.begin(), entry.edges_used.end());
    entry.edges_used.erase(
        std::unique(entry.edges_used.begin(), entry.edges_used.end()),
        entry.edges_used.end());
    const auto [it, inserted] = entries_.insert_or_assign(key, std::move(entry));
    (void)it;
    if (inserted) insertion_order_.push_back(key);
    evict_to_capacity_locked();
  }
}

void PathCache::evict_to_capacity_locked() {
  while (entries_.size() > max_entries_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

}  // namespace rwc::graph
