#!/usr/bin/env python3
"""Doc link checker: every cross-reference must resolve.

Two classes of reference are enforced, because both rot silently:

1. Markdown links with relative targets in any tracked *.md file —
   ``[text](docs/SOLVERS.md)``, ``[text](../DESIGN.md#anchor)``. The
   target (anchor stripped) must exist relative to the file.
2. Doc-path tokens anywhere in the tree (markdown, sources, tests,
   benches, CI): any occurrence of ``docs/<Name>.md`` must name a file
   that exists. Source comments lean on these as contracts
   (e.g. mincost.cpp pointing at docs/SOLVERS.md), so a renamed or
   missing doc is a build-docs bug, not cosmetics.

Exits non-zero listing every broken reference.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
DOC_TOKEN = re.compile(r"\bdocs/[A-Za-z0-9_.-]+\.md\b")

def tracked_files(root: pathlib.Path) -> list[pathlib.Path]:
    out = subprocess.run(
        ["git", "ls-files"], cwd=root, check=True, capture_output=True,
        text=True)
    return [root / line for line in out.stdout.splitlines() if line]

def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    files = tracked_files(root)
    errors: list[str] = []

    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError):
            continue
        rel = path.relative_to(root)

        if path.suffix == ".md":
            for match in MD_LINK.finditer(text):
                target = match.group(1).split("#", 1)[0]
                if (not target or "://" in target
                        or target.startswith("mailto:")):
                    continue
                resolved = (path.parent / target).resolve()
                if not resolved.exists():
                    errors.append(f"{rel}: broken markdown link -> {target}")

        for match in DOC_TOKEN.finditer(text):
            token = match.group(0)
            if not (root / token).exists():
                errors.append(f"{rel}: dangling doc reference -> {token}")

    if errors:
        for error in sorted(set(errors)):
            print(error, file=sys.stderr)
        print(f"{len(set(errors))} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"doc links OK across {len(files)} tracked files")
    return 0

if __name__ == "__main__":
    sys.exit(main())
