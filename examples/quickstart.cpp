// Quickstart: the minimal librwc workflow.
//
//   1. Build an IP topology with configured link capacities.
//   2. Report per-link SNR to the DynamicCapacityController.
//   3. Hand it demands and an unmodified TE engine.
//   4. Read back which links to reconfigure and how traffic flows.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>

#include "core/controller.hpp"
#include "graph/graph.hpp"
#include "te/mcf_te.hpp"

int main() {
  using namespace rwc;
  using namespace util::literals;

  // 1. A three-node triangle, every link configured at 100 Gbps.
  graph::Graph topology;
  const auto paris = topology.add_node("Paris");
  const auto milan = topology.add_node("Milan");
  const auto zurich = topology.add_node("Zurich");
  topology.add_bidirectional(paris, milan, 100_Gbps);
  topology.add_bidirectional(milan, zurich, 100_Gbps);
  topology.add_bidirectional(paris, zurich, 100_Gbps);

  // 2. Controller with the standard modulation ladder (50..200 Gbps) and
  //    an unmodified min-cost-flow TE engine.
  te::McfTe engine;
  core::DynamicCapacityController controller(
      topology, optical::ModulationTable::standard(), engine,
      core::ControllerOptions{});

  // 3. Telemetry says Paris-Milan has excellent SNR; Paris-Zurich has
  //    degraded below the 100 G threshold (6.5 dB) but is not dead.
  std::vector<util::Db> snr(topology.edge_count(), 10.0_dB);
  for (graph::EdgeId e :
       {*topology.find_edge(paris, milan), *topology.find_edge(milan, paris)})
    snr[static_cast<std::size_t>(e.value)] = 16.0_dB;
  for (graph::EdgeId e : {*topology.find_edge(paris, zurich),
                          *topology.find_edge(zurich, paris)})
    snr[static_cast<std::size_t>(e.value)] = 5.0_dB;

  const te::TrafficMatrix demands = {
      {paris, milan, 160_Gbps, /*priority=*/0},
      {paris, zurich, 60_Gbps, /*priority=*/0},
  };

  // 4. One TE round.
  const auto report = controller.run_round(snr, demands);

  std::cout << "Routed " << report.total_routed << " of "
            << te::total_demand(demands) << " offered\n\n";

  std::cout << "Capacity reductions (walk, don't fail):\n";
  for (const auto& flap : report.reductions)
    std::cout << "  " << topology.node_name(topology.edge(flap.edge).src)
              << " -> " << topology.node_name(topology.edge(flap.edge).dst)
              << ": " << flap.from << " -> " << flap.to << '\n';

  std::cout << "\nCapacity upgrades chosen by the TE run (run!):\n";
  for (const auto& change : report.plan.upgrades)
    std::cout << "  "
              << topology.node_name(topology.edge(change.edge).src) << " -> "
              << topology.node_name(topology.edge(change.edge).dst) << ": "
              << change.from << " -> " << change.to << "  (carries "
              << change.upgrade_traffic << " of new traffic)\n";

  std::cout << "\nFlow assignment on the physical topology:\n";
  for (const auto& routing : report.plan.physical_assignment.routings)
    for (const auto& [path, volume] : routing.paths)
      std::cout << "  " << topology.node_name(routing.demand.src) << " -> "
                << topology.node_name(routing.demand.dst) << ": " << volume
                << " via " << graph::path_to_string(topology, path) << '\n';

  std::cout << "\nTransition is consistent (no transient overload): "
            << (report.transition_valid ? "yes" : "NO") << '\n';
  return 0;
}
