// Scenario: a week in the life of a continental WAN.
//
// Runs the discrete-event simulator on the 24-node US backbone with
// gravity + diurnal traffic and compares all four capacity policies —
// the experiment a network operator would run before deploying dynamic
// link capacities.
#include <iostream>

#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rwc;

  // Optional args: horizon days, demand scale.
  const double days = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.5;

  const graph::Graph topology = sim::us_wan24();
  te::McfTe engine;

  util::Rng rng(2026);
  sim::GravityParams gravity;
  gravity.total =
      util::Gbps{topology.total_capacity().value / 2.0 * scale};
  const auto demands = sim::gravity_matrix(topology, gravity, rng);

  std::cout << "US-WAN24: " << topology.node_count() << " nodes, "
            << sim::link_count(topology) << " links, offered "
            << te::total_demand(demands) << " (" << scale
            << "x fabric), horizon " << days << " days\n\n";

  util::TextTable rows({"policy", "delivered", "availability", "failures",
                        "flaps", "upgrades", "restorations", "downtime h"});
  for (sim::CapacityPolicy policy :
       {sim::CapacityPolicy::kStatic, sim::CapacityPolicy::kStaticAggressive,
        sim::CapacityPolicy::kDynamic,
        sim::CapacityPolicy::kDynamicHitless}) {
    sim::SimulationConfig config;
    config.horizon = days * util::kDay;
    config.te_interval = 30.0 * util::kMinute;
    config.policy = policy;
    config.static_capacity = util::Gbps{175.0};  // the aggressive strawman
    config.seed = 7;
    sim::WanSimulator simulator(topology, engine, config);
    const auto metrics = simulator.run(demands);
    rows.add_row({sim::to_string(policy),
                  util::format_percent(metrics.delivered_fraction()),
                  util::format_percent(metrics.availability),
                  std::to_string(metrics.link_failures),
                  std::to_string(metrics.link_flaps),
                  std::to_string(metrics.upgrades),
                  std::to_string(metrics.restorations),
                  util::format_double(metrics.reconfig_downtime_hours, 2)});
  }
  rows.print(std::cout);

  std::cout << "\nHow to read this: static-100 is today's network;"
               " static-aggressive (175 G\neverywhere) gains throughput but"
               " fails more; the dynamic policies adapt the\nrate to the"
               " SNR — run fast when clean, walk when degraded, crawl"
               " instead of\nfailing.\n";
  return 0;
}
