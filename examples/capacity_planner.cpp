// Scenario: capacity planning with the link-budget model.
//
// A planner answers two questions before deploying dynamic capacity:
//   1. Given route lengths (span counts), what rate can each segment run,
//      and how far can each modulation reach?
//   2. Across the measured fleet, how much capacity does SNR-adaptive
//      operation unlock compared to the static 100 Gbps configuration
//      (the paper's 145 Tbps headline)?
#include <iostream>

#include "optical/link_budget.hpp"
#include "telemetry/analysis.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  const auto table = optical::ModulationTable::standard();

  std::cout << "=== 1. Reach planning (80 km spans, 0.22 dB/km, NF 5 dB,"
               " 0 dBm, 32 GBd) ===\n\n";
  util::TextTable reach({"modulation", "rate", "required SNR", "max spans",
                         "max reach km"});
  for (const auto& format : table.formats()) {
    optical::LinkBudget budget;
    const int spans = optical::max_reach_spans(budget, format.min_snr,
                                               util::Db{1.0});  // 1 dB margin
    reach.add_row({format.name,
                   util::format_double(format.capacity.value, 0) + " G",
                   util::format_double(format.min_snr.value, 1) + " dB",
                   std::to_string(spans),
                   util::format_double(spans * budget.span.length_km, 0)});
  }
  reach.print(std::cout);

  std::cout << "\n=== 2. Route examples ===\n\n";
  util::TextTable routes({"route", "spans", "clear-sky SNR", "best rate"});
  struct Route {
    const char* name;
    int spans;
  };
  for (const Route& route : {Route{"metro ring segment", 2},
                             Route{"regional backbone", 8},
                             Route{"coast-to-coast express", 30},
                             Route{"transcontinental ultra-long-haul", 70}}) {
    optical::LinkBudget budget;
    budget.span_count = route.spans;
    const auto snr = optical::estimate_snr(budget);
    const auto rate = optical::feasible_capacity(budget, table,
                                                 util::Db{1.0});
    routes.add_row({route.name, std::to_string(route.spans),
                    util::format_double(snr.value, 1) + " dB",
                    rate.value > 0.0
                        ? util::format_double(rate.value, 0) + " G"
                        : "regeneration needed"});
  }
  routes.print(std::cout);

  std::cout << "\n=== 3. Fleet upgrade opportunity ===\n\n";
  const int fibers = argc > 1 ? std::atoi(argv[1]) : 10;  // 400 links default
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = fibers;
  params.wavelengths_per_fiber = 40;
  const telemetry::SnrFleetGenerator fleet(params, 20170701);
  const auto report =
      telemetry::analyze_fleet(fleet, table, util::Gbps{100.0});
  const int links = fleet.link_count();
  std::cout << "Links analyzed:          " << links << "\n";
  std::cout << "Total feasible capacity: "
            << util::format_double(report.total_feasible.value / 1000.0, 1)
            << " Tbps (vs " << util::format_double(links * 0.1, 1)
            << " Tbps static)\n";
  std::cout << "Unlockable gain:         "
            << util::format_double(report.total_gain.value / 1000.0, 1)
            << " Tbps ("
            << util::format_double(
                   report.total_gain.value / links, 1)
            << " Gbps per link; the paper reports 145 Tbps over ~2000"
               " links)\n";
  return 0;
}
