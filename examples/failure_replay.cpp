// Scenario: replaying an operator's failure-ticket log against the dynamic
// capacity controller.
//
// For every ticket we check whether the paper's "walk, don't fail" rule
// would have kept the link alive at a lower rate, and how much outage time
// the WAN would have recovered. This is the Section 2.2 analysis as a
// runnable operations tool.
#include <iostream>

#include "optical/modulation.hpp"
#include "tickets/analysis.hpp"
#include "tickets/generator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rwc;

  const int events = argc > 1 ? std::atoi(argv[1]) : 250;
  tickets::TicketModelParams params;
  params.event_count = events;
  const auto ticket_log = tickets::generate_tickets(params, 20171130);
  const auto table = optical::ModulationTable::standard();

  std::cout << "Replaying " << ticket_log.size()
            << " unplanned failure tickets (7 months)...\n\n";

  // Per-ticket disposition under dynamic capacity.
  std::size_t kept_alive = 0;
  double hours_recovered = 0.0;
  util::TextTable sample({"ticket", "cause", "lowest SNR", "outage h",
                          "dynamic-capacity outcome"});
  for (const auto& ticket : ticket_log) {
    const auto best = table.best_for_snr(ticket.lowest_snr);
    const bool survives = best.has_value();
    if (survives) {
      ++kept_alive;
      hours_recovered += ticket.outage_duration / util::kHour;
    }
    if (ticket.id <= 12) {  // print the first few as a sample
      sample.add_row(
          {std::to_string(ticket.id), tickets::to_string(ticket.cause),
           util::format_double(ticket.lowest_snr.value, 1) + " dB",
           util::format_double(ticket.outage_duration / util::kHour, 1),
           survives ? "stays up at " +
                          util::format_double(best->capacity.value, 0) +
                          " Gbps (" + best->name + ")"
                    : "hard down (loss of light)"});
    }
  }
  sample.print(std::cout);

  const auto breakdown = tickets::breakdown_by_cause(ticket_log);
  const auto opportunity = tickets::opportunity_report(ticket_log, table);

  std::cout << "\nRoot causes (events):\n";
  for (tickets::RootCause cause : tickets::kAllRootCauses)
    std::cout << "  " << tickets::to_string(cause) << ": "
              << util::format_percent(breakdown.event_share(cause)) << '\n';

  std::cout << "\nVerdict:\n";
  std::cout << "  Failures surviving as capacity flaps: " << kept_alive
            << " / " << ticket_log.size() << " ("
            << util::format_percent(static_cast<double>(kept_alive) /
                                    ticket_log.size())
            << ", paper: ~25%)\n";
  std::cout << "  Outage hours converted to degraded-rate operation: "
            << util::format_double(hours_recovered, 0) << " h\n";
  std::cout << "  Non-fiber-cut events: "
            << util::format_percent(opportunity.non_cut_event_fraction)
            << " (paper: >90%)\n";
  return 0;
}
