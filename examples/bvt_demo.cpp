// Scenario: driving a bandwidth-variable transceiver over its MDIO
// interface — the Section 3.1 testbed as a runnable demo.
//
// Walks the device through the modulation ladder while the link SNR decays,
// showing constellations, lock state, and the downtime difference between
// the laser-cycling and hitless procedures.
#include <cmath>
#include <iostream>

#include "bvt/constellation.hpp"
#include "bvt/device.hpp"
#include "optical/ber.hpp"
#include "util/table.hpp"

int main() {
  using namespace rwc;
  using namespace util::literals;

  const auto table = optical::ModulationTable::standard();
  bvt::BvtDevice device(table, 0xBEEF);

  std::cout << "Device id: 0x" << std::hex
            << device.mdio_read(bvt::Register::kDeviceId) << std::dec
            << ", default rate "
            << device.mdio_read(bvt::Register::kActiveRateGbps)
            << " Gbps\n\n";

  // Bring the link up at a healthy SNR.
  device.set_link_snr(16.5_dB);
  device.mdio_write(bvt::Register::kControl,
                    bvt::control::kLaserEnable | bvt::control::kTxEnable);
  std::cout << "Laser on, carrier "
            << (device.carrier_locked() ? "LOCKED" : "UNLOCKED") << " at "
            << device.active_capacity() << "\n\n";

  // Show what the receiver DSP sees at three rates.
  util::Rng rng(1);
  for (double rate : {100.0, 150.0, 200.0}) {
    const auto report = device.change_modulation(util::Gbps{rate},
                                                 bvt::Procedure::kEfficient);
    const auto& format = device.active_format();
    const int points = static_cast<int>(
        std::lround(std::pow(2.0, format.bits_per_symbol)));
    const auto received =
        bvt::sample_constellation(points, device.link_snr(), 4000, rng);
    std::cout << format.name << " @ " << device.link_snr() << "  (change took "
              << util::format_double(report.downtime * 1000.0, 1)
              << " ms, hitless procedure)\n"
              << bvt::render_constellation(received, 27) << '\n';
  }

  // Now compare procedures for the same change.
  util::TextTable rows({"procedure", "downtime", "locked after"});
  for (bvt::Procedure procedure :
       {bvt::Procedure::kStandard, bvt::Procedure::kEfficient}) {
    device.change_modulation(100_Gbps, bvt::Procedure::kEfficient);
    const auto report = device.change_modulation(200_Gbps, procedure);
    rows.add_row({bvt::to_string(procedure),
                  report.downtime >= 1.0
                      ? util::format_double(report.downtime, 1) + " s"
                      : util::format_double(report.downtime * 1000.0, 1) +
                            " ms",
                  report.success ? "yes" : "no"});
  }
  rows.print(std::cout);

  // SNR decay: the device walks down the ladder instead of dying.
  std::cout << "\nSNR decay — walking down the ladder:\n";
  util::TextTable walk({"SNR", "best feasible", "action"});
  for (double snr : {16.0, 12.0, 9.0, 5.5, 3.2, 1.0}) {
    device.set_link_snr(util::Db{snr});
    const auto best = table.best_for_snr(util::Db{snr});
    std::string action;
    if (best.has_value()) {
      const auto report = device.change_modulation(
          best->capacity, bvt::Procedure::kEfficient);
      action = "reconfigured to " + best->name + " in " +
               util::format_double(report.downtime * 1000.0, 1) + " ms";
    } else {
      action = "below 50 Gbps threshold: link down";
    }
    walk.add_row({util::format_double(snr, 1) + " dB",
                  best ? util::format_double(best->capacity.value, 0) + " G"
                       : "none",
                  action});
  }
  walk.print(std::cout);
  std::cout << "\nReconfigurations performed: " << device.reconfig_count()
            << '\n';
  return 0;
}
