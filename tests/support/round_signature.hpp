// Shared round-signature helpers for every test tree that compares
// controller rounds bitwise: the property harness (tests/prop/), the
// example-based determinism/replay suites, and the fleet differential
// layer (tests/test_fleet_differential.cpp, tests/prop/prop_fleet.cpp).
// Kept in namespace rwc::prop — this is the single definition the
// harness-wide includes resolve to; tests/prop/invariants.hpp re-exports
// it for existing call sites.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.hpp"

namespace rwc::prop {

/// Outcome of one invariant check: ok, or a human-readable violation.
struct InvariantResult {
  bool ok = true;
  std::string detail;

  static InvariantResult pass() { return {}; }
  static InvariantResult fail(std::string detail) {
    return {false, std::move(detail)};
  }
  explicit operator bool() const { return ok; }
};

/// First failing result of a sequence of checks (all-pass otherwise).
inline InvariantResult all_of(std::initializer_list<InvariantResult> checks) {
  for (const InvariantResult& check : checks)
    if (!check.ok) return check;
  return InvariantResult::pass();
}

/// The comparable fingerprint of one controller round: everything the
/// pool-size determinism contract (docs/CONCURRENCY.md) promises is
/// bit-identical across thread counts — and everything the incremental
/// re-solve contract (docs/FLEET.md) promises is bit-identical between
/// the hot path and a full re-solve. Work counters (evaluations, stage
/// seconds, incremental_hit, dirty_links) are deliberately excluded —
/// speculative waves may discard extra evaluations at pool sizes >= 2,
/// and the hot path exists precisely to skip work.
struct RoundSignature {
  std::vector<std::pair<std::int32_t, double>> upgrades;  // (edge, to)
  double routed = 0.0;
  double penalty = 0.0;
  std::size_t reductions = 0;
  std::size_t restorations = 0;
  bool transition_valid = false;

  friend bool operator==(const RoundSignature&,
                         const RoundSignature&) = default;
};

inline RoundSignature signature_of(
    const core::DynamicCapacityController::RoundReport& report) {
  RoundSignature sig;
  for (const auto& change : report.plan.upgrades)
    sig.upgrades.emplace_back(change.edge.value, change.to.value);
  sig.routed = report.total_routed.value;
  sig.penalty = report.total_penalty;
  sig.reductions = report.reductions.size();
  sig.restorations = report.restorations.size();
  sig.transition_valid = report.transition_valid;
  return sig;
}

inline std::string to_string(const RoundSignature& sig) {
  std::ostringstream out;
  out << "routed=" << sig.routed << " penalty=" << sig.penalty
      << " reductions=" << sig.reductions
      << " restorations=" << sig.restorations
      << " transition_valid=" << sig.transition_valid << " upgrades=[";
  for (std::size_t i = 0; i < sig.upgrades.size(); ++i) {
    if (i > 0) out << ", ";
    out << sig.upgrades[i].first << "->" << sig.upgrades[i].second;
  }
  out << "]";
  return out.str();
}

/// Pool-size / hot-path invariance: `got` must equal `expected`.
inline InvariantResult check_signatures_equal(const RoundSignature& expected,
                                              const RoundSignature& got,
                                              const std::string& context) {
  if (expected == got) return InvariantResult::pass();
  return InvariantResult::fail(context + ": expected {" +
                               to_string(expected) + "} got {" +
                               to_string(got) + "}");
}

}  // namespace rwc::prop
