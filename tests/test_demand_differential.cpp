// Differential layer for closed-loop demand estimation (docs/DEMAND.md):
// on zero-noise counters with on-grid true volumes the estimated-demand
// control loop must reproduce the oracle-demand loop's round signatures
// BIT-IDENTICALLY (the exact-recovery certificate makes the estimate the
// truth), the estimated loop's signature chain must be invariant to the
// thread-pool size, and noisy estimation must degrade gracefully — every
// round still satisfies the capacity bound and flow conservation, and every
// estimate stays finite and non-negative.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "demand/estimator.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "prop/invariants.hpp"
#include "replay/driver.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using replay::ReplayConfig;
using replay::ReplayDriver;

struct Fixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  ReplayConfig config;
};

/// Instance fixture with ON-GRID demand volumes: the exact-recovery
/// certificate compares re-synthesized counters bitwise, so oracle
/// equivalence needs truths the 1e-6 Gbps estimate grid can represent
/// (docs/DEMAND.md §4). Diurnal scaling is off for the same reason — a
/// scaled volume falls off the grid.
Fixture make_fixture(std::uint64_t seed, std::uint64_t rounds) {
  util::Rng rng = util::Rng::stream(seed, 1);
  Fixture fixture;
  fixture.topology = sim::waxman(9, rng);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{fixture.topology.total_capacity().value * 0.5};
  fixture.demands = sim::gravity_matrix(fixture.topology, gravity, rng);
  for (te::Demand& demand : fixture.demands)
    demand.volume = util::Gbps{demand::snap_to_grid(demand.volume.value)};
  fixture.config.rounds = rounds;
  fixture.config.diurnal = false;
  fixture.config.hysteresis = core::HysteresisParams{};
  fixture.config.seed = util::Rng::stream(seed, 2).next_u64();
  return fixture;
}

std::vector<prop::RoundSignature> run_arm(const Fixture& fixture,
                                          const ReplayConfig& config,
                                          std::uint64_t* chain = nullptr) {
  te::McfTe engine;
  ReplayDriver driver(fixture.topology, engine, fixture.demands, config);
  std::vector<prop::RoundSignature> signatures;
  while (!driver.done()) signatures.push_back(prop::signature_of(driver.step()));
  if (chain != nullptr) *chain = driver.signature_chain();
  return signatures;
}

TEST(DemandDifferential, ZeroNoiseEstimatedMatchesOracleOnEveryRound) {
  for (const std::uint64_t seed : {11u, 23u}) {
    const Fixture fixture = make_fixture(seed, 16);

    ReplayConfig oracle = fixture.config;
    std::uint64_t oracle_chain = 0;
    const auto oracle_arm = run_arm(fixture, oracle, &oracle_chain);

    ReplayConfig estimated = fixture.config;
    estimated.demand.source = demand::DemandSource::kEstimated;
    const auto& exact_counter =
        obs::Registry::global().counter("demand.estimates_exact");
    const std::uint64_t exact_before = exact_counter.value();
    std::uint64_t estimated_chain = 0;
    const auto estimated_arm = run_arm(fixture, estimated, &estimated_chain);

    ASSERT_EQ(oracle_arm.size(), estimated_arm.size());
    for (std::size_t r = 0; r < oracle_arm.size(); ++r) {
      const prop::InvariantResult check = prop::check_signatures_equal(
          oracle_arm[r], estimated_arm[r],
          "seed " + std::to_string(seed) + ", round " + std::to_string(r));
      ASSERT_TRUE(check.ok) << check.detail;
    }
    EXPECT_EQ(oracle_chain, estimated_chain) << "seed " << seed;
    // Vacuity: the equivalence must come from certified exact recoveries,
    // not from the estimator never running. Round 0 bootstraps from intent
    // (no installed routing to invert); every later round must certify.
    EXPECT_GE(exact_counter.value() - exact_before, fixture.config.rounds - 1)
        << "seed " << seed;
  }
}

TEST(DemandDifferential, EstimatedChainInvariantToPoolSizes) {
  const Fixture fixture = make_fixture(37, 12);
  ReplayConfig config = fixture.config;
  config.demand.source = demand::DemandSource::kEstimated;
  config.demand.noise = 0.02;  // exercise the damped/noisy solve path too

  std::uint64_t reference_chain = 0;
  const auto reference = run_arm(fixture, config, &reference_chain);

  for (const std::size_t pool_threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(pool_threads);
    ReplayConfig pooled = config;
    pooled.pool = &pool;
    std::uint64_t chain = 0;
    const auto got = run_arm(fixture, pooled, &chain);
    ASSERT_EQ(reference.size(), got.size()) << "pool=" << pool_threads;
    for (std::size_t r = 0; r < reference.size(); ++r) {
      const prop::InvariantResult check = prop::check_signatures_equal(
          reference[r], got[r],
          "pool=" + std::to_string(pool_threads) + ", round " +
              std::to_string(r));
      ASSERT_TRUE(check.ok) << check.detail;
    }
    EXPECT_EQ(chain, reference_chain) << "pool=" << pool_threads;
  }
}

TEST(DemandDifferential, NoisyEstimationDegradesGracefully) {
  // With 5% counter noise and packet loss the estimate cannot match the
  // oracle — but the CONTROL LOOP must stay sound: configured rates never
  // exceed what the observed SNR supports, accepted routings conserve flow
  // on the current topology, and every estimated volume is finite and
  // non-negative (the estimator's hard output contract).
  const Fixture fixture = make_fixture(53, 12);
  ReplayConfig config = fixture.config;
  config.demand.source = demand::DemandSource::kEstimated;
  config.demand.noise = 0.05;
  config.demand.loss_rate = 0.01;

  te::McfTe engine;
  ReplayDriver driver(fixture.topology, engine, fixture.demands, config);
  std::uint64_t estimator_rounds = 0;
  driver.set_round_observer(
      [&](std::uint64_t round, std::span<const util::Db> snr,
          const core::DynamicCapacityController::RoundReport& report) {
        const auto& controller = driver.controller();
        const prop::InvariantResult bound = prop::check_capacity_bound(
            controller.table(), snr, config.snr_margin,
            controller.configured_capacities());
        ASSERT_TRUE(bound.ok) << "round " << round << ": " << bound.detail;
        const prop::InvariantResult flow = prop::check_flow_conservation(
            controller.current_topology(), report.plan.physical_assignment);
        ASSERT_TRUE(flow.ok) << "round " << round << ": " << flow.detail;

        ASSERT_TRUE(report.demand.has_value()) << "round " << round;
        const demand::DemandPipeline* pipeline = controller.demand_pipeline();
        ASSERT_NE(pipeline, nullptr);
        for (const te::Demand& demand : pipeline->last_estimated()) {
          EXPECT_TRUE(std::isfinite(demand.volume.value)) << "round " << round;
          EXPECT_GE(demand.volume.value, 0.0) << "round " << round;
        }
        if (report.demand->estimated) ++estimator_rounds;
      });
  driver.run();
  EXPECT_GT(estimator_rounds, 0u)
      << "noisy arm never ran a least-squares solve — vacuous test";
}

}  // namespace
}  // namespace rwc
