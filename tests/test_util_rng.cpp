// Unit and property tests for the deterministic RNG and its distribution
// transforms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rwc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 9.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 9.25);
  }
}

TEST(Rng, UniformIntCoversAllValuesInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(3, 2), CheckError);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.normal(2.0, 3.0));
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, 2.0, 0.05);
  EXPECT_NEAR(s.stddev, 3.0, 0.05);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.exponential(4.0));
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, 4.0, 0.1);
  EXPECT_GE(s.min, 0.0);
}

TEST(Rng, LognormalFromMomentsMatchesRequestedMoments) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i)
    samples.push_back(rng.lognormal_from_moments(10.0, 3.0));
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, 10.0, 0.15);
  EXPECT_NEAR(s.stddev, 3.0, 0.2);
  EXPECT_GT(s.min, 0.0);
}

TEST(Rng, PoissonMeanAndNonNegative) {
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i)
    samples.push_back(static_cast<double>(rng.poisson(3.5)));
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.mean, 3.5, 0.1);
  EXPECT_GE(s.min, 0.0);
}

TEST(Rng, PoissonZeroMeanIsAlwaysZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PickWeightedHonorsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, PickWeightedRejectsAllZero) {
  Rng rng(37);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.pick_weighted(weights), CheckError);
}

TEST(Rng, ForkStreamsAreDecorrelatedAndDeterministic) {
  Rng base(99);
  Rng child1 = base.fork(1);
  Rng child2 = base.fork(2);
  Rng child1_again = Rng(99).fork(1);
  int equal12 = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = child1.next_u64();
    const auto b = child2.next_u64();
    EXPECT_EQ(a, child1_again.next_u64());
    if (a == b) ++equal12;
  }
  EXPECT_LT(equal12, 3);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork(7);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// Property sweep: distribution sanity across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, NormalSymmetry) {
  Rng rng(GetParam());
  int positive = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.normal(0.0, 1.0) > 0.0) ++positive;
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 2u, 42u, 1234567u,
                                           0xDEADBEEFu));

TEST(RngStream, StreamZeroIsIdentity) {
  // Contract: stream 0 is bit-identical to Rng(seed), so call sites can
  // migrate to Rng::stream without perturbing existing outputs.
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    Rng direct(seed);
    Rng stream = Rng::stream(seed, 0);
    for (int i = 0; i < 256; ++i)
      ASSERT_EQ(direct.next_u64(), stream.next_u64()) << "seed " << seed;
  }
}

TEST(RngStream, StreamsAreDeterministic) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, StreamsDecorrelate) {
  // Child streams of one seed, and the same stream id across nearby seeds,
  // should look unrelated.
  Rng a = Rng::stream(42, 1);
  Rng b = Rng::stream(42, 2);
  Rng c = Rng::stream(43, 1);
  int ab = 0;
  int ac = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.next_u64();
    if (va == b.next_u64()) ++ab;
    if (va == c.next_u64()) ++ac;
  }
  EXPECT_LT(ab, 3);
  EXPECT_LT(ac, 3);
}

TEST(RngStream, DerivationIsOrderIndependent) {
  // Pure function of (seed, id): constructing streams in any order or
  // interleaving draws cannot change what a stream produces.
  Rng late_five = Rng::stream(7, 5);
  Rng early_five = Rng::stream(7, 5);
  Rng other = Rng::stream(7, 9);
  (void)other.next_u64();
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 64; ++i) draws.push_back(early_five.next_u64());
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(late_five.next_u64(), draws[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace rwc::util
