// Tests for the device-backed simulator mode and the Q-factor conversions.
#include <gtest/gtest.h>

#include "optical/q_factor.hpp"
#include "util/check.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using util::Gbps;

TEST(DeviceBackedSim, RunsAndKeepsMetricsConsistent) {
  const graph::Graph g = sim::abilene();
  te::McfTe engine;
  sim::SimulationConfig config;
  config.horizon = 8.0 * util::kHour;
  config.te_interval = 30.0 * util::kMinute;
  config.policy = sim::CapacityPolicy::kDynamicHitless;
  config.device_backed = true;
  config.seed = 5;
  config.diurnal = false;
  sim::WanSimulator simulator(g, engine, config);

  util::Rng rng(9);
  sim::GravityParams gravity;
  gravity.total = Gbps{2000.0};
  const auto metrics = simulator.run(sim::gravity_matrix(g, gravity, rng));
  EXPECT_EQ(metrics.te_rounds, 16u);
  EXPECT_GT(metrics.delivered_gbps_hours, 0.0);
  EXPECT_LE(metrics.delivered_gbps_hours, metrics.offered_gbps_hours + 1e-6);
  EXPECT_GT(metrics.upgrades, 0u);
  // The controller's margin keeps devices lockable: no failures expected
  // on a healthy fleet.
  EXPECT_EQ(metrics.lock_failures, 0u);
}

TEST(DeviceBackedSim, CloseToAnalyticAccountOnSameSeed) {
  const graph::Graph g = sim::abilene();
  te::McfTe engine;
  util::Rng rng(11);
  sim::GravityParams gravity;
  gravity.total = Gbps{2200.0};
  const auto demands = sim::gravity_matrix(g, gravity, rng);

  sim::SimulationConfig analytic;
  analytic.horizon = 8.0 * util::kHour;
  analytic.te_interval = 30.0 * util::kMinute;
  analytic.policy = sim::CapacityPolicy::kDynamicHitless;
  analytic.seed = 21;
  analytic.diurnal = false;
  auto device = analytic;
  device.device_backed = true;

  const auto analytic_metrics =
      sim::WanSimulator(g, engine, analytic).run(demands);
  const auto device_metrics =
      sim::WanSimulator(g, engine, device).run(demands);
  // Identical TE decisions (same controller seed path), so routed traffic
  // agrees to within the small downtime-model differences.
  EXPECT_EQ(analytic_metrics.upgrades, device_metrics.upgrades);
  EXPECT_NEAR(device_metrics.delivered_gbps_hours,
              analytic_metrics.delivered_gbps_hours,
              0.02 * analytic_metrics.delivered_gbps_hours);
}

TEST(DeviceBackedSim, StandardProcedureCostsMoreDowntime) {
  const graph::Graph g = sim::abilene();
  te::McfTe engine;
  util::Rng rng(13);
  sim::GravityParams gravity;
  gravity.total = Gbps{2400.0};
  const auto demands = sim::gravity_matrix(g, gravity, rng);

  sim::SimulationConfig hitless;
  hitless.horizon = 8.0 * util::kHour;
  hitless.te_interval = 30.0 * util::kMinute;
  hitless.policy = sim::CapacityPolicy::kDynamicHitless;
  hitless.device_backed = true;
  hitless.seed = 31;
  hitless.diurnal = false;
  auto standard = hitless;
  standard.policy = sim::CapacityPolicy::kDynamic;

  const auto hitless_metrics =
      sim::WanSimulator(g, engine, hitless).run(demands);
  const auto standard_metrics =
      sim::WanSimulator(g, engine, standard).run(demands);
  EXPECT_GT(standard_metrics.reconfig_downtime_hours,
            hitless_metrics.reconfig_downtime_hours);
  EXPECT_GE(hitless_metrics.delivered_gbps_hours,
            standard_metrics.delivered_gbps_hours - 1e-9);
}

TEST(QFactor, BerRoundTrip) {
  for (double q : {2.0, 4.0, 6.0, 7.0}) {
    const double ber = optical::ber_from_q(q);
    EXPECT_GT(ber, 0.0);
    EXPECT_NEAR(optical::q_from_ber(ber), q, 1e-6);
  }
}

TEST(QFactor, KnownAnchors) {
  // Q = 6 -> BER ~ 1e-9 (the classic rule of thumb).
  EXPECT_NEAR(optical::ber_from_q(6.0), 1e-9, 2e-10);
  // Q² of 15.56 dB corresponds to Q = 6.
  EXPECT_NEAR(optical::q_squared_db(6.0).value, 15.563, 1e-3);
  EXPECT_NEAR(optical::q_from_q_squared_db(util::Db{15.563}), 6.0, 1e-3);
}

TEST(QFactor, Validation) {
  EXPECT_THROW(optical::q_from_ber(0.0), util::CheckError);
  EXPECT_THROW(optical::q_from_ber(0.6), util::CheckError);
  EXPECT_THROW(optical::q_squared_db(0.0), util::CheckError);
}

}  // namespace
}  // namespace rwc
