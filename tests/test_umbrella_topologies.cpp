// Compile-level test of the umbrella header plus tests for the additional
// built-in topology.
#include <gtest/gtest.h>

#include "rwc.hpp"

namespace rwc {
namespace {

using namespace util::literals;

TEST(Umbrella, HeaderPullsInTheWholeApi) {
  // One symbol from each subsystem proves the umbrella compiles and links.
  util::Rng rng(1);
  graph::Graph g = sim::europe22();
  EXPECT_TRUE(graph::is_strongly_connected(g));
  auto view = flow::make_network(g);
  EXPECT_GT(flow::max_flow_dinic(view.net, 0, 21), 0.0);
  lp::LpProblem lp(lp::Sense::kMaximize);
  (void)lp.add_variable(1.0, 1.0);
  EXPECT_TRUE(lp.solve().optimal());
  EXPECT_EQ(optical::ModulationTable::standard().max_capacity(), 200_Gbps);
  EXPECT_GT(tickets::generate_tickets({}, 1).size(), 0u);
  bvt::BvtDevice device(optical::ModulationTable::standard(), 1);
  EXPECT_EQ(device.mdio_read(bvt::Register::kDeviceId), bvt::kBvtDeviceId);
  te::McfTe engine;
  core::DynamicCapacityController controller(
      sim::fig7_square(), optical::ModulationTable::standard(), engine, {});
  EXPECT_EQ(controller.physical_topology().node_count(), 4u);
}

TEST(Europe22, ShapeAndConnectivity) {
  const graph::Graph g = sim::europe22();
  EXPECT_EQ(g.node_count(), 22u);
  EXPECT_EQ(sim::link_count(g), 36u);
  EXPECT_TRUE(graph::is_strongly_connected(g));
  EXPECT_TRUE(g.find_node("LON").has_value());
  EXPECT_TRUE(g.find_node("ATH").has_value());
  for (graph::EdgeId e : g.edge_ids())
    EXPECT_EQ(g.edge(e).capacity, 100_Gbps);
}

TEST(Europe22, ParallelExpressLinkExists) {
  const graph::Graph g = sim::europe22();
  const auto lon = *g.find_node("LON");
  const auto par = *g.find_node("PAR");
  std::size_t lon_par = 0;
  for (graph::EdgeId e : g.out_edges(lon))
    if (g.edge(e).dst == par) ++lon_par;
  EXPECT_EQ(lon_par, 2u);  // base pair + express pair
}

TEST(Europe22, WorksEndToEndWithTheController) {
  const graph::Graph g = sim::europe22();
  te::McfTe engine;
  core::DynamicCapacityController controller(
      g, optical::ModulationTable::standard(), engine, {});
  const std::vector<util::Db> snr(g.edge_count(), 18.0_dB);
  const te::TrafficMatrix demands = {
      {*g.find_node("LIS"), *g.find_node("HEL"), 150_Gbps, 0}};
  const auto report = controller.run_round(snr, demands);
  EXPECT_NEAR(report.total_routed.value, 150.0, 1e-5);
  te::validate_assignment(controller.current_topology(),
                          report.plan.physical_assignment);
}

}  // namespace
}  // namespace rwc
