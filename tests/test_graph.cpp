// Tests for the graph container, path helpers, Dijkstra and connectivity.
#include <gtest/gtest.h>

#include <vector>

#include "graph/connectivity.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "sim/topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::graph {
namespace {

using util::Gbps;
using namespace util::literals;

Graph diamond() {
  // a -> b -> d and a -> c -> d, plus a slow direct a -> d.
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const NodeId d = g.add_node("d");
  g.add_edge(a, b, 10_Gbps, 0.0, 1.0);
  g.add_edge(b, d, 10_Gbps, 0.0, 1.0);
  g.add_edge(a, c, 10_Gbps, 0.0, 2.0);
  g.add_edge(c, d, 10_Gbps, 0.0, 2.0);
  g.add_edge(a, d, 10_Gbps, 0.0, 5.0);
  return g;
}

TEST(Graph, NodesAndEdgesBasics) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node_name(a), "a");
  EXPECT_EQ(g.node_name(b), "n1");
  const EdgeId e = g.add_edge(a, b, 5_Gbps, 2.0, 3.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_EQ(g.edge(e).capacity, 5_Gbps);
  EXPECT_EQ(g.edge(e).cost, 2.0);
  EXPECT_EQ(g.edge(e).weight, 3.0);
  EXPECT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_EQ(g.in_edges(b).size(), 1u);
  EXPECT_TRUE(g.out_edges(b).empty());
}

TEST(Graph, FindNodeAndEdge) {
  Graph g = diamond();
  ASSERT_TRUE(g.find_node("c").has_value());
  EXPECT_FALSE(g.find_node("zz").has_value());
  const NodeId a = *g.find_node("a");
  const NodeId b = *g.find_node("b");
  ASSERT_TRUE(g.find_edge(a, b).has_value());
  EXPECT_FALSE(g.find_edge(b, a).has_value());
}

TEST(Graph, BidirectionalAddsTwoOpposedEdges) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const auto [ab, ba] = g.add_bidirectional(a, b, 7_Gbps);
  EXPECT_EQ(g.edge(ab).src, a);
  EXPECT_EQ(g.edge(ba).src, b);
  EXPECT_EQ(g.edge(ab).capacity, g.edge(ba).capacity);
  EXPECT_EQ(g.total_capacity(), 14_Gbps);
}

TEST(Graph, InvalidAccessThrows) {
  Graph g;
  const NodeId a = g.add_node("a");
  EXPECT_THROW(g.edge(EdgeId{0}), util::CheckError);
  EXPECT_THROW(g.add_edge(a, NodeId{5}, 1_Gbps), util::CheckError);
  EXPECT_THROW(g.add_edge(a, a, Gbps{-1.0}), util::CheckError);
}

TEST(Path, NodesStringAndBottleneck) {
  Graph g = diamond();
  const Path p = shortest_path(g, *g.find_node("a"), *g.find_node("d"));
  EXPECT_EQ(p.weight, 2.0);
  EXPECT_EQ(p.edges.size(), 2u);
  EXPECT_EQ(path_to_string(g, p), "a -> b -> d");
  const auto nodes = path_nodes(g, p);
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_EQ(path_bottleneck(g, p), 10_Gbps);
}

TEST(Dijkstra, PicksMinimumWeightPath) {
  Graph g = diamond();
  const NodeId a = *g.find_node("a");
  const auto tree = dijkstra_by_weight(g, a);
  EXPECT_EQ(tree.distance[static_cast<std::size_t>(g.find_node("d")->value)],
            2.0);
  EXPECT_EQ(tree.distance[static_cast<std::size_t>(g.find_node("c")->value)],
            2.0);
}

TEST(Dijkstra, UnreachableNodesReportInfinity) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_node("island");
  g.add_edge(a, b, 1_Gbps);
  const auto tree = dijkstra_by_weight(g, a);
  EXPECT_FALSE(tree.reached(*g.find_node("island")));
  const Path p = extract_path(g, tree, *g.find_node("island"));
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.weight, ShortestPathTree::kUnreachable);
}

TEST(Dijkstra, FilterExcludesEdges) {
  Graph g = diamond();
  const NodeId a = *g.find_node("a");
  const NodeId d = *g.find_node("d");
  const EdgeId ab = *g.find_edge(a, *g.find_node("b"));
  auto weight = [&](EdgeId id) { return g.edge(id).weight; };
  auto usable = [&](EdgeId id) { return id != ab; };
  const Path p = extract_path(g, dijkstra(g, a, weight, usable), d);
  EXPECT_EQ(path_to_string(g, p), "a -> c -> d");
  EXPECT_EQ(p.weight, 4.0);
}

TEST(Dijkstra, RejectsNegativeWeights) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 1_Gbps, 0.0, -1.0);
  EXPECT_THROW(dijkstra_by_weight(g, a), util::CheckError);
}

// Property: Dijkstra distances match Bellman-Ford-style relaxation on random
// graphs.
class DijkstraRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandomSweep, MatchesBruteForceRelaxation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Graph g = sim::waxman(12, rng);
  for (EdgeId e : g.edge_ids()) g.edge(e).weight = rng.uniform(0.1, 5.0);

  const NodeId source{0};
  const auto tree = dijkstra_by_weight(g, source);

  // Bellman-Ford reference.
  std::vector<double> dist(g.node_count(), ShortestPathTree::kUnreachable);
  dist[0] = 0.0;
  for (std::size_t round = 0; round < g.node_count(); ++round)
    for (EdgeId e : g.edge_ids()) {
      const auto s = static_cast<std::size_t>(g.edge(e).src.value);
      const auto d = static_cast<std::size_t>(g.edge(e).dst.value);
      if (dist[s] + g.edge(e).weight < dist[d])
        dist[d] = dist[s] + g.edge(e).weight;
    }
  for (std::size_t n = 0; n < g.node_count(); ++n)
    EXPECT_NEAR(tree.distance[n], dist[n], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomSweep,
                         ::testing::Range(1, 11));

TEST(Connectivity, ReachabilityAndStrongConnectivity) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 1_Gbps);
  EXPECT_FALSE(is_strongly_connected(g));
  EXPECT_TRUE(is_weakly_connected(g));
  g.add_edge(b, a, 1_Gbps);
  EXPECT_TRUE(is_strongly_connected(g));
  const auto seen = reachable_from(g, a);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
}

TEST(Connectivity, BuiltInTopologiesAreStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(sim::fig7_square()));
  EXPECT_TRUE(is_strongly_connected(sim::abilene()));
  EXPECT_TRUE(is_strongly_connected(sim::us_wan24()));
}

TEST(Dot, ExportContainsNodesAndLabels) {
  Graph g = sim::fig7_square();
  const std::string dot = to_dot(g, "square");
  EXPECT_NE(dot.find("digraph square"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
  EXPECT_NE(dot.find("100G"), std::string::npos);
}

}  // namespace
}  // namespace rwc::graph
