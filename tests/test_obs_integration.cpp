// Integration tests for the observability instrumentation: a controller
// round must populate RoundReport::stats (stage timings, evaluation and
// solver counters) and feed the contractual metrics in the global registry
// (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "obs/registry.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"

namespace rwc::core {
namespace {

using util::Db;
using namespace util::literals;

std::vector<Db> uniform_snr(const graph::Graph& g, double db) {
  return std::vector<Db>(g.edge_count(), Db{db});
}

ControllerOptions no_margin_options() {
  ControllerOptions options;
  options.snr_margin = 0.0_dB;
  return options;
}

TEST(ObsIntegration, McfRoundPopulatesStageTimingsAndSolverCounters) {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("B"), 80_Gbps, 0}};

  auto& registry = obs::Registry::global();
  const std::uint64_t rounds_before =
      registry.counter("controller.rounds").value();
  const std::uint64_t round_hist_before =
      registry.histogram("controller.round.seconds").count();
  const std::uint64_t te_solves_before =
      registry.counter("te.mcf.solves").value();

  const auto report = controller.run_round(uniform_snr(base, 20.0), demands);

  // Every stage of the pipeline ran and was timed.
  const auto& stats = report.stats;
  EXPECT_GT(stats.augment_seconds, 0.0);
  EXPECT_GT(stats.solve_seconds, 0.0);
  EXPECT_GT(stats.translate_seconds, 0.0);
  EXPECT_GT(stats.transition_seconds, 0.0);
  EXPECT_GT(stats.total_seconds, 0.0);
  // Stage buckets are parts of the whole round.
  EXPECT_LE(stats.augment_seconds + stats.solve_seconds +
                stats.translate_seconds,
            stats.total_seconds);
  EXPECT_GE(stats.evaluations, 1u);

  // The MCF engine drives the min-cost flow solver, not the simplex.
  EXPECT_GT(stats.mincost_runs, 0u);
  EXPECT_GT(stats.mincost_paths, 0u);
  EXPECT_EQ(stats.simplex_solves, 0u);

  // The round also landed in the global registry's contractual metrics.
  EXPECT_EQ(registry.counter("controller.rounds").value(),
            rounds_before + 1);
  EXPECT_EQ(registry.histogram("controller.round.seconds").count(),
            round_hist_before + 1);
  EXPECT_GT(registry.counter("te.mcf.solves").value(), te_solves_before);
  EXPECT_GT(registry.histogram("controller.round.solve.seconds").count(), 0u);
}

TEST(ObsIntegration, SwanRoundCountsSimplexWork) {
  graph::Graph base = sim::fig7_square();
  te::SwanTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("D"), 120_Gbps, 0}};

  const auto report = controller.run_round(uniform_snr(base, 20.0), demands);

  // SWAN's LP formulation exercises the simplex, not the min-cost solver.
  EXPECT_GT(report.stats.simplex_solves, 0u);
  EXPECT_GT(report.stats.simplex_iterations, 0u);
  EXPECT_EQ(report.stats.mincost_runs, 0u);
  EXPECT_GT(report.stats.solve_seconds, 0.0);
  EXPECT_GT(obs::Registry::global()
                .histogram("te.swan.solve_seconds")
                .count(),
            0u);
}

TEST(ObsIntegration, ConsolidationTimeIsAttributed) {
  // Two disjoint links both need an upgrade, so the consolidation post-pass
  // must run trial evaluations (and reject them): the extra work shows up in
  // `evaluations` and `consolidate_seconds`.
  graph::Graph base;
  const auto a = base.add_node("A");
  const auto b = base.add_node("B");
  const auto c = base.add_node("C");
  const auto d = base.add_node("D");
  base.add_edge(a, b, 100_Gbps);
  base.add_edge(c, d, 100_Gbps);
  te::McfTe engine;
  ControllerOptions options = no_margin_options();
  options.consolidate = true;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine, options);

  const te::TrafficMatrix demands = {{a, b, 150_Gbps, 0},
                                     {c, d, 150_Gbps, 0}};
  const auto report = controller.run_round(uniform_snr(base, 20.0), demands);
  // Both upgrades are load-bearing, so consolidation keeps them...
  EXPECT_EQ(report.plan.upgrades.size(), 2u);
  // ...but its trial evaluations are visible in the stats.
  EXPECT_GT(report.stats.evaluations, 1u);
  EXPECT_GT(report.stats.consolidate_seconds, 0.0);
}

}  // namespace
}  // namespace rwc::core
