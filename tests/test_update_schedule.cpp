// Unit + mutation coverage for the consistent-update scheduler
// (src/update/, docs/UPDATE.md): wave construction (removals -> reconfigs
// -> adds), forced churn around laser-cycling reconfigs, the augmentation
// (headroom) knob, the static overload floor, and the commit/rollback
// executor with its update.commit / update.rollback fault sites. The
// mutation checks prove every validate_schedule clause can actually fire
// — a validator that cannot reject anything proves nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fault/registry.hpp"
#include "graph/graph.hpp"
#include "te/demand.hpp"
#include "update/executor.hpp"
#include "update/schedule.hpp"
#include "util/units.hpp"

namespace rwc::update {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Gbps;

/// Diamond WAN: A->B->D (edges 0,1) and A->C->D (edges 2,3), 100 G each.
graph::Graph diamond() {
  graph::Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  const NodeId d = g.add_node("D");
  g.add_edge(a, b, Gbps{100.0});
  g.add_edge(b, d, Gbps{100.0});
  g.add_edge(a, c, Gbps{100.0});
  g.add_edge(c, d, Gbps{100.0});
  return g;
}

graph::Path path_of(const graph::Graph& g, std::vector<int> edges) {
  graph::Path path;
  for (int e : edges) {
    path.edges.push_back(EdgeId{e});
    path.weight += g.edge(EdgeId{e}).weight;
  }
  return path;
}

/// A->D demands: demand 0 split `top0`/`bottom0` over A-B-D / A-C-D,
/// demand 1 (when non-zero) split `top1`/`bottom1`.
te::FlowAssignment split_assignment(const graph::Graph& g, double top0,
                                    double bottom0, double top1 = 0.0,
                                    double bottom1 = 0.0) {
  te::FlowAssignment assignment;
  const auto add_demand = [&](double top, double bottom) {
    te::FlowAssignment::DemandRouting routing;
    routing.demand = te::Demand{NodeId{0}, NodeId{3}, Gbps{top + bottom}, 0};
    if (top > 0.0) routing.paths.emplace_back(path_of(g, {0, 1}), Gbps{top});
    if (bottom > 0.0)
      routing.paths.emplace_back(path_of(g, {2, 3}), Gbps{bottom});
    routing.routed = Gbps{top + bottom};
    assignment.routings.push_back(std::move(routing));
  };
  add_demand(top0, bottom0);
  if (top1 > 0.0 || bottom1 > 0.0) add_demand(top1, bottom1);
  te::finalize_assignment(g, assignment);
  return assignment;
}

std::vector<Gbps> uniform_capacity(std::size_t edges, double gbps) {
  return std::vector<Gbps>(edges, Gbps{gbps});
}

/// Canonical rendering of a schedule's moves — the cheap equality oracle
/// for determinism checks.
std::string describe(const UpdateSchedule& schedule) {
  std::ostringstream os;
  os.precision(17);
  os << schedule.rounds.size() << "|" << schedule.makespan_seconds << "|"
     << schedule.feasible;
  for (const UpdateRound& round : schedule.rounds) {
    os << ";" << round.duration_seconds << ":";
    for (const Move& move : round.moves) {
      os << static_cast<int>(move.kind) << "," << move.demand_index << ","
         << move.volume.value << "," << move.edge.value << ","
         << move.from.value << "," << move.to.value << ","
         << move.duration_seconds << ",[";
      for (EdgeId e : move.path.edges) os << e.value << " ";
      os << "]";
    }
  }
  return os.str();
}

SchedulerConfig efficient_config() {
  SchedulerConfig config;
  config.procedure = bvt::Procedure::kEfficient;
  config.sampled_durations = false;  // deterministic expected downtimes
  return config;
}

TEST(UpdateSchedule, IdentityTransitionIsEmpty) {
  const graph::Graph g = diamond();
  const auto caps = uniform_capacity(4, 100.0);
  const auto assignment = split_assignment(g, 60.0, 0.0);
  const UpdateSchedule schedule =
      plan_schedule(g, caps, caps, assignment, assignment, efficient_config());
  EXPECT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.rounds.size(), 0u);
  EXPECT_EQ(schedule.route_moves, 0u);
  EXPECT_EQ(schedule.reconfigs, 0u);
  EXPECT_DOUBLE_EQ(schedule.makespan_seconds, 0.0);
  std::string violation;
  EXPECT_TRUE(validate_schedule(g, schedule, caps, assignment, &violation))
      << violation;
}

TEST(UpdateSchedule, PathSwapSerializesRemovalsBeforeAdds) {
  // Two 60 G demands trade paths. Batching the adds with the removals
  // would put a worst-case 120 G on each 100 G link, so at zero headroom
  // the wave construction must spend round 1 on removals and round 2 on
  // additions.
  const graph::Graph g = diamond();
  const auto caps = uniform_capacity(4, 100.0);
  const auto before = split_assignment(g, 60.0, 0.0, 0.0, 60.0);
  const auto after = split_assignment(g, 0.0, 60.0, 60.0, 0.0);
  const UpdateSchedule schedule =
      plan_schedule(g, caps, caps, before, after, efficient_config());
  ASSERT_TRUE(schedule.feasible);
  ASSERT_EQ(schedule.rounds.size(), 2u);
  ASSERT_EQ(schedule.rounds[0].moves.size(), 2u);
  ASSERT_EQ(schedule.rounds[1].moves.size(), 2u);
  for (const Move& move : schedule.rounds[0].moves)
    EXPECT_EQ(move.kind, Move::Kind::kRouteRemove);
  for (const Move& move : schedule.rounds[1].moves)
    EXPECT_EQ(move.kind, Move::Kind::kRouteAdd);
  EXPECT_EQ(schedule.route_moves, 4u);
  std::string violation;
  EXPECT_TRUE(validate_schedule(g, schedule, caps, after, &violation))
      << violation;
}

TEST(UpdateSchedule, HeadroomStrictlyShortensTheSwap) {
  // The augmentation-speed tradeoff in miniature: the swap's worst case is
  // 120 G per link, so 25% augmentation (limit 125 G) lets the adds ride
  // with the removals in a single round.
  const graph::Graph g = diamond();
  const auto caps = uniform_capacity(4, 100.0);
  const auto before = split_assignment(g, 60.0, 0.0, 0.0, 60.0);
  const auto after = split_assignment(g, 0.0, 60.0, 60.0, 0.0);
  SchedulerConfig tight = efficient_config();
  tight.headroom = 0.0;
  SchedulerConfig augmented = efficient_config();
  augmented.headroom = 0.25;
  const UpdateSchedule slow =
      plan_schedule(g, caps, caps, before, after, tight);
  const UpdateSchedule fast =
      plan_schedule(g, caps, caps, before, after, augmented);
  ASSERT_TRUE(slow.feasible);
  ASSERT_TRUE(fast.feasible);
  EXPECT_EQ(slow.rounds.size(), 2u);
  EXPECT_EQ(fast.rounds.size(), 1u);
  EXPECT_LT(fast.makespan_seconds, slow.makespan_seconds);
  std::string violation;
  EXPECT_TRUE(validate_schedule(g, slow, caps, after, &violation))
      << violation;
  EXPECT_TRUE(validate_schedule(g, fast, caps, after, &violation))
      << violation;
}

TEST(UpdateSchedule, LaserCyclingUpgradeForcesChurn) {
  // Upgrading A-B from 100 to 200 G with the standard procedure darkens
  // the link: the 50 G that stays on A-B-D must churn off, wait out the
  // reconfig, and come back — remove / reconfig / re-add, three rounds.
  const graph::Graph g = diamond();
  const auto before_caps = uniform_capacity(4, 100.0);
  auto after_caps = before_caps;
  after_caps[0] = Gbps{200.0};
  const auto assignment = split_assignment(g, 50.0, 30.0);
  SchedulerConfig config = efficient_config();
  config.procedure = bvt::Procedure::kStandard;
  const UpdateSchedule schedule = plan_schedule(
      g, before_caps, after_caps, assignment, assignment, config);
  ASSERT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.forced_churn, 1u);
  EXPECT_EQ(schedule.reconfigs, 1u);
  ASSERT_EQ(schedule.rounds.size(), 3u);
  EXPECT_EQ(schedule.rounds[0].moves[0].kind, Move::Kind::kRouteRemove);
  EXPECT_EQ(schedule.rounds[1].moves[0].kind, Move::Kind::kReconfig);
  EXPECT_EQ(schedule.rounds[2].moves[0].kind, Move::Kind::kRouteAdd);
  // The reconfig round is the expensive one: full laser-cycle downtime.
  EXPECT_GT(schedule.rounds[1].duration_seconds, 60.0);
  std::string violation;
  EXPECT_TRUE(
      validate_schedule(g, schedule, after_caps, assignment, &violation))
      << violation;
}

TEST(UpdateSchedule, HitlessUpgradeNeedsNoChurn) {
  // The efficient procedure keeps the laser on: 50 G kept traffic is below
  // min(100, 200) so the upgrade batches into round 1, nothing moves.
  const graph::Graph g = diamond();
  const auto before_caps = uniform_capacity(4, 100.0);
  auto after_caps = before_caps;
  after_caps[0] = Gbps{200.0};
  const auto assignment = split_assignment(g, 50.0, 30.0);
  const UpdateSchedule schedule =
      plan_schedule(g, before_caps, after_caps, assignment, assignment,
                    efficient_config());
  ASSERT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.forced_churn, 0u);
  EXPECT_EQ(schedule.route_moves, 0u);
  ASSERT_EQ(schedule.rounds.size(), 1u);
  EXPECT_EQ(schedule.rounds[0].moves[0].kind, Move::Kind::kReconfig);
  EXPECT_LT(schedule.makespan_seconds, 1.0);  // ~35 ms, not ~68 s
  std::string violation;
  EXPECT_TRUE(
      validate_schedule(g, schedule, after_caps, assignment, &violation))
      << violation;
}

TEST(UpdateSchedule, PreExistingOverloadRidesTheFloorButNeverGrows) {
  // An SNR flap dropped A-B to 40 G under 60 G of live traffic: the
  // schedule starts over-subscribed (floor), drains toward the target,
  // and validate accepts it — the floor excuses old load, not new.
  const graph::Graph g = diamond();
  auto before_caps = uniform_capacity(4, 100.0);
  before_caps[0] = Gbps{40.0};
  const auto before = split_assignment(g, 60.0, 0.0);
  const auto after = split_assignment(g, 30.0, 30.0);
  const UpdateSchedule schedule = plan_schedule(
      g, before_caps, before_caps, before, after, efficient_config());
  ASSERT_TRUE(schedule.feasible);
  EXPECT_GT(schedule.overload_floor_gbps[0], 0.0);
  std::string violation;
  EXPECT_TRUE(
      validate_schedule(g, schedule, before_caps, after, &violation))
      << violation;
}

TEST(UpdateSchedule, PlanningIsDeterministic) {
  const graph::Graph g = diamond();
  const auto before_caps = uniform_capacity(4, 100.0);
  auto after_caps = before_caps;
  after_caps[1] = Gbps{200.0};
  const auto before = split_assignment(g, 60.0, 20.0);
  const auto after = split_assignment(g, 20.0, 60.0);
  SchedulerConfig config;  // sampled durations on — the RNG path
  config.seed = 77;
  const UpdateSchedule one =
      plan_schedule(g, before_caps, after_caps, before, after, config);
  const UpdateSchedule two =
      plan_schedule(g, before_caps, after_caps, before, after, config);
  EXPECT_EQ(describe(one), describe(two));
  EXPECT_EQ(one.makespan_seconds, two.makespan_seconds);  // bitwise
  EXPECT_TRUE(one.initial == two.initial);
}

TEST(UpdateSchedule, InfeasibleTargetIsFlaggedNotLooped) {
  // Target load exceeds the target capacity outright: no valid wave order
  // exists, so the planner must bail out with feasible=false (and
  // validate must reject the result), not spin to max_rounds.
  const graph::Graph g = diamond();
  const auto before_caps = uniform_capacity(4, 100.0);
  auto after_caps = before_caps;
  after_caps[2] = Gbps{20.0};  // A-C shrinks below the target's 60 G
  after_caps[3] = Gbps{20.0};
  const auto before = split_assignment(g, 60.0, 0.0);
  const auto after = split_assignment(g, 0.0, 60.0);
  const UpdateSchedule schedule = plan_schedule(
      g, before_caps, after_caps, before, after, efficient_config());
  EXPECT_FALSE(schedule.feasible);
  std::string violation;
  EXPECT_FALSE(
      validate_schedule(g, schedule, after_caps, after, &violation));
  EXPECT_FALSE(violation.empty());
}

TEST(UpdateSchedule, CheckDataplaneDetectsLoopsAndWrongDestinations) {
  // A triangle with a back-edge so a looping walk actually exists:
  // A->B (0), B->A (1), B->C (2); demand A->C.
  graph::Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(a, b, Gbps{100.0});
  g.add_edge(b, a, Gbps{100.0});
  g.add_edge(b, c, Gbps{100.0});
  te::FlowAssignment assignment;
  te::FlowAssignment::DemandRouting routing;
  routing.demand = te::Demand{a, c, Gbps{10.0}, 0};
  routing.paths.emplace_back(path_of(g, {0, 2}), Gbps{10.0});
  routing.routed = Gbps{10.0};
  assignment.routings.push_back(std::move(routing));
  te::finalize_assignment(g, assignment);
  const auto caps = uniform_capacity(3, 100.0);
  const UpdateSchedule schedule = plan_schedule(
      g, caps, caps, assignment, assignment, efficient_config());
  ASSERT_TRUE(schedule.feasible);
  std::string violation;
  ASSERT_TRUE(check_dataplane(g, schedule, schedule.initial, &violation))
      << violation;

  // Forwarding loop: A->B->A revisits A.
  DataplaneState looped = schedule.initial;
  looped.routes[{0, {EdgeId{0}, EdgeId{1}, EdgeId{0}, EdgeId{2}}}] = 1.0;
  EXPECT_FALSE(check_dataplane(g, schedule, looped, &violation));
  EXPECT_NE(violation.find("loop"), std::string::npos) << violation;

  // Black-hole shape: a path that strands traffic short of its
  // destination.
  DataplaneState stranded = schedule.initial;
  stranded.routes[{0, {EdgeId{0}}}] = 1.0;
  EXPECT_FALSE(check_dataplane(g, schedule, stranded, &violation));
  EXPECT_NE(violation.find("destination"), std::string::npos) << violation;
}

// ---- Mutation checks: every validator clause must be able to fire. ----

struct MutationFixture : ::testing::Test {
  graph::Graph g = diamond();
  std::vector<Gbps> before_caps = uniform_capacity(4, 100.0);
  std::vector<Gbps> after_caps = uniform_capacity(4, 100.0);
  te::FlowAssignment before = split_assignment(g, 50.0, 30.0);
  te::FlowAssignment after = split_assignment(g, 30.0, 50.0);
  UpdateSchedule schedule;

  void SetUp() override {
    after_caps[0] = Gbps{200.0};
    SchedulerConfig config;
    config.procedure = bvt::Procedure::kStandard;  // darkens edge 0
    config.sampled_durations = false;
    schedule = plan_schedule(g, before_caps, after_caps, before, after,
                             config);
    ASSERT_TRUE(schedule.feasible);
    std::string violation;
    ASSERT_TRUE(
        validate_schedule(g, schedule, after_caps, after, &violation))
        << violation;
  }

  struct MoveRef {
    std::size_t round = 0;
    std::size_t index = 0;
    bool found = false;
  };

  /// First move (in execution order) satisfying `pred`.
  template <typename Pred>
  MoveRef find_move(const Pred& pred) const {
    for (std::size_t r = 0; r < schedule.rounds.size(); ++r)
      for (std::size_t i = 0; i < schedule.rounds[r].moves.size(); ++i)
        if (pred(schedule.rounds[r].moves[i])) return {r, i, true};
    return {};
  }

  static bool touches_edge_zero(const Move& move) {
    return std::find(move.path.edges.begin(), move.path.edges.end(),
                     EdgeId{0}) != move.path.edges.end();
  }
};

TEST_F(MutationFixture, DetectsRouteMoveRacingAReconfig) {
  // Drag the re-add of edge 0's churned traffic forward into the reconfig
  // round of the same edge.
  const MoveRef reconfig = find_move(
      [](const Move& m) { return m.kind == Move::Kind::kReconfig; });
  const MoveRef add = find_move([](const Move& m) {
    return m.kind == Move::Kind::kRouteAdd && touches_edge_zero(m);
  });
  ASSERT_TRUE(reconfig.found);
  ASSERT_TRUE(add.found);
  ASSERT_LT(reconfig.round, add.round);
  auto& add_moves = schedule.rounds[add.round].moves;
  const Move moved = add_moves[add.index];
  add_moves.erase(add_moves.begin() + static_cast<std::ptrdiff_t>(add.index));
  schedule.rounds[reconfig.round].moves.push_back(moved);
  std::string violation;
  EXPECT_FALSE(
      validate_schedule(g, schedule, after_caps, after, &violation));
  EXPECT_NE(violation.find("race"), std::string::npos) << violation;
}

TEST_F(MutationFixture, DetectsReconfigAboveDrainLimit) {
  // Pull the reconfig into round 0, before its edge drained. Round 0's
  // own moves are stripped so the drain clause (not the race clause) is
  // what fires.
  const MoveRef reconfig = find_move(
      [](const Move& m) { return m.kind == Move::Kind::kReconfig; });
  ASSERT_TRUE(reconfig.found);
  ASSERT_GT(reconfig.round, 0u);
  const Move moved = schedule.rounds[reconfig.round].moves[reconfig.index];
  auto& from = schedule.rounds[reconfig.round].moves;
  from.erase(from.begin() + static_cast<std::ptrdiff_t>(reconfig.index));
  schedule.rounds[0].moves.clear();
  schedule.rounds[0].moves.push_back(moved);
  std::string violation;
  EXPECT_FALSE(
      validate_schedule(g, schedule, after_caps, after, &violation));
  EXPECT_NE(violation.find("drain"), std::string::npos) << violation;
}

TEST_F(MutationFixture, DetectsWorstCaseOversubscription) {
  // Inflate the first re-add far beyond any link: the worst-case
  // interleaving clause fires.
  const MoveRef add = find_move(
      [](const Move& m) { return m.kind == Move::Kind::kRouteAdd; });
  ASSERT_TRUE(add.found);
  schedule.rounds[add.round].moves[add.index].volume = Gbps{500.0};
  std::string violation;
  EXPECT_FALSE(
      validate_schedule(g, schedule, after_caps, after, &violation));
  EXPECT_NE(violation.find("worst-case"), std::string::npos) << violation;
}

TEST_F(MutationFixture, DetectsTerminalStateDivergence) {
  // Drop every add: the schedule no longer reaches the target routing.
  for (UpdateRound& round : schedule.rounds)
    std::erase_if(round.moves, [](const Move& m) {
      return m.kind == Move::Kind::kRouteAdd;
    });
  std::string violation;
  EXPECT_FALSE(
      validate_schedule(g, schedule, after_caps, after, &violation));
  EXPECT_NE(violation.find("terminal"), std::string::npos) << violation;
}

TEST_F(MutationFixture, CheckDataplaneRefusesBlackHoleOnDarkLink) {
  // Traffic parked on a drained-to-zero link: the overload floor must NOT
  // excuse it — the limit sits below capacity, so no floor credit.
  DataplaneState dark = schedule.initial;
  dark.limit_gbps[0] = 0.0;
  std::string violation;
  EXPECT_FALSE(check_dataplane(g, schedule, dark, &violation));
  EXPECT_NE(violation.find("over-subscribed"), std::string::npos)
      << violation;
}

// ---- Executor ---------------------------------------------------------

struct ExecutorFixture : MutationFixture {
  /// Runs fault-free to produce the reference final state.
  DataplaneState reference_final() {
    ScheduleExecutor executor(g, schedule);
    executor.run();
    return executor.state();
  }
};

TEST_F(ExecutorFixture, FaultFreeRunCommitsAndEveryTransientHolds) {
  std::size_t observed = 0;
  ScheduleExecutor executor(g, schedule);
  const ExecutionResult& result = executor.run([&](const DataplaneState& s) {
    std::string violation;
    EXPECT_TRUE(check_dataplane(g, schedule, s, &violation)) << violation;
    ++observed;
  });
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.rounds_committed, schedule.rounds.size());
  EXPECT_EQ(result.commit_attempts, schedule.rounds.size());
  EXPECT_EQ(result.rollbacks, 0u);
  EXPECT_GT(observed, 0u);
  EXPECT_EQ(result.makespan_seconds, schedule.makespan_seconds);  // bitwise
}

TEST_F(ExecutorFixture, CommitFailRollsBackThenConvergesBitIdentically) {
  const DataplaneState reference = reference_final();
  fault::FaultPlan plan = fault::FaultPlan::parse("update.commit@0:fail");
  fault::ScopedPlan armed(plan);
  ScheduleExecutor executor(g, schedule);
  const ExecutionResult& result = executor.run([&](const DataplaneState& s) {
    std::string violation;
    EXPECT_TRUE(check_dataplane(g, schedule, s, &violation)) << violation;
  });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rollbacks, 1u);
  EXPECT_EQ(result.commit_attempts, schedule.rounds.size() + 1);
  EXPECT_GT(result.makespan_seconds, schedule.makespan_seconds);
  EXPECT_TRUE(executor.state() == reference);  // bitwise
}

TEST_F(ExecutorFixture, PeriodicCommitFailAbortsAtTheRoundBoundary) {
  fault::FaultPlan plan = fault::FaultPlan::parse("update.commit%1@0:fail");
  fault::ScopedPlan armed(plan);
  ExecutorOptions options;
  options.max_attempts_per_round = 3;
  ScheduleExecutor executor(g, schedule, options);
  const ExecutionResult& result = executor.run();
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds_committed, 0u);
  EXPECT_EQ(result.commit_attempts, 3u);
  EXPECT_EQ(result.rollbacks, 3u);
  // Monotone progress: the dataplane is exactly the committed prefix —
  // here, the untouched initial state, bit for bit.
  EXPECT_TRUE(executor.state() == schedule.initial);
  // Aborted executors stay done; further runs are no-ops.
  EXPECT_TRUE(executor.done());
  executor.run();
  EXPECT_EQ(executor.result().commit_attempts, 3u);
}

TEST_F(ExecutorFixture, StallsAndDelaysAreTimingOnly) {
  const DataplaneState reference = reference_final();
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "update.commit@0:stall=5.0;update.commit@1:delay=250");
  fault::ScopedPlan armed(plan);
  ScheduleExecutor executor(g, schedule);
  const ExecutionResult& result = executor.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rollbacks, 0u);
  // 5 s stall + 250 ms delay, on top of the fault-free makespan.
  EXPECT_NEAR(result.makespan_seconds, schedule.makespan_seconds + 5.25,
              1e-9);
  EXPECT_TRUE(executor.state() == reference);
}

TEST_F(ExecutorFixture, SaveRestoreMidScheduleContinuesBitIdentically) {
  const DataplaneState reference = reference_final();
  ScheduleExecutor first(g, schedule);
  first.run_rounds(1);
  ASSERT_FALSE(first.done());
  const std::vector<std::byte> saved = first.save_state();

  ScheduleExecutor second(g, schedule);
  ASSERT_TRUE(second.restore_state(saved));
  EXPECT_EQ(second.next_round(), 1u);
  EXPECT_TRUE(second.state() == first.state());  // bitwise
  second.run();
  EXPECT_TRUE(second.result().completed);
  EXPECT_TRUE(second.state() == reference);
}

TEST_F(ExecutorFixture, RestoreRejectsMalformedPayloads) {
  ScheduleExecutor executor(g, schedule);
  executor.run_rounds(1);
  std::vector<std::byte> saved = executor.save_state();

  ScheduleExecutor fresh(g, schedule);
  // Truncation at every length.
  for (std::size_t cut = 0; cut < saved.size(); ++cut) {
    const std::vector<std::byte> truncated(
        saved.begin(), saved.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(fresh.restore_state(truncated)) << "cut=" << cut;
  }
  // Wrong version.
  std::vector<std::byte> wrong = saved;
  wrong[0] = std::byte{0xEE};
  EXPECT_FALSE(fresh.restore_state(wrong));
  // Cursor beyond the schedule (next_round low byte).
  std::vector<std::byte> beyond = saved;
  beyond[6] = std::byte{0x7F};
  EXPECT_FALSE(fresh.restore_state(beyond));
  // The failed restores left the fresh executor untouched...
  EXPECT_EQ(fresh.next_round(), 0u);
  EXPECT_TRUE(fresh.state() == schedule.initial);
  // ...and the intact payload still works.
  EXPECT_TRUE(fresh.restore_state(saved));
}

}  // namespace
}  // namespace rwc::update
