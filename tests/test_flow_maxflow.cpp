// Tests for the residual network and Dinic max-flow, including the
// max-flow = min-cut property on random graphs.
#include <gtest/gtest.h>

#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/network.hpp"
#include "sim/topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::flow {
namespace {

TEST(ResidualNetwork, ArcPairingAndPush) {
  ResidualNetwork net(2);
  const int arc = net.add_arc(0, 1, 10.0, 2.0);
  EXPECT_EQ(net.target(arc), 1);
  EXPECT_EQ(net.source(arc), 0);
  EXPECT_EQ(net.residual(arc), 10.0);
  EXPECT_EQ(net.residual(arc ^ 1), 0.0);
  EXPECT_EQ(net.cost(arc), 2.0);
  EXPECT_EQ(net.cost(arc ^ 1), -2.0);

  net.push(arc, 4.0);
  EXPECT_DOUBLE_EQ(net.residual(arc), 6.0);
  EXPECT_DOUBLE_EQ(net.residual(arc ^ 1), 4.0);
  EXPECT_DOUBLE_EQ(net.flow(arc), 4.0);
  EXPECT_DOUBLE_EQ(net.total_cost(), 8.0);
  EXPECT_DOUBLE_EQ(net.net_outflow(0), 4.0);
  EXPECT_DOUBLE_EQ(net.net_outflow(1), -4.0);

  net.reset();
  EXPECT_DOUBLE_EQ(net.flow(arc), 0.0);
}

TEST(ResidualNetwork, PushBeyondResidualThrows) {
  ResidualNetwork net(2);
  const int arc = net.add_arc(0, 1, 1.0);
  EXPECT_THROW(net.push(arc, 2.0), util::CheckError);
}

TEST(MaxFlow, SimpleSeriesParallel) {
  // s -> a -> t (cap 3) parallel with s -> b -> t (cap 5).
  ResidualNetwork net(4);
  net.add_arc(0, 1, 3.0);
  net.add_arc(1, 3, 3.0);
  net.add_arc(0, 2, 5.0);
  net.add_arc(2, 3, 7.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 3), 8.0);
}

TEST(MaxFlow, ClassicCrossEdgeInstance) {
  // The classic 6-node instance with a cross edge; max flow = 19.
  ResidualNetwork net(6);
  net.add_arc(0, 1, 10.0);
  net.add_arc(0, 2, 10.0);
  net.add_arc(1, 2, 2.0);
  net.add_arc(1, 3, 4.0);
  net.add_arc(1, 4, 8.0);
  net.add_arc(2, 4, 9.0);
  net.add_arc(4, 3, 6.0);
  net.add_arc(3, 5, 10.0);
  net.add_arc(4, 5, 10.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 5), 19.0);
}

TEST(MaxFlow, DisconnectedSinkYieldsZero) {
  ResidualNetwork net(3);
  net.add_arc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 2), 0.0);
}

TEST(MaxFlow, ZeroCapacityArcCarriesNothing) {
  ResidualNetwork net(2);
  net.add_arc(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 1), 0.0);
}

TEST(MaxFlow, FlowConservationAtInteriorNodes) {
  util::Rng rng(3);
  graph::Graph g = sim::waxman(10, rng);
  auto view = make_network(g);
  max_flow_dinic(view.net, 0, 9);
  for (int node = 1; node < 9; ++node)
    EXPECT_NEAR(view.net.net_outflow(node), 0.0, 1e-9);
}

class MaxFlowMinCutSweep : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowMinCutSweep, MaxFlowEqualsMinCut) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  graph::Graph g = sim::waxman(14, rng);
  // Heterogeneous capacities.
  for (graph::EdgeId e : g.edge_ids())
    g.edge(e).capacity = util::Gbps{rng.uniform(1.0, 20.0)};

  auto view = make_network(g);
  const int source = 0;
  const int sink = 13;
  const double flow = max_flow_dinic(view.net, source, sink);
  const auto side = min_cut_source_side(view.net, source);
  EXPECT_TRUE(side[static_cast<std::size_t>(source)]);
  EXPECT_FALSE(side[static_cast<std::size_t>(sink)]);
  EXPECT_NEAR(flow, cut_capacity(view.net, side), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowMinCutSweep, ::testing::Range(1, 16));

TEST(GraphAdapter, EdgeFlowsMapBack) {
  graph::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto e = g.add_edge(a, b, util::Gbps{5.0});
  auto view = make_network(g);
  max_flow_dinic(view.net, 0, 1);
  EXPECT_DOUBLE_EQ(view.edge_flow(e), 5.0);
  const auto flows = edge_flows(g, view);
  EXPECT_DOUBLE_EQ(flows[0], 5.0);
}

}  // namespace
}  // namespace rwc::flow
