// rwc::fault end-to-end: registry semantics plus every compiled-in site's
// error path (docs/FAULTS.md). The BVT abort-mid-laser-transition,
// corrupted-telemetry and forced-cache-miss cases are the error paths the
// example-based suites could not previously reach.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "bvt/device.hpp"
#include "bvt/registers.hpp"
#include "core/controller.hpp"
#include "fault/plan.hpp"
#include "fault/registry.hpp"
#include "flow/mincost.hpp"
#include "flow/network.hpp"
#include "obs/registry.hpp"
#include "optical/modulation.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "telemetry/analysis.hpp"
#include "telemetry/snr_model.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using util::Db;
using util::Gbps;

TEST(FaultRegistry, DisarmedSitesReturnNoFault) {
  ASSERT_FALSE(fault::Registry::global().armed());
  EXPECT_FALSE(fault::next("bvt.reconfig"));
  EXPECT_FALSE(fault::at("flow.mincost", 12345));
}

TEST(FaultRegistry, OneShotAndPeriodicMatching) {
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "bvt.reconfig@2:fail;core.snr%3@1:nan");
  fault::ScopedPlan armed(plan);
  // Serial site: hits 0 and 1 clean, hit 2 fires, hit 3 clean again.
  EXPECT_FALSE(fault::next("bvt.reconfig"));
  EXPECT_FALSE(fault::next("bvt.reconfig"));
  EXPECT_EQ(fault::next("bvt.reconfig").kind, fault::Kind::kFail);
  EXPECT_FALSE(fault::next("bvt.reconfig"));
  // Parallel site: fires whenever key % 3 == 1, for any key.
  EXPECT_FALSE(fault::at("core.snr", 0));
  EXPECT_EQ(fault::at("core.snr", 1).kind, fault::Kind::kNan);
  EXPECT_EQ(fault::at("core.snr", 7).kind, fault::Kind::kNan);
  EXPECT_FALSE(fault::at("core.snr", 9));
  // Bookkeeping: evaluations and injections per site.
  EXPECT_EQ(fault::Registry::global().evaluations("bvt.reconfig"), 4u);
  EXPECT_EQ(fault::Registry::global().injected("bvt.reconfig"), 1u);
  EXPECT_EQ(fault::Registry::global().injected("core.snr"), 2u);
}

TEST(FaultRegistry, RearmingResetsHitCounters) {
  fault::FaultPlan plan = fault::FaultPlan::parse("site.x@0:fail");
  {
    fault::ScopedPlan armed(plan);
    EXPECT_TRUE(fault::next("site.x"));
    EXPECT_FALSE(fault::next("site.x"));
  }
  EXPECT_FALSE(fault::Registry::global().armed());
  {
    fault::ScopedPlan rearmed(plan);
    // Same plan, fresh counters: the one-shot fires again.
    EXPECT_TRUE(fault::next("site.x"));
    EXPECT_EQ(fault::Registry::global().armed_spec(), "site.x@0:fail");
  }
}

TEST(FaultBvt, AbortMidLaserTransitionLeavesLaserOffAndNothingApplied) {
  bvt::BvtDevice device(optical::ModulationTable::standard(), 7);
  device.set_link_snr(Db{18.0});
  device.power_on();
  ASSERT_TRUE(device.carrier_locked());
  const std::uint16_t active_before =
      device.mdio_read(bvt::Register::kModulationActive);

  fault::ScopedPlan armed(fault::FaultPlan::parse("bvt.reconfig@0:fail"));
  const auto report =
      device.change_modulation(Gbps{200.0}, bvt::Procedure::kStandard);
  EXPECT_FALSE(report.success);
  // Laser died mid-transition: off, unlocked, faulted, and the target
  // modulation was never applied.
  const std::uint16_t status = device.mdio_read(bvt::Register::kStatus);
  EXPECT_EQ(status & bvt::status::kLaserOn, 0);
  EXPECT_EQ(status & bvt::status::kCarrierLocked, 0);
  EXPECT_EQ(device.mdio_read(bvt::Register::kModulationActive),
            active_before);
  EXPECT_EQ(device.active_capacity(), Gbps{0.0});

  // Recovery path: the next (clean) attempt relights the laser and applies.
  const auto retry =
      device.change_modulation(Gbps{200.0}, bvt::Procedure::kStandard);
  EXPECT_TRUE(retry.success);
  EXPECT_EQ(device.active_capacity(), Gbps{200.0});
}

TEST(FaultBvt, StaleCompletionKeepsOldConstellationActive) {
  bvt::BvtDevice device(optical::ModulationTable::standard(), 7);
  device.set_link_snr(Db{18.0});
  device.power_on();
  const std::uint32_t reconfigs_before = device.reconfig_count();

  fault::ScopedPlan armed(fault::FaultPlan::parse("bvt.reconfig@0:stale"));
  const auto report =
      device.change_modulation(Gbps{200.0}, bvt::Procedure::kEfficient);
  // The DSP acked but nothing took: old rate still active, no apply
  // counted, and the driver-visible "success" reflects the stale lock.
  EXPECT_EQ(device.active_capacity(), Gbps{100.0});
  EXPECT_EQ(device.reconfig_count(), reconfigs_before);
  EXPECT_TRUE(report.success);  // carrier still locked on the OLD format
  EXPECT_EQ(report.to, Gbps{200.0});
}

TEST(FaultBvt, StallAddsExtraDowntime) {
  const auto run_once = [](bool stalled) {
    bvt::BvtDevice device(optical::ModulationTable::standard(), 7);
    device.set_link_snr(Db{18.0});
    device.power_on();
    std::unique_ptr<fault::ScopedPlan> armed;
    if (stalled)
      armed = std::make_unique<fault::ScopedPlan>(
          fault::FaultPlan::parse("bvt.reconfig@0:stall=30"));
    return device
        .change_modulation(Gbps{200.0}, bvt::Procedure::kEfficient)
        .downtime;
  };
  // Identical seed and RNG consumption: the stalled run is exactly the
  // clean downtime plus the injected 30 s.
  EXPECT_DOUBLE_EQ(run_once(true), run_once(false) + 30.0);
}

TEST(FaultTelemetry, CorruptedSamplesAreSanitizedAndCounted) {
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = 1;
  params.wavelengths_per_fiber = 2;
  params.duration = 10.0 * util::kDay;
  telemetry::SnrFleetGenerator fleet(params, 11);
  const optical::ModulationTable table = optical::ModulationTable::standard();
  const auto clean = fleet.generate_trace(0);

  fault::ScopedPlan armed(fault::FaultPlan::parse(
      "telemetry.trace%2@0:nan=5;telemetry.trace%2@1:drop=9"));
  // Link 0 (key 0): sample 5 replaced by NaN. Link 1 (key 1): sample 9
  // dropped (arrived too late to use).
  const auto faulted0 = fleet.generate_trace(0);
  ASSERT_EQ(faulted0.size(), clean.size());
  EXPECT_TRUE(std::isnan(faulted0.samples_db[5]));
  const auto faulted1 = fleet.generate_trace(1);
  EXPECT_EQ(faulted1.size(), fleet.generate_trace(0).size() - 1);

  // Analysis must degrade, not poison: finite stats, clamp counted.
  static auto& clamped =
      obs::Registry::global().counter("telemetry.samples_clamped");
  const std::uint64_t clamped_before = clamped.value();
  const auto stats = telemetry::analyze_link(faulted0, table);
  EXPECT_TRUE(std::isfinite(stats.range_db));
  EXPECT_TRUE(std::isfinite(stats.hdr_width_db));
  EXPECT_GE(stats.feasible_capacity.value, 0.0);
  EXPECT_GT(clamped.value(), clamped_before);
}

TEST(FaultTelemetry, SanitizeClampsOnlyInvalidSamples) {
  EXPECT_DOUBLE_EQ(telemetry::sanitize_sample_db(13.4), 13.4);
  EXPECT_DOUBLE_EQ(telemetry::sanitize_sample_db(0.0), 0.0);
  EXPECT_DOUBLE_EQ(
      telemetry::sanitize_sample_db(std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(telemetry::sanitize_sample_db(
                       -std::numeric_limits<double>::infinity()),
                   0.0);
  EXPECT_DOUBLE_EQ(telemetry::sanitize_sample_db(-3.0), 0.0);
}

TEST(FaultController, GarbageSnrFlapsTheLinkInsteadOfThrowing) {
  util::Rng rng = util::Rng::stream(33, 0);
  const graph::Graph g = sim::abilene();
  sim::GravityParams gravity;
  gravity.total = Gbps{g.total_capacity().value / 3.0};
  const auto demands = sim::gravity_matrix(g, gravity, rng);
  const te::McfTe engine;
  core::DynamicCapacityController controller(
      g, optical::ModulationTable::standard(), engine,
      core::ControllerOptions{});
  const std::vector<Db> snr(g.edge_count(), Db{20.0});

  static auto& snr_clamped =
      obs::Registry::global().counter("controller.snr_clamped");
  const std::uint64_t clamped_before = snr_clamped.value();
  // Edge 0 reports NaN, edge 1 garbage: both must clamp to 0 dB and flap
  // the link down (a walk/crawl reduction), never throw or upgrade.
  fault::ScopedPlan armed(
      fault::FaultPlan::parse("core.snr@0:nan;core.snr@1:garbage"));
  const auto report = controller.run_round(snr, demands);
  EXPECT_GE(snr_clamped.value(), clamped_before + 2);
  EXPECT_EQ(controller.configured_capacity(graph::EdgeId{0}), Gbps{0.0});
  EXPECT_EQ(controller.configured_capacity(graph::EdgeId{1}), Gbps{0.0});
  bool edge0_reduced = false;
  for (const auto& flap : report.reductions)
    if (flap.edge == graph::EdgeId{0}) edge0_reduced = true;
  EXPECT_TRUE(edge0_reduced);
}

TEST(FaultCache, WarmFindForcedMissRunsColdButIdentical) {
  flow::WarmStartCache cache(4);
  flow::ResidualNetwork net(3);
  net.add_arc(0, 1, 5.0, 1.0);
  net.add_arc(1, 2, 5.0, 1.0);
  auto recording = std::make_shared<flow::MinCostWarmStart>();
  flow::ResidualNetwork solve_net = net;
  flow::min_cost_max_flow(solve_net, 0, 2,
                          std::numeric_limits<double>::infinity(),
                          recording.get());
  cache.store(std::shared_ptr<const flow::MinCostWarmStart>(recording));
  const std::uint64_t fp = recording->fingerprint;
  ASSERT_NE(cache.find(fp), nullptr);

  {
    fault::ScopedPlan armed(
        fault::FaultPlan::parse("cache.warm.find%1@0:invalidate"));
    // Forced miss while armed; the entry itself survives (timing-only).
    EXPECT_EQ(cache.find(fp), nullptr);
  }
  EXPECT_NE(cache.find(fp), nullptr);
}

}  // namespace
}  // namespace rwc
