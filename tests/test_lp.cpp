// Tests for the two-phase simplex LP solver, including a cross-check against
// the combinatorial min-cost-flow solver on random networks.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/mincost.hpp"
#include "lp/simplex.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace rwc::lp {
namespace {

TEST(Simplex, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12.
  LpProblem problem(Sense::kMaximize);
  const int x = problem.add_variable(3.0);
  const int y = problem.add_variable(2.0);
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0);
  problem.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kLessEqual, 6.0);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 12.0, 1e-9);
  EXPECT_NEAR(solution.values[static_cast<std::size_t>(x)], 4.0, 1e-9);
  EXPECT_NEAR(solution.values[static_cast<std::size_t>(y)], 0.0, 1e-9);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x <= 6 -> x=6, y=4, obj 24.
  LpProblem problem(Sense::kMinimize);
  const int x = problem.add_variable(2.0, 6.0);
  const int y = problem.add_variable(3.0);
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 10.0);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 24.0, 1e-8);
  EXPECT_NEAR(solution.values[static_cast<std::size_t>(x)], 6.0, 1e-8);
  EXPECT_NEAR(solution.values[static_cast<std::size_t>(y)], 4.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + 2y = 8, x - y = 2 -> x=4, y=2, obj 6.
  LpProblem problem(Sense::kMinimize);
  const int x = problem.add_variable(1.0);
  const int y = problem.add_variable(1.0);
  problem.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kEqual, 8.0);
  problem.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 2.0);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 6.0, 1e-8);
  EXPECT_NEAR(solution.values[static_cast<std::size_t>(x)], 4.0, 1e-8);
  EXPECT_NEAR(solution.values[static_cast<std::size_t>(y)], 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem problem(Sense::kMinimize);
  const int x = problem.add_variable(1.0);
  problem.add_constraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  problem.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(problem.solve().status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblem problem(Sense::kMaximize);
  const int x = problem.add_variable(1.0);
  problem.add_constraint({{x, -1.0}}, Relation::kLessEqual, 0.0);
  EXPECT_EQ(problem.solve().status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2 with min x + y -> y >= x + 2 -> x=0, y=2.
  LpProblem problem(Sense::kMinimize);
  const int x = problem.add_variable(1.0);
  const int y = problem.add_variable(1.0);
  problem.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLessEqual, -2.0);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 2.0, 1e-8);
}

TEST(Simplex, UpperBoundsBecomeConstraints) {
  LpProblem problem(Sense::kMaximize);
  (void)problem.add_variable(1.0, 2.5);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 2.5, 1e-9);
}

TEST(Simplex, DuplicateTermsAccumulate) {
  // max x with (0.5x + 0.5x) <= 3.
  LpProblem problem(Sense::kMaximize);
  const int x = problem.add_variable(1.0);
  problem.add_constraint({{x, 0.5}, {x, 0.5}}, Relation::kLessEqual, 3.0);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
}

TEST(Simplex, DegenerateProblemStillTerminates) {
  // Multiple redundant constraints intersecting at the optimum.
  LpProblem problem(Sense::kMaximize);
  const int x = problem.add_variable(1.0);
  const int y = problem.add_variable(1.0);
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 1.0);
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 1.0);
  problem.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kLessEqual, 2.0);
  problem.add_constraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 1.0, 1e-8);
}

TEST(Simplex, RedundantEqualityRows) {
  LpProblem problem(Sense::kMinimize);
  const int x = problem.add_variable(1.0);
  const int y = problem.add_variable(2.0);
  problem.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0);
  problem.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kEqual, 8.0);
  const auto solution = problem.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 4.0, 1e-8);  // all on x
}

TEST(Simplex, VariableNames) {
  LpProblem problem;
  const int a = problem.add_variable(1.0, 1.0, "alpha");
  const int b = problem.add_variable(1.0);
  EXPECT_EQ(problem.variable_name(a), "alpha");
  EXPECT_EQ(problem.variable_name(b), "x1");
}

/// Formulates s-t max-flow as an LP over edge variables and compares with
/// Dinic; then min-cost at fixed flow against the SSP solver.
class LpFlowCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(LpFlowCrossCheck, MaxFlowAndMinCostAgreeWithCombinatorial) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 11);
  graph::Graph g = sim::waxman(8, rng);
  for (graph::EdgeId e : g.edge_ids()) {
    g.edge(e).capacity = util::Gbps{std::floor(rng.uniform(1.0, 8.0))};
    g.edge(e).cost = std::floor(rng.uniform(0.0, 4.0));
  }
  const int source = 0;
  const int sink = static_cast<int>(g.node_count()) - 1;

  // Combinatorial reference.
  auto view = flow::make_network(g);
  const auto reference = flow::min_cost_max_flow(view.net, source, sink);

  // LP 1: maximize net outflow of the source.
  LpProblem max_problem(Sense::kMaximize);
  for (graph::EdgeId e : g.edge_ids()) {
    const bool from_source = g.edge(e).src.value == source;
    const bool into_source = g.edge(e).dst.value == source;
    max_problem.add_variable(from_source ? 1.0 : (into_source ? -1.0 : 0.0),
                             g.edge(e).capacity.value);
  }
  // Conservation at interior nodes.
  auto add_conservation = [&](LpProblem& problem) {
    for (graph::NodeId node : g.node_ids()) {
      if (node.value == source || node.value == sink) continue;
      std::vector<Term> terms;
      for (graph::EdgeId e : g.out_edges(node))
        terms.push_back({e.value, 1.0});
      for (graph::EdgeId e : g.in_edges(node))
        terms.push_back({e.value, -1.0});
      if (!terms.empty())
        problem.add_constraint(std::move(terms), Relation::kEqual, 0.0);
    }
  };
  add_conservation(max_problem);
  const auto max_solution = max_problem.solve();
  ASSERT_TRUE(max_solution.optimal());
  EXPECT_NEAR(max_solution.objective, reference.flow, 1e-6);

  // LP 2: minimize cost at that flow value.
  LpProblem cost_problem(Sense::kMinimize);
  std::vector<Term> source_terms;
  for (graph::EdgeId e : g.edge_ids()) {
    cost_problem.add_variable(g.edge(e).cost, g.edge(e).capacity.value);
    if (g.edge(e).src.value == source) source_terms.push_back({e.value, 1.0});
    if (g.edge(e).dst.value == source)
      source_terms.push_back({e.value, -1.0});
  }
  add_conservation(cost_problem);
  cost_problem.add_constraint(std::move(source_terms), Relation::kEqual,
                              reference.flow);
  const auto cost_solution = cost_problem.solve();
  ASSERT_TRUE(cost_solution.optimal());
  EXPECT_NEAR(cost_solution.objective, reference.cost, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpFlowCrossCheck, ::testing::Range(1, 13));

}  // namespace
}  // namespace rwc::lp
