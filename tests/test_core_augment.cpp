// Tests for Algorithm 1 (graph augmentation), penalty policies, the Fig. 8
// gadget and the protected-flow carve-out.
#include <gtest/gtest.h>

#include "core/augment.hpp"
#include "graph/dijkstra.hpp"
#include "sim/topology.hpp"
#include "util/check.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Gbps;
using namespace util::literals;

TEST(Penalty, Policies) {
  graph::Graph g = sim::fig7_square();
  const EdgeId e{0};
  EXPECT_EQ(ZeroPenalty{}.upgrade_penalty(g, e, 100_Gbps, 50.0), 0.0);
  EXPECT_EQ(FixedPenalty{7.5}.upgrade_penalty(g, e, 100_Gbps, 50.0), 7.5);
  const TrafficProportionalPenalty traffic(2.0, 0.5);
  EXPECT_DOUBLE_EQ(traffic.upgrade_penalty(g, e, 100_Gbps, 50.0), 100.5);
  const PriorityScaledPenalty scaled(
      std::make_shared<FixedPenalty>(10.0), 3.0);
  EXPECT_DOUBLE_EQ(scaled.upgrade_penalty(g, e, 100_Gbps, 0.0), 30.0);
  EXPECT_EQ(ZeroPenalty{}.real_penalty(g, e), 0.0);
  EXPECT_NE(scaled.name().find("priority-scaled"), std::string::npos);
}

TEST(Augment, PlainModeAddsOneFakeEdgePerVariableLink) {
  graph::Graph base = sim::fig7_square();
  const EdgeId ab = *base.find_edge(*base.find_node("A"),
                                    *base.find_node("B"));
  const std::vector<VariableLink> variable = {{ab, 200_Gbps}};
  const FixedPenalty penalty(100.0);
  const auto augmented = augment_topology(base, variable, penalty);

  EXPECT_EQ(augmented.graph.node_count(), base.node_count());
  EXPECT_EQ(augmented.graph.edge_count(), base.edge_count() + 1);
  EXPECT_EQ(augmented.base_edge_count, base.edge_count());

  // Real edges keep their slots and attributes.
  for (EdgeId e : base.edge_ids()) {
    EXPECT_EQ(augmented.info(e).kind, AugmentedEdgeKind::kReal);
    EXPECT_EQ(augmented.info(e).base_edge, e);
    EXPECT_EQ(augmented.graph.edge(e).capacity, base.edge(e).capacity);
    EXPECT_EQ(augmented.graph.edge(e).cost, 0.0);  // Algorithm 1: P'(e) = 0
  }
  // The fake edge: headroom capacity, penalty cost, same endpoints.
  const EdgeId fake = augmented.fake_edge_of[static_cast<std::size_t>(ab.value)];
  ASSERT_TRUE(fake.valid());
  EXPECT_EQ(augmented.info(fake).kind, AugmentedEdgeKind::kFake);
  EXPECT_EQ(augmented.info(fake).base_edge, ab);
  EXPECT_EQ(augmented.graph.edge(fake).capacity, 100_Gbps);
  EXPECT_EQ(augmented.graph.edge(fake).cost, 100.0);
  EXPECT_EQ(augmented.graph.edge(fake).src, base.edge(ab).src);
  EXPECT_EQ(augmented.graph.edge(fake).dst, base.edge(ab).dst);
}

TEST(Augment, NoVariableLinksIsIdentity) {
  graph::Graph base = sim::abilene();
  const auto augmented = augment_topology(base, {}, ZeroPenalty{});
  EXPECT_EQ(augmented.graph.edge_count(), base.edge_count());
  EXPECT_EQ(augmented.graph.node_count(), base.node_count());
  for (EdgeId e : base.edge_ids())
    EXPECT_FALSE(
        augmented.fake_edge_of[static_cast<std::size_t>(e.value)].valid());
}

TEST(Augment, PenaltyUsesCurrentTraffic) {
  graph::Graph base = sim::fig7_square();
  const EdgeId ab{0};
  std::vector<double> traffic(base.edge_count(), 0.0);
  traffic[0] = 60.0;
  const TrafficProportionalPenalty penalty(1.0, 0.0);
  const auto augmented = augment_topology(
      base, std::vector<VariableLink>{{ab, 200_Gbps}}, penalty, traffic);
  const EdgeId fake = augmented.fake_edge_of[0];
  EXPECT_DOUBLE_EQ(augmented.graph.edge(fake).cost, 60.0);
}

TEST(Augment, UnitWeightsOption) {
  graph::Graph base = sim::fig7_square();
  for (EdgeId e : base.edge_ids()) base.edge(e).weight = 7.0;
  AugmentOptions options;
  options.unit_weights = true;
  const auto augmented =
      augment_topology(base, std::vector<VariableLink>{{EdgeId{0}, 200_Gbps}},
                       ZeroPenalty{}, {}, options);
  for (EdgeId e : augmented.graph.edge_ids())
    EXPECT_EQ(augmented.graph.edge(e).weight, 1.0);
}

TEST(Augment, RejectsInvalidVariableLinks) {
  graph::Graph base = sim::fig7_square();
  const ZeroPenalty penalty;
  // Feasible below configured.
  EXPECT_THROW(augment_topology(
                   base, std::vector<VariableLink>{{EdgeId{0}, 50_Gbps}},
                   penalty),
               util::CheckError);
  // Duplicate edges.
  EXPECT_THROW(
      augment_topology(base,
                       std::vector<VariableLink>{{EdgeId{0}, 200_Gbps},
                                                 {EdgeId{0}, 150_Gbps}},
                       penalty),
      util::CheckError);
  // Out of range edge.
  EXPECT_THROW(augment_topology(
                   base, std::vector<VariableLink>{{EdgeId{99}, 200_Gbps}},
                   penalty),
               util::CheckError);
  // Wrong traffic vector size.
  const std::vector<double> bad_traffic(3, 0.0);
  EXPECT_THROW(augment_topology(
                   base, std::vector<VariableLink>{{EdgeId{0}, 200_Gbps}},
                   penalty, bad_traffic),
               util::CheckError);
}

TEST(Augment, GadgetStructureMatchesFig8) {
  graph::Graph base = sim::fig7_square();
  const EdgeId ab{0};
  AugmentOptions options;
  options.unsplittable_gadget = true;
  const auto augmented = augment_topology(
      base, std::vector<VariableLink>{{ab, 200_Gbps}}, FixedPenalty{100.0},
      {}, options);

  // Two new nodes (A', B') and three extra edges.
  EXPECT_EQ(augmented.graph.node_count(), base.node_count() + 2);
  EXPECT_EQ(augmented.graph.edge_count(), base.edge_count() + 3);

  // Slot 0 is the entry at the configured rate.
  EXPECT_EQ(augmented.info(ab).kind, AugmentedEdgeKind::kGadgetEntryReal);
  EXPECT_EQ(augmented.graph.edge(ab).capacity, 100_Gbps);
  EXPECT_EQ(augmented.graph.edge(ab).cost, 0.0);

  // The fake entry carries the full upgraded rate at the penalty.
  const EdgeId fake = augmented.fake_edge_of[0];
  EXPECT_EQ(augmented.info(fake).kind, AugmentedEdgeKind::kGadgetEntryFake);
  EXPECT_EQ(augmented.graph.edge(fake).capacity, 200_Gbps);
  EXPECT_EQ(augmented.graph.edge(fake).cost, 100.0);

  // Both entries land on the same A'; body and exit at full rate, cost 0.
  const auto entry_node = augmented.graph.edge(ab).dst;
  EXPECT_EQ(augmented.graph.edge(fake).dst, entry_node);
  const EdgeId body{fake.value + 1};
  const EdgeId exit{fake.value + 2};
  EXPECT_EQ(augmented.info(body).kind, AugmentedEdgeKind::kGadgetBody);
  EXPECT_EQ(augmented.info(exit).kind, AugmentedEdgeKind::kGadgetExit);
  EXPECT_EQ(augmented.graph.edge(body).src, entry_node);
  EXPECT_EQ(augmented.graph.edge(body).capacity, 200_Gbps);
  EXPECT_EQ(augmented.graph.edge(exit).dst, base.edge(ab).dst);
  EXPECT_EQ(augmented.graph.edge(exit).capacity, 200_Gbps);

  // End-to-end reachability through the gadget is preserved.
  const auto path = graph::shortest_path(
      augmented.graph, base.edge(ab).src, base.edge(ab).dst);
  EXPECT_FALSE(path.empty());
}

TEST(Augment, GadgetPreservesPathWeight) {
  graph::Graph base = sim::fig7_square();
  for (EdgeId e : base.edge_ids()) base.edge(e).weight = 3.0;
  AugmentOptions options;
  options.unsplittable_gadget = true;
  const auto augmented = augment_topology(
      base, std::vector<VariableLink>{{EdgeId{0}, 200_Gbps}}, ZeroPenalty{},
      {}, options);
  // A -> B through the gadget still weighs 3 (entry 0 + body 3 + exit 0).
  const auto path = graph::shortest_path(
      augmented.graph, base.edge(EdgeId{0}).src, base.edge(EdgeId{0}).dst);
  EXPECT_DOUBLE_EQ(path.weight, 3.0);
}

TEST(CarveOut, SubtractsCapacityAndFreezesLinks) {
  graph::Graph base = sim::fig7_square();
  const auto nA = *base.find_node("A");
  const auto nB = *base.find_node("B");
  const EdgeId ab = *base.find_edge(nA, nB);
  graph::Path path;
  path.edges = {ab};
  const std::vector<ProtectedFlow> protected_flows = {{path, 40_Gbps}};
  std::vector<VariableLink> variable = {{ab, 200_Gbps},
                                        {EdgeId{2}, 150_Gbps}};
  const graph::Graph reduced =
      carve_out_protected(base, protected_flows, variable);
  EXPECT_EQ(reduced.edge(ab).capacity, 60_Gbps);
  // The protected link dropped out of the variable set; the other stayed.
  ASSERT_EQ(variable.size(), 1u);
  EXPECT_EQ(variable[0].edge, EdgeId{2});
  // Other edges untouched.
  EXPECT_EQ(reduced.edge(EdgeId{3}).capacity, 100_Gbps);
}

TEST(CarveOut, RejectsOverCommittedProtection) {
  graph::Graph base = sim::fig7_square();
  graph::Path path;
  path.edges = {EdgeId{0}};
  const std::vector<ProtectedFlow> protected_flows = {{path, 140_Gbps}};
  std::vector<VariableLink> variable;
  EXPECT_THROW(carve_out_protected(base, protected_flows, variable),
               util::CheckError);
}

}  // namespace
}  // namespace rwc::core
