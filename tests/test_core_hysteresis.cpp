// Tests for the hysteresis filter and its controller integration.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/hysteresis.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"

namespace rwc::core {
namespace {

using util::Db;
using util::Gbps;
using namespace util::literals;

TEST(Hysteresis, ReductionsPassImmediately) {
  HysteresisFilter filter(1, HysteresisParams{});
  const Gbps filtered = filter.filter(0, 50_Gbps, 50_Gbps, 100_Gbps);
  EXPECT_EQ(filtered, 50_Gbps);
}

TEST(Hysteresis, UpgradeHeldForHoldRounds) {
  HysteresisParams params;
  params.up_hold_rounds = 3;
  HysteresisFilter filter(1, params);
  // Rounds 1 and 2: still configured rate; round 3: promoted.
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps);
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps);
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 200_Gbps);
}

TEST(Hysteresis, StreakResetsOnDip) {
  HysteresisParams params;
  params.up_hold_rounds = 2;
  HysteresisFilter filter(1, params);
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps);
  // Dip back to the configured rate: streak resets.
  EXPECT_EQ(filter.filter(0, 100_Gbps, 100_Gbps, 100_Gbps), 100_Gbps);
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps);
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 200_Gbps);
}

TEST(Hysteresis, ExtraMarginGatesTheCandidate) {
  // Raw feasible says 200 G but the extra-margin lookup only reaches
  // 175 G: the filter must hold at the margin-cleared rate.
  HysteresisParams params;
  params.up_hold_rounds = 1;
  HysteresisFilter filter(1, params);
  EXPECT_EQ(filter.filter(0, 200_Gbps, 175_Gbps, 100_Gbps), 175_Gbps);
}

TEST(Hysteresis, CandidateChangeRestartsStreak) {
  HysteresisParams params;
  params.up_hold_rounds = 2;
  HysteresisFilter filter(1, params);
  EXPECT_EQ(filter.filter(0, 175_Gbps, 175_Gbps, 100_Gbps), 100_Gbps);
  // Candidate jumps to 200: new streak.
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps);
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 200_Gbps);
}

TEST(Hysteresis, DwellExpiryEdgeExposesExactlyOnTheHoldRound) {
  // Boundary of the dwell window: at up_hold_rounds = N the increase must
  // stay hidden through round N-1 and appear exactly on round N — a dip on
  // round N-1 restarts the full window, and a lagging caller (configured
  // rate unchanged after exposure) keeps seeing the increase without a
  // fresh dwell, which is still dwell-compliant (the rate never stopped
  // being feasible).
  HysteresisParams params;
  params.up_hold_rounds = 4;
  HysteresisFilter filter(1, params);
  for (int round = 1; round < 4; ++round)
    ASSERT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps)
        << "round " << round;
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 200_Gbps);
  // Caller lags (configured stays 100): re-exposure needs no new dwell.
  EXPECT_EQ(filter.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 200_Gbps);

  // One dip at round N-1 discards the whole streak.
  HysteresisFilter strict(1, params);
  for (int round = 1; round < 4; ++round)
    ASSERT_EQ(strict.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps);
  ASSERT_EQ(strict.filter(0, 100_Gbps, 100_Gbps, 100_Gbps), 100_Gbps);
  for (int round = 1; round < 4; ++round)
    ASSERT_EQ(strict.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 100_Gbps)
        << "post-dip round " << round;
  EXPECT_EQ(strict.filter(0, 200_Gbps, 200_Gbps, 100_Gbps), 200_Gbps);
}

TEST(Hysteresis, MinimumHoldOfOneExposesImmediately) {
  HysteresisParams params;
  params.up_hold_rounds = 1;
  HysteresisFilter filter(1, params);
  EXPECT_EQ(filter.filter(0, 150_Gbps, 150_Gbps, 100_Gbps), 150_Gbps);
}

TEST(Hysteresis, ValidatesInputs) {
  EXPECT_THROW(HysteresisFilter(1, HysteresisParams{Db{-1.0}, 1}),
               util::CheckError);
  EXPECT_THROW(HysteresisFilter(1, HysteresisParams{Db{0.5}, 0}),
               util::CheckError);
  HysteresisFilter filter(2, HysteresisParams{});
  EXPECT_THROW(filter.filter(2, 100_Gbps, 100_Gbps, 100_Gbps),
               util::CheckError);
}

TEST(HysteresisController, SuppressesThresholdFlapping) {
  // SNR oscillates +-0.3 dB around the 200 G threshold (13.0 dB). Without
  // hysteresis the link re-upgrades every other round; with it the link
  // settles at 175 G and stays.
  graph::Graph base;
  const auto a = base.add_node("A");
  const auto b = base.add_node("B");
  base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  const te::TrafficMatrix demands = {{a, b, 200_Gbps, 0}};

  auto count_changes = [&](core::ControllerOptions options) {
    options.snr_margin = 0_dB;
    DynamicCapacityController controller(
        base, optical::ModulationTable::standard(), engine, options);
    std::size_t changes = 0;
    for (int round = 0; round < 20; ++round) {
      const double snr = 13.1 + (round % 2 == 0 ? 0.2 : -0.3);
      const std::vector<Db> link_snr = {Db{snr}};
      const auto report = controller.run_round(link_snr, demands);
      changes += report.plan.upgrades.size() + report.reductions.size() +
                 report.restorations.size();
    }
    return changes;
  };

  ControllerOptions plain;
  ControllerOptions damped;
  damped.hysteresis = HysteresisParams{Db{0.5}, 3};
  const std::size_t plain_changes = count_changes(plain);
  const std::size_t damped_changes = count_changes(damped);
  EXPECT_GT(plain_changes, 10u);  // flaps nearly every round
  EXPECT_LE(damped_changes, 3u);  // settles quickly
}

TEST(HysteresisController, StillUpgradesOnCleanSignal) {
  graph::Graph base;
  const auto a = base.add_node("A");
  const auto b = base.add_node("B");
  base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  ControllerOptions options;
  options.snr_margin = 0_dB;
  options.hysteresis = HysteresisParams{Db{0.5}, 2};
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine, options);
  const te::TrafficMatrix demands = {{a, b, 200_Gbps, 0}};
  const std::vector<Db> snr = {20.0_dB};
  // Round 1: held. Round 2: upgraded.
  auto r1 = controller.run_round(snr, demands);
  EXPECT_TRUE(r1.plan.upgrades.empty());
  auto r2 = controller.run_round(snr, demands);
  ASSERT_EQ(r2.plan.upgrades.size(), 1u);
  EXPECT_EQ(r2.plan.upgrades[0].to, 200_Gbps);
}

}  // namespace
}  // namespace rwc::core
