// Golden-trace regression tests (ISSUE 4 satellite): the full scenario
// sweep (sim::run_scenarios over static / dynamic / dynamic-hitless
// policies) is pinned, bit-for-bit, against committed fixtures for two
// seeds. Doubles are compared as IEEE-754 bit patterns — any drift in the
// RNG streams, the TE engines, the controller or the accounting shows up
// here first, with a field-level diff naming exactly what moved.
//
// Regenerating after an INTENDED behavior change:
//   RWC_GOLDEN_REGEN=1 ./build/tests/rwc_tests --gtest_filter='GoldenTrace.*'
// then commit the rewritten tests/golden/*.golden files alongside the
// change that explains them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

#ifndef RWC_GOLDEN_DIR
#error "RWC_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace rwc {
namespace {

/// Hex bit pattern of a double: the only drift-proof way to commit one.
std::string bits_of(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << bits;
  return out.str();
}

double double_of(const std::string& hex) {
  const std::uint64_t bits = std::stoull(hex, nullptr, 16);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// One fixture line per scenario:
///   name offered delivered availability downtime failures flaps upgrades
///   restorations lock_failures te_rounds
/// (doubles as 16-digit hex bit patterns, counters in decimal).
std::string serialize(const sim::ScenarioResult& result) {
  const sim::SimulationMetrics& m = result.metrics;
  std::ostringstream out;
  out << result.name << ' ' << bits_of(m.offered_gbps_hours) << ' '
      << bits_of(m.delivered_gbps_hours) << ' ' << bits_of(m.availability)
      << ' ' << bits_of(m.reconfig_downtime_hours) << ' ' << m.link_failures
      << ' ' << m.link_flaps << ' ' << m.upgrades << ' ' << m.restorations
      << ' ' << m.lock_failures << ' ' << m.te_rounds;
  return out.str();
}

struct GoldenField {
  std::string name;
  std::string expected;
  std::string got;
};

/// Field-level diff of one scenario line; empty when identical.
std::vector<GoldenField> diff_line(const std::string& expected,
                                   const std::string& got) {
  static const char* kFields[] = {
      "name",          "offered_gbps_hours", "delivered_gbps_hours",
      "availability",  "reconfig_downtime_hours", "link_failures",
      "link_flaps",    "upgrades",           "restorations",
      "lock_failures", "te_rounds"};
  std::istringstream expected_in(expected), got_in(got);
  std::vector<GoldenField> diffs;
  for (const char* field : kFields) {
    std::string expected_token, got_token;
    expected_in >> expected_token;
    got_in >> got_token;
    if (expected_token == got_token) continue;
    GoldenField diff{field, expected_token, got_token};
    // Decode double fields so the diff is human-readable, not just hex.
    if (expected_token.size() == 16 && got_token.size() == 16 &&
        std::string(field) != "name") {
      diff.expected += " (" + std::to_string(double_of(expected_token)) + ")";
      diff.got += " (" + std::to_string(double_of(got_token)) + ")";
    }
    diffs.push_back(diff);
  }
  return diffs;
}

std::vector<sim::ScenarioResult> run_golden_sweep(std::uint64_t seed) {
  util::Rng topo_rng = util::Rng::stream(seed, 0);
  const graph::Graph topology = sim::waxman(8, topo_rng);
  util::Rng demand_rng = util::Rng::stream(seed, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{topology.total_capacity().value * 0.4};
  const te::TrafficMatrix demands =
      sim::gravity_matrix(topology, gravity, demand_rng);

  sim::SimulationConfig base;
  base.horizon = 12.0 * util::kHour;
  base.te_interval = 15.0 * util::kMinute;
  base.seed = seed;
  std::vector<sim::Scenario> scenarios;
  {
    sim::SimulationConfig config = base;
    config.policy = sim::CapacityPolicy::kStatic;
    scenarios.push_back({"static", config});
  }
  {
    sim::SimulationConfig config = base;
    config.policy = sim::CapacityPolicy::kDynamic;
    scenarios.push_back({"dynamic", config});
  }
  {
    sim::SimulationConfig config = base;
    config.policy = sim::CapacityPolicy::kDynamicHitless;
    scenarios.push_back({"dynamic-hitless", config});
  }

  const te::McfTe engine;
  return sim::run_scenarios(topology, engine, demands, scenarios);
}

void check_against_golden(std::uint64_t seed) {
  const std::filesystem::path path =
      std::filesystem::path(RWC_GOLDEN_DIR) /
      ("scenarios-" + std::to_string(seed) + ".golden");
  const std::vector<sim::ScenarioResult> results = run_golden_sweep(seed);
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (const sim::ScenarioResult& result : results)
    lines.push_back(serialize(result));

  if (std::getenv("RWC_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : lines) out << line << '\n';
    GTEST_SKIP() << "regenerated " << path << " — commit it";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path << "; generate it with\n  RWC_GOLDEN_REGEN=1 "
      << "./build/tests/rwc_tests --gtest_filter='GoldenTrace.*'";
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) expected.push_back(line);

  ASSERT_EQ(expected.size(), lines.size())
      << "fixture " << path << " has " << expected.size()
      << " scenarios, the sweep produced " << lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (expected[i] == lines[i]) continue;
    std::ostringstream message;
    message << "scenario " << i << " drifted from " << path << ":\n";
    for (const GoldenField& diff : diff_line(expected[i], lines[i]))
      message << "  " << diff.name << ": expected " << diff.expected
              << ", got " << diff.got << '\n';
    message << "If this change is intended, regenerate with\n"
            << "  RWC_GOLDEN_REGEN=1 ./build/tests/rwc_tests "
            << "--gtest_filter='GoldenTrace.*'\nand commit the new fixture.";
    ADD_FAILURE() << message.str();
  }
}

TEST(GoldenTrace, ScenarioSweepSeed20170701) { check_against_golden(20170701); }

TEST(GoldenTrace, ScenarioSweepSeed20250806) { check_against_golden(20250806); }

}  // namespace
}  // namespace rwc
