// Tests for the observability primitives: counter/gauge/histogram
// semantics, histogram quantile accuracy against the P-square estimator,
// the Span tracing API, and the JSON exporter round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "util/check.hpp"
#include "util/p2_quantile.hpp"
#include "util/rng.hpp"

namespace rwc::obs {
namespace {

TEST(ObsCounter, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsGauge, SetOverwritesAddAccumulates) {
  Gauge gauge;
  gauge.set(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.set(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.0);
  gauge.add(3.0);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(ObsHistogram, SummaryStatistics) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);

  h.observe(0.5);    // bucket 0 (le 1)
  h.observe(5.0);    // bucket 1 (le 10)
  h.observe(50.0);   // bucket 2 (le 100)
  h.observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(ObsHistogram, BoundaryValuesLandInLowerBucket) {
  Histogram h({1.0, 10.0});
  h.observe(1.0);   // le-semantics: exactly on the bound -> that bucket
  h.observe(10.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), util::CheckError);
  EXPECT_THROW(Histogram({1.0, 1.0}), util::CheckError);
  EXPECT_THROW(Histogram({2.0, 1.0}), util::CheckError);
}

TEST(ObsHistogram, DefaultLatencyBoundsMatchContract) {
  const auto& bounds = Histogram::default_latency_bounds();
  ASSERT_EQ(bounds.size(), 33u);
  EXPECT_NEAR(bounds.front(), 1e-6, 1e-12);
  EXPECT_NEAR(bounds.back(), 100.0, 1e-6);
  // Four buckets per decade.
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(10.0, 0.25), 1e-9);
}

TEST(ObsHistogram, QuantilesTrackP2OnLognormalLatencies) {
  // Lognormal "latencies" spanning several buckets; the bucketed quantile
  // should agree with the P-square streaming estimate to within roughly one
  // bucket width (x10^0.25 ~ 1.78 per bucket).
  Histogram h(Histogram::default_latency_bounds());
  util::P2Quantile p50(0.5);
  util::P2Quantile p90(0.9);
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double sample = std::exp(rng.normal(std::log(0.01), 1.0));
    h.observe(sample);
    p50.add(sample);
    p90.add(sample);
  }
  EXPECT_NEAR(h.quantile(0.5) / p50.value(), 1.0, 0.8);
  EXPECT_NEAR(h.quantile(0.9) / p90.value(), 1.0, 0.8);
  // Quantiles are monotone in q and clamped to the observed range.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_GE(h.quantile(0.01), h.min());
  EXPECT_LE(h.quantile(0.99), h.max());
}

TEST(ObsRegistry, HandlesAreStableAcrossResetValues) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  Gauge& gauge = registry.gauge("test.gauge");
  Histogram& histogram = registry.histogram("test.histogram");
  counter.add(5);
  gauge.set(2.5);
  histogram.observe(0.01);

  registry.reset_values();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);

  // Same name -> same instrument; the old references still feed it.
  counter.add(3);
  EXPECT_EQ(registry.counter("test.counter").value(), 3u);
  EXPECT_EQ(&registry.counter("test.counter"), &counter);
  EXPECT_EQ(&registry.gauge("test.gauge"), &gauge);
  EXPECT_EQ(&registry.histogram("test.histogram"), &histogram);
}

TEST(ObsRegistry, CustomBoundsFirstRegistrationWins) {
  Registry registry;
  Histogram& h = registry.histogram("custom", {1.0, 2.0});
  EXPECT_EQ(h.upper_bounds().size(), 2u);
  // Re-request with different bounds returns the existing instrument.
  Histogram& again = registry.histogram("custom", {5.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

TEST(ObsRegistry, ConcurrentCountingIsLossless) {
  Registry registry;
  Counter& counter = registry.counter("test.concurrent");
  Histogram& histogram = registry.histogram("test.concurrent_hist");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.observe(1e-3);
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

TEST(ObsSpan, NestedSpansBuildDottedPaths) {
  double outer_seconds = 0.0;
  {
    Span outer("obs_test.outer", &outer_seconds);
    EXPECT_EQ(outer.path(), "obs_test.outer");
    Span inner("stage");
    EXPECT_EQ(inner.path(), "obs_test.outer.stage");
  }
  EXPECT_GT(outer_seconds, 0.0);
  auto& registry = Registry::global();
  EXPECT_EQ(registry.histogram("obs_test.outer.seconds").count(), 1u);
  EXPECT_EQ(registry.histogram("obs_test.outer.stage.seconds").count(), 1u);
}

TEST(ObsScopedTimer, RecordsAndAccumulates) {
  Histogram h(Histogram::default_latency_bounds());
  double accumulated = 0.0;
  { ScopedTimer timer(h, &accumulated); }
  { ScopedTimer timer(h, &accumulated); }
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(accumulated, 0.0);
  EXPECT_NEAR(h.sum(), accumulated, 1e-9);
}

TEST(ObsExport, JsonRoundTrip) {
  Registry registry;
  registry.counter("rt.counter").add(123);
  registry.gauge("rt.gauge").set(-2.75);
  Histogram& h = registry.histogram("rt.histogram", {0.001, 0.1, 10.0});
  h.observe(0.0005);
  h.observe(0.05);
  h.observe(0.05);
  h.observe(1000.0);  // overflow

  const Snapshot before = snapshot(registry);
  const std::string json = dump_json(registry);
  const Snapshot after = parse_json(json);

  ASSERT_EQ(after.counters.size(), 1u);
  EXPECT_EQ(after.counters.at("rt.counter"), 123u);
  ASSERT_EQ(after.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(after.gauges.at("rt.gauge"), -2.75);

  ASSERT_EQ(after.histograms.size(), 1u);
  const HistogramSnapshot& hs = after.histograms.at("rt.histogram");
  EXPECT_EQ(hs.count, 4u);
  EXPECT_DOUBLE_EQ(hs.sum, before.histograms.at("rt.histogram").sum);
  EXPECT_DOUBLE_EQ(hs.min, 0.0005);
  EXPECT_DOUBLE_EQ(hs.max, 1000.0);
  ASSERT_EQ(hs.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_DOUBLE_EQ(hs.buckets[0].first, 0.001);
  EXPECT_EQ(hs.buckets[0].second, 1u);
  EXPECT_EQ(hs.buckets[1].second, 2u);
  EXPECT_EQ(hs.buckets[2].second, 0u);
  EXPECT_TRUE(std::isinf(hs.buckets[3].first));
  EXPECT_EQ(hs.buckets[3].second, 1u);

  // Parsed quantile fields match the emitted ones bit-for-bit (shortest
  // round-trippable number formatting).
  EXPECT_DOUBLE_EQ(hs.p50, before.histograms.at("rt.histogram").p50);
  EXPECT_DOUBLE_EQ(hs.p90, before.histograms.at("rt.histogram").p90);
  EXPECT_DOUBLE_EQ(hs.p99, before.histograms.at("rt.histogram").p99);
}

TEST(ObsExport, EmptyRegistryRoundTrips) {
  Registry registry;
  const Snapshot parsed = parse_json(dump_json(registry));
  EXPECT_TRUE(parsed.counters.empty());
  EXPECT_TRUE(parsed.gauges.empty());
  EXPECT_TRUE(parsed.histograms.empty());
}

TEST(ObsExport, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), util::CheckError);
  EXPECT_THROW(parse_json("{\"bogus\": {\"x\": 1}}"), util::CheckError);
  EXPECT_THROW(parse_json("{\"counters\": {\"x\": }}"), util::CheckError);
  EXPECT_THROW(parse_json("{\"counters\": {}} trailing"),
               util::CheckError);
}

TEST(ObsExport, TableListsEveryInstrument) {
  Registry registry;
  registry.counter("table.counter").add(7);
  registry.gauge("table.gauge").set(1.0);
  registry.histogram("table.histogram").observe(0.5);
  const std::string table = dump_table(registry);
  EXPECT_NE(table.find("table.counter"), std::string::npos);
  EXPECT_NE(table.find("table.gauge"), std::string::npos);
  EXPECT_NE(table.find("table.histogram"), std::string::npos);
}

}  // namespace
}  // namespace rwc::obs
