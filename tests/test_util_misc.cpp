// Tests for units, contract macros, text tables and ASCII plots.
#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace rwc::util {
namespace {

using namespace util::literals;

TEST(Units, DbArithmeticAndComparison) {
  const Db a{3.0};
  const Db b{4.5};
  EXPECT_EQ((a + b).value, 7.5);
  EXPECT_EQ((b - a).value, 1.5);
  EXPECT_LT(a, b);
  EXPECT_EQ((2.0 * a).value, 6.0);
  EXPECT_EQ((-a).value, -3.0);
}

TEST(Units, DbLinearRoundTrip) {
  for (double v : {-10.0, 0.0, 3.0, 6.5, 13.0}) {
    const double linear = db_to_linear(Db{v});
    EXPECT_NEAR(linear_to_db(linear).value, v, 1e-9);
  }
  EXPECT_NEAR(db_to_linear(Db{10.0}), 10.0, 1e-9);
  EXPECT_NEAR(db_to_linear(Db{3.0}), 1.9952623, 1e-6);
}

TEST(Units, LinearToDbRejectsNonPositive) {
  EXPECT_THROW(linear_to_db(0.0), CheckError);
  EXPECT_THROW(linear_to_db(-1.0), CheckError);
}

TEST(Units, GbpsLiteralsAndStreaming) {
  const Gbps g = 100_Gbps;
  EXPECT_EQ(g.value, 100.0);
  EXPECT_EQ((12.5_dB).value, 12.5);
  std::ostringstream os;
  os << g << " / " << 6.5_dB;
  EXPECT_EQ(os.str(), "100 Gbps / 6.5 dB");
}

TEST(Check, MacrosThrowWithContext) {
  try {
    RWC_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
  EXPECT_THROW(RWC_EXPECTS(false), CheckError);
  EXPECT_THROW(RWC_ENSURES(false), CheckError);
  EXPECT_NO_THROW(RWC_CHECK(true));
}

TEST(TextTable, AlignmentAndCsv) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22.5"});
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.to_csv(), "name,value\nalpha,1\nb,22.5\n");
}

TEST(TextTable, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
}

TEST(Format, DoubleAndPercent) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_percent(0.825, 1), "82.5%");
}

TEST(AsciiPlot, CdfPlotRendersAllSeries) {
  EmpiricalCdf a({1.0, 2.0, 3.0});
  EmpiricalCdf b({2.0, 4.0, 8.0});
  const std::vector<std::pair<std::string, const EmpiricalCdf*>> series = {
      {"first", &a}, {"second", &b}};
  const std::string plot = plot_cdfs(series, 40, 10, "value");
  EXPECT_NE(plot.find("first"), std::string::npos);
  EXPECT_NE(plot.find("second"), std::string::npos);
  EXPECT_NE(plot.find("CDF"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
}

TEST(AsciiPlot, SeriesPlotHasAxes) {
  const std::vector<double> values = {1.0, 5.0, 2.0, 8.0, 3.0};
  const std::string plot = plot_series(values, 30, 8, "t", "y");
  EXPECT_NE(plot.find('|'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, CanvasClampsOutOfRangePoints) {
  PlotCanvas canvas(20, 10, 0.0, 1.0, 0.0, 1.0);
  canvas.point(5.0, 5.0);   // silently dropped
  canvas.point(0.5, 0.5);
  const std::string out = canvas.render("x", "y");
  EXPECT_NE(out.find('*'), std::string::npos);
}

}  // namespace
}  // namespace rwc::util
