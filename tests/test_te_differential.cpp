// Differential TE oracles (ISSUE 4 satellite): on seeded random splittable
// instances the edge-based LP reference (McfLpTe) upper-bounds McfTe's
// throughput, and the heuristic gap stays small; when both route the full
// demand the LP's routing cost is no worse. Independently, every greedy
// engine (SWAN, B4, ECMP) run on an AUGMENTED topology — fake headroom
// edges and all — must respect the augmented capacities and conserve flow
// (Theorem 1's precondition: engines run unmodified on G').
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/augment.hpp"
#include "core/penalty.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "te/b4.hpp"
#include "te/ecmp.hpp"
#include "te/mcf_lp.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

constexpr std::uint64_t kSeeds[] = {17, 29, 47};

/// Heuristic-vs-LP throughput gap tolerated on these instances. McfTe
/// serves demands through successive per-commodity min-cost max-flow
/// solves, so it can strand capacity the joint multi-commodity LP optimum
/// still uses; the observed gap on the seeded instances is 8-18%, so this
/// bound catches a real regression without flaking on solver noise.
constexpr double kRelativeGapTolerance = 0.25;
constexpr double kAbsoluteTolerance = 1e-6;

struct Instance {
  graph::Graph topology;
  te::TrafficMatrix demands;
};

Instance make_instance(std::uint64_t seed) {
  util::Rng rng = util::Rng::stream(seed, 400);
  Instance instance;
  instance.topology = prop::random_topology(rng);
  instance.demands = prop::random_demands(instance.topology, rng);
  return instance;
}

TEST(TeDifferential, LpUpperBoundsMcfThroughputWithinTolerance) {
  const te::McfTe mcf;
  const te::McfLpTe lp;
  for (const std::uint64_t seed : kSeeds) {
    const Instance instance = make_instance(seed);
    const std::string context = "seed " + std::to_string(seed);

    const te::FlowAssignment heuristic =
        mcf.solve(instance.topology, instance.demands);
    const te::FlowAssignment reference =
        lp.solve(instance.topology, instance.demands);

    // Both must be feasible before their objectives mean anything.
    const prop::InvariantResult mcf_ok =
        prop::check_flow_conservation(instance.topology, heuristic);
    ASSERT_TRUE(mcf_ok.ok) << context << ": mcf " << mcf_ok.detail;
    const prop::InvariantResult lp_ok =
        prop::check_flow_conservation(instance.topology, reference);
    ASSERT_TRUE(lp_ok.ok) << context << ": lp " << lp_ok.detail;

    const double mcf_routed = heuristic.total_routed.value;
    const double lp_routed = reference.total_routed.value;
    EXPECT_GE(lp_routed, mcf_routed - kAbsoluteTolerance)
        << context << ": the LP reference routed less than the heuristic";
    ASSERT_GT(lp_routed, 0.0) << context;
    EXPECT_LE((lp_routed - mcf_routed) / lp_routed, kRelativeGapTolerance)
        << context << ": heuristic routed " << mcf_routed << " Gbps vs LP "
        << lp_routed << " Gbps";

    const double offered = te::total_demand(instance.demands).value;
    const bool both_route_everything =
        mcf_routed >= offered - kAbsoluteTolerance &&
        lp_routed >= offered - kAbsoluteTolerance;
    if (both_route_everything) {
      // Same throughput -> the LP's cost-minimizing tiebreak must not lose
      // to the heuristic (relative slack for simplex pivoting noise).
      EXPECT_LE(reference.total_cost,
                heuristic.total_cost * (1.0 + 1e-9) + kAbsoluteTolerance)
          << context << ": lp cost " << reference.total_cost
          << " exceeds mcf cost " << heuristic.total_cost;
    }
  }
}

TEST(TeDifferential, GreedyEnginesRespectAugmentedCapacities) {
  const te::SwanTe swan;
  const te::B4Te b4;
  const te::EcmpTe ecmp;
  const te::TeAlgorithm* engines[] = {&swan, &b4, &ecmp};
  const core::TrafficProportionalPenalty penalty;

  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng = util::Rng::stream(seed, 401);
    const graph::Graph base = prop::random_topology(rng);
    const te::TrafficMatrix demands = prop::random_demands(base, rng);

    // Roughly a third of the links currently support a higher ladder rate.
    std::vector<core::VariableLink> variable;
    std::vector<double> current_traffic(base.edge_count(), 0.0);
    for (std::size_t e = 0; e < base.edge_count(); ++e) {
      current_traffic[e] =
          rng.uniform(0.0, base.edge(graph::EdgeId{static_cast<std::int32_t>(
                                         e)}).capacity.value);
      if (!rng.bernoulli(0.35)) continue;
      const graph::EdgeId edge{static_cast<std::int32_t>(e)};
      variable.push_back(core::VariableLink{
          edge, util::Gbps{base.edge(edge).capacity.value +
                           (rng.bernoulli(0.5) ? 50.0 : 100.0)}});
    }

    const core::AugmentedTopology augmented = core::augment_topology(
        base, variable, penalty, current_traffic);

    for (const te::TeAlgorithm* engine : engines) {
      const te::FlowAssignment assignment =
          engine->solve(augmented.graph, demands);
      // check_flow_conservation re-derives per-edge load from the paths and
      // rejects any edge loaded above its (augmented) capacity.
      const prop::InvariantResult ok =
          prop::check_flow_conservation(augmented.graph, assignment);
      EXPECT_TRUE(ok.ok) << "seed " << seed << ", engine " << engine->name()
                         << ": " << ok.detail;
    }
  }
}

}  // namespace
}  // namespace rwc
