#include <gtest/gtest.h>

TEST(Smoke, BuildsAndRuns) { EXPECT_TRUE(true); }
