// Tests for constellation generation, EVM measurement and rendering
// (Fig. 5's QPSK / 8QAM / 16QAM diagrams).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "bvt/constellation.hpp"
#include "optical/ber.hpp"
#include "util/check.hpp"

namespace rwc::bvt {
namespace {

using util::Db;

TEST(Constellation, SizesAndUnitPower) {
  for (int points : {2, 4, 8, 16}) {
    const auto ideal = ideal_constellation(points);
    EXPECT_EQ(ideal.size(), static_cast<std::size_t>(points));
    double power = 0.0;
    for (const IqPoint& p : ideal) power += p.i * p.i + p.q * p.q;
    EXPECT_NEAR(power / points, 1.0, 1e-12);
    // All points distinct.
    std::set<std::pair<double, double>> distinct;
    for (const IqPoint& p : ideal) distinct.insert({p.i, p.q});
    EXPECT_EQ(distinct.size(), ideal.size());
  }
}

TEST(Constellation, UnsupportedSizeThrows) {
  EXPECT_THROW(ideal_constellation(32), util::CheckError);
  EXPECT_THROW(ideal_constellation(3), util::CheckError);
}

TEST(Constellation, Star8QamHasTwoRings) {
  const auto ideal = ideal_constellation(8);
  std::set<long> radii;
  for (const IqPoint& p : ideal)
    radii.insert(std::lround(std::sqrt(p.i * p.i + p.q * p.q) * 1000.0));
  EXPECT_EQ(radii.size(), 2u);
}

TEST(Constellation, SampleCountAndDeterminism) {
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const auto a = sample_constellation(16, Db{15.0}, 500, rng_a);
  const auto b = sample_constellation(16, Db{15.0}, 500, rng_b);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].i, b[i].i);
    EXPECT_EQ(a[i].q, b[i].q);
  }
}

TEST(Constellation, HighSnrSamplesHugIdealPoints) {
  util::Rng rng(6);
  const auto ideal = ideal_constellation(4);
  const auto received = sample_constellation(4, Db{30.0}, 1000, rng);
  for (const IqPoint& r : received) {
    double best = 1e9;
    for (const IqPoint& p : ideal) {
      const double d = std::hypot(r.i - p.i, r.q - p.q);
      best = std::min(best, d);
    }
    EXPECT_LT(best, 0.2);
  }
}

class EvmSweep : public ::testing::TestWithParam<double> {};

TEST_P(EvmSweep, MeasuredEvmTracksTheory) {
  const double snr_db = GetParam();
  util::Rng rng(77);
  const auto ideal = ideal_constellation(4);
  // QPSK decisions are essentially error-free at these SNRs, so the
  // nearest-point EVM matches the theoretical 1/sqrt(SNR).
  const auto received =
      sample_constellation(4, Db{snr_db}, 20000, rng);
  const double measured = measure_evm(received, ideal);
  const double expected = optical::expected_evm(Db{snr_db});
  EXPECT_NEAR(measured, expected, expected * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Snrs, EvmSweep,
                         ::testing::Values(12.0, 15.0, 18.0, 21.0, 24.0));

TEST(Evm, IncreasesAsSnrDrops) {
  util::Rng rng(8);
  const auto ideal = ideal_constellation(16);
  const auto clean = sample_constellation(16, Db{25.0}, 5000, rng);
  const auto noisy = sample_constellation(16, Db{14.0}, 5000, rng);
  EXPECT_LT(measure_evm(clean, ideal), measure_evm(noisy, ideal));
}

TEST(Evm, RejectsEmptyInput) {
  const auto ideal = ideal_constellation(4);
  EXPECT_THROW(measure_evm({}, ideal), util::CheckError);
}

TEST(Render, ProducesGridWithDensityGlyphs) {
  util::Rng rng(9);
  const auto received = sample_constellation(16, Db{18.0}, 4000, rng);
  const std::string art = render_constellation(received, 33);
  EXPECT_NE(art.find('+'), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
  // Dense cells use the darker glyphs.
  EXPECT_TRUE(art.find('@') != std::string::npos ||
              art.find('#') != std::string::npos);
  // 33 rows + 2 border rows.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(art.begin(), art.end(), '\n')),
            35u);
}

TEST(Render, RejectsTinyGrid) {
  util::Rng rng(9);
  const auto received = sample_constellation(4, Db{18.0}, 100, rng);
  EXPECT_THROW(render_constellation(received, 4), util::CheckError);
}

}  // namespace
}  // namespace rwc::bvt
