// Tests for the streaming link analyzer and the trace / ticket CSV IO.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "obs/registry.hpp"
#include "telemetry/analysis.hpp"
#include "telemetry/io.hpp"
#include "telemetry/streaming.hpp"
#include "tickets/generator.hpp"
#include "tickets/io.hpp"
#include "util/check.hpp"

namespace rwc {
namespace {

using util::Db;
using namespace util::literals;

telemetry::SnrTrace small_trace() {
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = 1;
  params.wavelengths_per_fiber = 1;
  params.duration = 60.0 * util::kDay;
  telemetry::SnrFleetGenerator fleet(params, 77);
  return fleet.generate_trace(0, 0);
}

TEST(Streaming, MatchesExactAnalysisOnStableLink) {
  const auto table = optical::ModulationTable::standard();
  const auto trace = small_trace();

  telemetry::StreamingLinkAnalyzer analyzer;
  analyzer.add(trace);
  const auto streaming = analyzer.stats(table);
  const auto exact = telemetry::analyze_link(trace, table);

  EXPECT_EQ(analyzer.count(), trace.size());
  EXPECT_EQ(streaming.min_snr, exact.min_snr);
  EXPECT_EQ(streaming.max_snr, exact.max_snr);
  EXPECT_NEAR(streaming.range_db, exact.range_db, 1e-9);
  // The central interval upper-bounds the minimal-width HDR but should be
  // close for a roughly symmetric stable link.
  EXPECT_GE(streaming.hdr_width_db, exact.hdr_width_db - 0.15);
  EXPECT_NEAR(streaming.hdr_width_db, exact.hdr_width_db, 0.6);
  // The ladder decision normally agrees (quantile error < one rung).
  EXPECT_NEAR(streaming.feasible_capacity.value,
              exact.feasible_capacity.value, 25.0);
}

TEST(Streaming, SanitizesCorruptSamplesAtChunkBoundaries) {
  // Regression (ISSUE 9 satellite): the streaming path used to feed raw
  // samples into its summary/quantile sketches, so a NaN at a chunk
  // boundary poisoned every later stat while the batch path (analyze_link)
  // sanitized it away. Both paths must now route through
  // sanitize_sample_db: corrupt readings clamp to the 0 dB floor, are
  // counted under telemetry.samples_clamped, and the two analyses agree.
  const auto table = optical::ModulationTable::standard();
  auto trace = small_trace();
  const std::size_t boundary = trace.size() / 2;
  ASSERT_GT(boundary, 0u);
  ASSERT_LT(boundary + 2, trace.size());
  // A refill glitch duplicates the last pre-boundary sample into the next
  // chunk, then exports a NaN and a negative loss-of-light reading.
  trace.samples_db[boundary] = trace.samples_db[boundary - 1];
  trace.samples_db[boundary + 1] = std::numeric_limits<float>::quiet_NaN();
  trace.samples_db[boundary + 2] = -4.0f;

  auto& clamped = obs::Registry::global().counter("telemetry.samples_clamped");
  const std::uint64_t before = clamped.value();
  telemetry::StreamingLinkAnalyzer analyzer;
  // Feed as two chunks split at the corrupted boundary, the streaming
  // refill shape.
  telemetry::SnrTrace chunk = trace;
  chunk.samples_db.assign(trace.samples_db.begin(),
                          trace.samples_db.begin() +
                              static_cast<std::ptrdiff_t>(boundary));
  analyzer.add(chunk);
  chunk.samples_db.assign(trace.samples_db.begin() +
                              static_cast<std::ptrdiff_t>(boundary),
                          trace.samples_db.end());
  analyzer.add(chunk);
  const auto streaming = analyzer.stats(table);
  EXPECT_EQ(clamped.value() - before, 2u)
      << "exactly the NaN and the negative sample must clamp";

  EXPECT_EQ(analyzer.count(), trace.size());
  EXPECT_EQ(streaming.min_snr.value, 0.0)
      << "corrupt samples must clamp to the floor, not poison the min";
  EXPECT_TRUE(std::isfinite(streaming.max_snr.value));
  EXPECT_TRUE(std::isfinite(streaming.hdr.lo));
  EXPECT_TRUE(std::isfinite(streaming.hdr.hi));

  const auto exact = telemetry::analyze_link(trace, table);
  EXPECT_EQ(streaming.min_snr, exact.min_snr);
  EXPECT_EQ(streaming.max_snr, exact.max_snr);
}

TEST(Streaming, RequiresData) {
  telemetry::StreamingLinkAnalyzer analyzer;
  EXPECT_THROW(analyzer.stats(optical::ModulationTable::standard()),
               util::CheckError);
}

TEST(Streaming, RejectsDegenerateCoverage) {
  EXPECT_THROW(telemetry::StreamingLinkAnalyzer(0.0), util::CheckError);
  EXPECT_THROW(telemetry::StreamingLinkAnalyzer(1.0), util::CheckError);
}

TEST(TraceIo, CsvRoundTrip) {
  const auto trace = small_trace();
  const std::string csv = telemetry::trace_to_csv(trace);
  const auto parsed = telemetry::trace_from_csv(csv);
  EXPECT_EQ(parsed.interval, trace.interval);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_FLOAT_EQ(parsed.samples_db[i], trace.samples_db[i]);
}

TEST(TraceIo, FileRoundTrip) {
  const auto trace = small_trace();
  const std::string path = "/tmp/rwc_trace_io_test.csv";
  telemetry::save_trace_csv(trace, path);
  const auto loaded = telemetry::load_trace_csv(path);
  EXPECT_EQ(loaded.size(), trace.size());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(telemetry::trace_from_csv(""), util::CheckError);
  EXPECT_THROW(telemetry::trace_from_csv("bogus,1\nsnr_db\n1.0\n"),
               util::CheckError);
  EXPECT_THROW(telemetry::trace_from_csv(
                   "interval_seconds,900\nwrong_column\n1.0\n"),
               util::CheckError);
  EXPECT_THROW(
      telemetry::trace_from_csv("interval_seconds,900\nsnr_db\n1.0x\n"),
      util::CheckError);
  EXPECT_THROW(telemetry::load_trace_csv("/nonexistent/dir/file.csv"),
               util::CheckError);
}

TEST(TicketIo, CsvRoundTrip) {
  const auto tickets =
      tickets::generate_tickets(tickets::TicketModelParams{}, 5);
  const std::string csv = tickets::tickets_to_csv(tickets);
  const auto parsed = tickets::tickets_from_csv(csv);
  ASSERT_EQ(parsed.size(), tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(parsed[i].id, tickets[i].id);
    EXPECT_EQ(parsed[i].cause, tickets[i].cause);
    EXPECT_NEAR(parsed[i].outage_duration, tickets[i].outage_duration, 1.0);
    EXPECT_NEAR(parsed[i].lowest_snr.value, tickets[i].lowest_snr.value,
                1e-4);
    EXPECT_EQ(parsed[i].affected_link, tickets[i].affected_link);
  }
}

TEST(TicketIo, RootCauseNamesRoundTrip) {
  for (tickets::RootCause cause : tickets::kAllRootCauses)
    EXPECT_EQ(tickets::root_cause_from_string(tickets::to_string(cause)),
              cause);
  EXPECT_THROW(tickets::root_cause_from_string("alien-invasion"),
               util::CheckError);
}

TEST(TicketIo, RejectsMalformedInput) {
  EXPECT_THROW(tickets::tickets_from_csv("wrong header\n"),
               util::CheckError);
  EXPECT_THROW(
      tickets::tickets_from_csv(
          "id,opened_at_seconds,outage_hours,cause,lowest_snr_db,link\n"
          "1,0,5\n"),
      util::CheckError);
}

TEST(TicketIo, FileRoundTrip) {
  const auto tickets =
      tickets::generate_tickets(tickets::TicketModelParams{}, 6);
  const std::string path = "/tmp/rwc_tickets_io_test.csv";
  tickets::save_tickets_csv(tickets, path);
  const auto loaded = tickets::load_tickets_csv(path);
  EXPECT_EQ(loaded.size(), tickets.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rwc
