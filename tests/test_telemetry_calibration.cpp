// Fleet-level calibration tests: the synthetic SNR model must reproduce the
// paper's published population statistics (DESIGN.md section 6) within
// tolerances. A scaled-down fleet (shorter horizon, fewer fibers) keeps the
// test fast while preserving the distributional targets.
#include <gtest/gtest.h>

#include <algorithm>

#include "telemetry/analysis.hpp"
#include "telemetry/snr_model.hpp"
#include "util/stats.hpp"

namespace rwc::telemetry {
namespace {

using util::Gbps;
using namespace util::literals;

/// 240 links for a full 2.5-year horizon (the statistics that depend on the
/// observation length — range, failure counts — need the real horizon).
const SnrFleetGenerator& calibration_fleet() {
  static const SnrFleetGenerator fleet = [] {
    SnrFleetGenerator::FleetParams params;
    params.fiber_count = 6;
    params.wavelengths_per_fiber = 40;
    params.duration = 2.5 * 365.0 * util::kDay;
    params.interval = 15.0 * util::kMinute;
    return SnrFleetGenerator(params, 20170701);
  }();
  return fleet;
}

const FleetCapacityReport& calibration_report() {
  static const FleetCapacityReport report = analyze_fleet(
      calibration_fleet(), optical::ModulationTable::standard(), 100_Gbps);
  return report;
}

TEST(Calibration, HdrWidthBelow2DbForAbout83Percent) {
  const auto& report = calibration_report();
  const auto narrow = std::count_if(report.hdr_width_db.begin(),
                                    report.hdr_width_db.end(),
                                    [](double w) { return w < 2.0; });
  const double fraction =
      static_cast<double>(narrow) / report.hdr_width_db.size();
  // Paper: 83%.
  EXPECT_NEAR(fraction, 0.83, 0.10);
}

TEST(Calibration, SnrRangeIsWide) {
  const auto& report = calibration_report();
  const auto summary = util::summarize(report.range_db);
  // Paper: dramatic but infrequent changes; average range near 12 dB.
  EXPECT_NEAR(summary.mean, 12.0, 4.0);
  EXPECT_GT(summary.max, summary.mean);
}

TEST(Calibration, RangeFarExceedsHdrWidth) {
  const auto& report = calibration_report();
  const double mean_range = util::summarize(report.range_db).mean;
  const double mean_hdr = util::summarize(report.hdr_width_db).mean;
  EXPECT_GT(mean_range, 3.0 * mean_hdr);
}

TEST(Calibration, MostLinksFeasibleAt175OrMore) {
  const auto& report = calibration_report();
  const auto high = std::count_if(report.feasible_gbps.begin(),
                                  report.feasible_gbps.end(),
                                  [](double f) { return f >= 175.0; });
  const double fraction =
      static_cast<double>(high) / report.feasible_gbps.size();
  // Paper: 80% of links can run at 175 Gbps or higher.
  EXPECT_NEAR(fraction, 0.80, 0.12);
}

TEST(Calibration, AggregateGainScalesTo145TbpsAt2000Links) {
  const auto& report = calibration_report();
  const double mean_gain_per_link =
      report.total_gain.value / static_cast<double>(report.feasible_gbps.size());
  const double projected_tbps = mean_gain_per_link * 2000.0 / 1000.0;
  // Paper: 145 Tbps over ~2000 links (i.e. ~72.5 Gbps per link).
  EXPECT_NEAR(projected_tbps, 145.0, 30.0);
}

TEST(Calibration, DeepDipsAreRareButPresent) {
  // Failure episodes at the 100 G threshold must exist but be infrequent
  // (a handful over 2.5 years for most links).
  const auto& fleet = calibration_fleet();
  const auto table = optical::ModulationTable::standard();
  std::size_t links_with_failures = 0;
  std::vector<double> counts;
  for (int link = 0; link < fleet.link_count(); link += 10) {
    const auto episodes =
        failure_episodes(fleet.generate_trace(link), 6.5_dB);
    counts.push_back(static_cast<double>(episodes.size()));
    if (!episodes.empty()) ++links_with_failures;
  }
  EXPECT_GT(links_with_failures, counts.size() / 2);
  EXPECT_LT(util::summarize(counts).mean, 25.0);
}

TEST(Calibration, FailureDurationsLastHours) {
  // Fig. 3b: failure events last several hours on average.
  const auto& fleet = calibration_fleet();
  std::vector<double> durations_hours;
  for (int link = 0; link < fleet.link_count(); link += 5) {
    const SnrTrace trace = fleet.generate_trace(link);
    for (const auto& episode : failure_episodes(trace, 6.5_dB))
      durations_hours.push_back(episode.duration(trace) / util::kHour);
  }
  ASSERT_FALSE(durations_hours.empty());
  const auto summary = util::summarize(durations_hours);
  EXPECT_GT(summary.mean, 1.0);
  EXPECT_LT(summary.mean, 24.0);
}

TEST(Calibration, SomeFailuresRetainUsableSnr) {
  // Fig. 4c: a meaningful share of 100 G failures keep SNR >= 3 dB.
  const auto& fleet = calibration_fleet();
  std::size_t total = 0;
  std::size_t recoverable = 0;
  for (int link = 0; link < fleet.link_count(); link += 3) {
    const SnrTrace trace = fleet.generate_trace(link);
    for (const auto& episode : failure_episodes(trace, 6.5_dB)) {
      ++total;
      if (episode.lowest_snr >= 3.0_dB) ++recoverable;
    }
  }
  ASSERT_GT(total, 20u);
  const double fraction =
      static_cast<double>(recoverable) / static_cast<double>(total);
  // Paper: ~25% (we accept a generous band; the ticket model pins it
  // tighter in test_tickets.cpp).
  EXPECT_GT(fraction, 0.08);
  EXPECT_LT(fraction, 0.55);
}

}  // namespace
}  // namespace rwc::telemetry
