// Warm-started min-cost flow: the replay path must be bit-identical to the
// cold solve — same objective, same per-arc flows — for any flow limit,
// and fall back to a cold solve on any network change.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "flow/mincost.hpp"
#include "flow/network.hpp"
#include "graph/graph.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc::flow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A mid-size random network with varied costs, fresh on every call.
ResidualNetwork make_network(std::uint64_t seed, int nodes = 24,
                             double arc_probability = 0.3) {
  util::Rng rng(seed);
  ResidualNetwork net(static_cast<std::size_t>(nodes));
  for (int u = 0; u < nodes; ++u)
    for (int v = 0; v < nodes; ++v) {
      if (u == v || !rng.bernoulli(arc_probability)) continue;
      net.add_arc(u, v, rng.uniform(5.0, 50.0), rng.uniform(0.1, 4.0));
    }
  return net;
}

std::vector<double> arc_flows(const ResidualNetwork& net) {
  std::vector<double> flows;
  for (int arc = 0; arc < static_cast<int>(net.arc_count()); arc += 2)
    flows.push_back(net.flow(arc));
  return flows;
}

void expect_bit_identical(const ResidualNetwork& a, const ResidualNetwork& b,
                          const MinCostFlowResult& ra,
                          const MinCostFlowResult& rb) {
  EXPECT_EQ(ra.flow, rb.flow);
  EXPECT_EQ(ra.cost, rb.cost);
  const auto fa = arc_flows(a);
  const auto fb = arc_flows(b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i)
    ASSERT_EQ(fa[i], fb[i]) << "arc pair " << i;
}

TEST(MinCostWarm, ReplayMatchesColdBitwise) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    ResidualNetwork cold_net = make_network(seed);
    const auto cold = min_cost_max_flow(cold_net, 0, 23);

    ResidualNetwork record_net = make_network(seed);
    MinCostWarmStart warm;
    const auto recorded = min_cost_max_flow(record_net, 0, 23, kInf, &warm);
    expect_bit_identical(cold_net, record_net, cold, recorded);
    EXPECT_FALSE(warm.empty());
    EXPECT_TRUE(warm.exhausted);

    ResidualNetwork replay_net = make_network(seed);
    const auto replayed = min_cost_max_flow(replay_net, 0, 23, kInf, &warm);
    expect_bit_identical(cold_net, replay_net, cold, replayed);
  }
}

TEST(MinCostWarm, ReplayIsExactForSmallerFlowLimit) {
  // Record without a limit, replay with one: the recording truncates
  // exactly where the cold limited solve would have stopped.
  ResidualNetwork record_net = make_network(3);
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 23, kInf, &warm);

  for (double limit : {0.0, 7.5, 31.25, 60.0}) {
    ResidualNetwork cold_net = make_network(3);
    const auto cold = min_cost_max_flow(cold_net, 0, 23, limit);

    ResidualNetwork replay_net = make_network(3);
    MinCostWarmStart replay_warm = warm;  // keep the original intact
    const auto replayed =
        min_cost_max_flow(replay_net, 0, 23, limit, &replay_warm);
    expect_bit_identical(cold_net, replay_net, cold, replayed);
  }
}

TEST(MinCostWarm, ResumesLiveWhenRecordingHitItsOwnLimit) {
  // Record WITH a limit, then ask for more: replay must exhaust the
  // recording and resume live SSP from the stored potentials, matching the
  // unlimited cold solve bit for bit.
  ResidualNetwork record_net = make_network(9);
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 23, 10.0, &warm);
  EXPECT_FALSE(warm.exhausted);

  ResidualNetwork cold_net = make_network(9);
  const auto cold = min_cost_max_flow(cold_net, 0, 23);

  ResidualNetwork resume_net = make_network(9);
  const auto resumed = min_cost_max_flow(resume_net, 0, 23, kInf, &warm);
  expect_bit_identical(cold_net, resume_net, cold, resumed);
  // The resumed solve extended the recording to completion.
  EXPECT_TRUE(warm.exhausted);
}

TEST(MinCostWarm, FingerprintMismatchFallsBackToColdSolve) {
  ResidualNetwork record_net = make_network(5);
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 23, kInf, &warm);

  // Different network (different seed): must ignore the stale recording,
  // solve cold and re-record.
  ResidualNetwork other_cold = make_network(6);
  const auto cold = min_cost_max_flow(other_cold, 0, 23);
  ResidualNetwork other_warm = make_network(6);
  const std::uint64_t old_fingerprint = warm.fingerprint;
  const auto result = min_cost_max_flow(other_warm, 0, 23, kInf, &warm);
  expect_bit_identical(other_cold, other_warm, cold, result);
  EXPECT_NE(warm.fingerprint, old_fingerprint);
}

TEST(MinCostWarm, FingerprintSeparatesNetworksAndTerminals) {
  ResidualNetwork a = make_network(11);
  ResidualNetwork b = make_network(12);
  EXPECT_EQ(network_fingerprint(a, 0, 23), network_fingerprint(a, 0, 23));
  EXPECT_NE(network_fingerprint(a, 0, 23), network_fingerprint(b, 0, 23));
  EXPECT_NE(network_fingerprint(a, 0, 23), network_fingerprint(a, 1, 23));
  EXPECT_NE(network_fingerprint(a, 0, 23), network_fingerprint(a, 0, 22));
}

TEST(WarmStartCache, StoresFindsAndEvictsFifo) {
  WarmStartCache cache(2);
  auto make = [](std::uint64_t fingerprint) {
    auto recording = std::make_shared<MinCostWarmStart>();
    recording->fingerprint = fingerprint;
    return recording;
  };
  cache.store(make(1));
  cache.store(make(2));
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.find(1), nullptr);
  cache.store(make(3));  // evicts fingerprint 1 (oldest)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(1), nullptr);
  ASSERT_NE(cache.find(2), nullptr);
  ASSERT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.find(3)->fingerprint, 3u);
}

TEST(WarmStartCache, EvictionBoundaryRefreshesDoNotGrowOrEvict) {
  WarmStartCache cache(2);
  auto make = [](std::uint64_t fingerprint) {
    auto recording = std::make_shared<MinCostWarmStart>();
    recording->fingerprint = fingerprint;
    return recording;
  };
  cache.store(make(1));
  cache.store(make(2));  // exactly at capacity: nothing evicted yet
  ASSERT_NE(cache.find(1), nullptr);
  ASSERT_NE(cache.find(2), nullptr);

  // Refreshing an existing key at the boundary replaces the recording in
  // place — it must neither evict nor duplicate the FIFO slot.
  auto refreshed = make(1);
  refreshed->exhausted = true;
  cache.store(std::move(refreshed));
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_TRUE(cache.find(1)->exhausted);
  ASSERT_NE(cache.find(2), nullptr);

  // The refresh must not have consumed key 1's FIFO position: the next
  // insertion still evicts 1 (the oldest INSERTION), not 2.
  cache.store(make(3));
  EXPECT_EQ(cache.find(1), nullptr);
  ASSERT_NE(cache.find(2), nullptr);
  ASSERT_NE(cache.find(3), nullptr);
}

TEST(WarmStartCache, ZeroCapacityClampsToOneEntry) {
  WarmStartCache cache(0);
  auto recording = std::make_shared<MinCostWarmStart>();
  recording->fingerprint = 9;
  cache.store(std::move(recording));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(9), nullptr);
}

TEST(McfTeWarm, WarmAndColdEnginesProduceIdenticalAssignments) {
  // End-to-end: the warm-started engine must route every demand exactly
  // like the cold engine, across repeated solves that hit the cache.
  util::Rng topo_rng = util::Rng::stream(17, 0);
  const graph::Graph g = sim::waxman(16, topo_rng);
  util::Rng demand_rng = util::Rng::stream(17, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 3.0};
  gravity.sparsity = 0.85;
  const te::TrafficMatrix demands = sim::gravity_matrix(g, gravity,
                                                        demand_rng);

  te::McfTe::Options cold_options;
  cold_options.warm_start = false;
  const te::McfTe cold_engine(cold_options);
  const te::McfTe warm_engine;  // warm_start defaults on

  const auto cold = cold_engine.solve(g, demands);
  for (int round = 0; round < 3; ++round) {
    const auto warm = warm_engine.solve(g, demands);
    ASSERT_EQ(warm.total_routed.value, cold.total_routed.value);
    ASSERT_EQ(warm.edge_load_gbps, cold.edge_load_gbps);
    ASSERT_EQ(warm.routings.size(), cold.routings.size());
    for (std::size_t d = 0; d < warm.routings.size(); ++d) {
      ASSERT_EQ(warm.routings[d].paths.size(), cold.routings[d].paths.size());
      for (std::size_t p = 0; p < warm.routings[d].paths.size(); ++p) {
        EXPECT_EQ(warm.routings[d].paths[p].second.value,
                  cold.routings[d].paths[p].second.value);
        EXPECT_EQ(warm.routings[d].paths[p].first.edges,
                  cold.routings[d].paths[p].first.edges);
      }
    }
  }
}

}  // namespace
}  // namespace rwc::flow
