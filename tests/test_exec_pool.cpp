// Tests for the exec work-stealing pool and the deterministic parallel
// loop helpers (exec/thread_pool.hpp, exec/parallel.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"

namespace rwc::exec {
namespace {

TEST(ThreadPool, ZeroThreadsRunsSubmittedTasksInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // no workers: submit executes on the calling thread
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  // Destructor drains the queues; after scope exit all tasks ran.
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DrainsPendingTasksOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) pool.submit([&] { ++count; });
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, OnWorkerThreadIsVisibleOnlyInsideTasks) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> seen{false};
  std::atomic<bool> done{false};
  pool.submit([&] {
    seen = pool.on_worker_thread();
    done = true;
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_TRUE(seen.load());
}

TEST(ThreadPool, GlobalPoolIsCreatedOnce) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelMap, ResultsAreInIndexOrderAtEveryPoolSize) {
  const auto serial = [](std::size_t i) {
    return std::sin(static_cast<double>(i)) * 1e6;
  };
  ThreadPool serial_pool(0);
  const std::vector<double> expected = parallel_map(serial_pool, 1000, serial);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const std::vector<double> got = parallel_map(pool, 1000, serial);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], expected[i]) << "bitwise mismatch at " << i;
  }
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  // Indices 100 and 700 both throw; the serial loop would hit 100 first, so
  // the parallel run must surface exactly that one at any pool size.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    try {
      parallel_for(pool, 1000, [](std::size_t i) {
        if (i == 100) throw std::runtime_error("first");
        if (i == 700) throw std::runtime_error("second");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first");
    }
  }
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 8, [&](std::size_t) {
    // Re-entry from a worker: must run inline rather than blocking the
    // worker on its own pool.
    parallel_for(pool, 8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, RecordsTaskMetrics) {
  auto& tasks = obs::Registry::global().counter("exec.tasks");
  const std::uint64_t before = tasks.value();
  ThreadPool pool(2);
  parallel_for(pool, 64, [](std::size_t) {});
  EXPECT_GT(tasks.value(), before);
}

TEST(ChunkRange, PartitionsWithoutGapsOrOverlap) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (std::size_t pieces : {1u, 3u, 8u, 2000u}) {
      const auto chunks = detail::chunk_range(n, pieces);
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (const auto& [begin, end] : chunks) {
        ASSERT_EQ(begin, expected_begin);
        ASSERT_LT(begin, end);  // no empty chunks
        covered += end - begin;
        expected_begin = end;
      }
      ASSERT_EQ(covered, n);
      ASSERT_LE(chunks.size(), std::min(n, pieces));
    }
  }
}

}  // namespace
}  // namespace rwc::exec
