// Cross-cutting property sweeps: every combination of augmentation options
// (unit weights x gadget) with every penalty policy must preserve the core
// guarantees on random instances — full translation round-trip validity and
// at-least-static throughput.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/controller.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc::core {
namespace {

using util::Db;
using util::Gbps;

std::shared_ptr<const PenaltyPolicy> make_policy(int index) {
  switch (index) {
    case 0:
      return std::make_shared<ZeroPenalty>();
    case 1:
      return std::make_shared<FixedPenalty>(10.0);
    default:
      return std::make_shared<TrafficProportionalPenalty>();
  }
}

class CombinedOptionsSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(CombinedOptionsSweep, RoundTripInvariantsHold) {
  const auto [unit_weights, gadget, policy_index] = GetParam();

  util::Rng rng(static_cast<std::uint64_t>(policy_index) * 977 +
                (unit_weights ? 31 : 0) + (gadget ? 101 : 0));
  graph::Graph base = sim::waxman(8, rng);

  te::McfTe engine;
  ControllerOptions options;
  options.snr_margin = Db{0.5};
  options.augment.unit_weights = unit_weights;
  options.augment.unsplittable_gadget = gadget;
  options.penalty = make_policy(policy_index);
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine, options);

  sim::GravityParams gravity;
  gravity.total = Gbps{base.total_capacity().value};
  const te::TrafficMatrix demands = sim::gravity_matrix(base, gravity, rng);
  const auto static_routed =
      engine.solve(base, demands).total_routed.value;

  // Heterogeneous SNR: a mix of headroom, just-enough and degraded fibers.
  std::vector<Db> snr(base.edge_count());
  for (std::size_t e = 0; e < snr.size(); ++e)
    snr[e] = Db{rng.uniform(5.0, 20.0)};
  // Both directions of a fiber see the same SNR.
  for (std::size_t e = 0; e + 1 < snr.size(); e += 2) snr[e + 1] = snr[e];

  for (int round = 0; round < 3; ++round) {
    const auto report = controller.run_round(snr, demands);
    // 1. Physical assignment valid on the current topology.
    te::validate_assignment(controller.current_topology(),
                            report.plan.physical_assignment);
    // 2. Penalty accounting is non-negative and zero for ZeroPenalty.
    EXPECT_GE(report.total_penalty, -1e-9);
    if (policy_index == 0) {
      EXPECT_NEAR(report.total_penalty, 0.0, 1e-9);
    }
    // 3. Upgrade targets are ladder rates above the previous rate.
    for (const auto& change : report.plan.upgrades) {
      EXPECT_TRUE(controller.table().has_rate(change.to));
      EXPECT_GT(change.to, change.from);
      EXPECT_GT(change.upgrade_traffic.value, 0.0);
    }
  }

  // 4. With upgrades available, dynamic never routes less than static on
  // the degraded-but-upgradable topology (same SNR limits apply to both:
  // compare against the SNR-limited static capacities).
  graph::Graph snr_limited = base;
  for (graph::EdgeId e : base.edge_ids()) {
    const Gbps feasible = controller.table().feasible_capacity(
        snr[static_cast<std::size_t>(e.value)], Db{0.5});
    snr_limited.edge(e).capacity =
        std::min(base.edge(e).capacity, feasible);
  }
  const double limited_static =
      engine.solve(snr_limited, demands).total_routed.value;
  const auto final_report = controller.run_round(snr, demands);
  EXPECT_GE(final_report.total_routed.value, limited_static - 1e-5);
  (void)static_routed;
}

std::string combined_case_name(
    const ::testing::TestParamInfo<std::tuple<bool, bool, int>>& info) {
  static const char* policies[] = {"zero", "fixed", "traffic"};
  return std::string(std::get<0>(info.param) ? "unitw_" : "natw_") +
         (std::get<1>(info.param) ? "gadget_" : "plain_") +
         policies[std::get<2>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Options, CombinedOptionsSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Range(0, 3)),
    combined_case_name);

TEST(ControllerDeterminism, IdenticalRunsProduceIdenticalPlans) {
  const graph::Graph base = sim::abilene();
  te::McfTe engine;
  util::Rng rng(404);
  sim::GravityParams gravity;
  gravity.total = Gbps{2000.0};
  const auto demands = sim::gravity_matrix(base, gravity, rng);
  const std::vector<Db> snr(base.edge_count(), Db{15.0});

  auto run = [&]() {
    DynamicCapacityController controller(
        base, optical::ModulationTable::standard(), engine,
        ControllerOptions{});
    const auto report = controller.run_round(snr, demands);
    return std::pair{report.total_routed.value,
                     report.plan.upgrades.size()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace rwc::core
