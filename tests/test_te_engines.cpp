// Tests for the four TE engines: known-instance behaviour plus a
// parameterized property sweep (every engine must produce a valid,
// capacity-respecting assignment on random topologies and demands).
#include <gtest/gtest.h>

#include <memory>

#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/b4.hpp"
#include "te/cspf.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc::te {
namespace {

using util::Gbps;
using namespace util::literals;

std::vector<std::shared_ptr<TeAlgorithm>> all_engines() {
  return {std::make_shared<McfTe>(), std::make_shared<CspfTe>(),
          std::make_shared<SwanTe>(), std::make_shared<B4Te>()};
}

Demand demand(const graph::Graph& g, const std::string& src,
              const std::string& dst, Gbps volume, int priority = 0) {
  return Demand{*g.find_node(src), *g.find_node(dst), volume, priority};
}

TEST(Engines, Names) {
  EXPECT_EQ(McfTe{}.name(), "mcf");
  EXPECT_EQ(CspfTe{}.name(), "cspf");
  EXPECT_EQ(SwanTe{}.name(), "swan");
  EXPECT_EQ(B4Te{}.name(), "b4");
}

TEST(Engines, SingleDemandDirectLink) {
  graph::Graph g = sim::fig7_square();
  const TrafficMatrix demands = {demand(g, "A", "B", 80_Gbps)};
  for (const auto& engine : all_engines()) {
    const auto assignment = engine->solve(g, demands);
    EXPECT_NEAR(assignment.total_routed.value, 80.0, 1e-6)
        << engine->name();
    validate_assignment(g, assignment);
  }
}

TEST(Engines, SplitsAcrossPathsWhenDirectLinkFull) {
  // 150 G from A to B: 100 direct + 50 via A-C-D-B.
  graph::Graph g = sim::fig7_square();
  const TrafficMatrix demands = {demand(g, "A", "B", 150_Gbps)};
  for (const auto& engine : all_engines()) {
    const auto assignment = engine->solve(g, demands);
    EXPECT_NEAR(assignment.total_routed.value, 150.0, 1e-5)
        << engine->name();
    EXPECT_GE(assignment.routings[0].paths.size(), 2u) << engine->name();
    validate_assignment(g, assignment);
  }
}

TEST(Engines, RoutesNothingWhenDisconnected) {
  graph::Graph g;
  const auto a = g.add_node("A");
  g.add_node("B");
  (void)a;
  const TrafficMatrix demands = {
      Demand{graph::NodeId{0}, graph::NodeId{1}, 10_Gbps, 0}};
  for (const auto& engine : all_engines()) {
    const auto assignment = engine->solve(g, demands);
    EXPECT_EQ(assignment.total_routed, 0_Gbps) << engine->name();
  }
}

TEST(Engines, HighPriorityWinsContention) {
  // Two demands compete for the same 100 G bottleneck; the high-priority
  // one must get (nearly) everything it asked for.
  graph::Graph g = sim::fig7_square();
  // Restrict to a single bottleneck path: remove capacity elsewhere.
  for (graph::EdgeId e : g.edge_ids())
    if (g.edge(e).src != *g.find_node("A") &&
        g.edge(e).dst != *g.find_node("B"))
      g.edge(e).capacity = 0_Gbps;
  const TrafficMatrix demands = {
      demand(g, "A", "B", 80_Gbps, /*priority=*/0),
      demand(g, "A", "B", 80_Gbps, /*priority=*/5),
  };
  for (const auto& engine : all_engines()) {
    const auto assignment = engine->solve(g, demands);
    EXPECT_NEAR(assignment.routings[1].routed.value, 80.0, 1e-5)
        << engine->name();
    EXPECT_LE(assignment.routings[0].routed.value, 20.0 + 1e-5)
        << engine->name();
    validate_assignment(g, assignment);
  }
}

TEST(Engines, McfPrefersCheaperEdges) {
  // Equal-weight alternatives, one expensive: min-cost TE avoids it.
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  const auto ab = *g.find_edge(a, b);
  g.edge(ab).cost = 10.0;
  const TrafficMatrix demands = {demand(g, "A", "B", 50_Gbps)};
  const auto assignment = McfTe{}.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 50.0, 1e-6);
  EXPECT_NEAR(
      assignment.edge_load_gbps[static_cast<std::size_t>(ab.value)], 0.0,
      1e-6);
}

TEST(Engines, SwanLexicographicCostMinimization) {
  // SWAN must first max throughput, then choose the cheap 2-hop route over
  // the expensive direct one.
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  g.edge(*g.find_edge(a, b)).cost = 100.0;
  const TrafficMatrix demands = {demand(g, "A", "B", 60_Gbps)};
  const auto assignment = SwanTe{}.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 60.0, 1e-5);
  EXPECT_NEAR(assignment.total_cost, 0.0, 1e-3);
}

TEST(Engines, SwanMaxMinFairnessSharesBottleneck) {
  SwanTe::Options options;
  options.max_min_fairness = true;
  SwanTe fair(options);
  graph::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 90_Gbps);
  const TrafficMatrix demands = {
      Demand{a, b, 60_Gbps, 0},
      Demand{a, b, 60_Gbps, 0},
  };
  const auto assignment = fair.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 90.0, 1e-4);
  EXPECT_NEAR(assignment.routings[0].routed.value, 45.0, 1.0);
  EXPECT_NEAR(assignment.routings[1].routed.value, 45.0, 1.0);
}

TEST(Engines, B4ProgressiveFillingIsFair) {
  graph::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 90_Gbps);
  const TrafficMatrix demands = {
      Demand{a, b, 60_Gbps, 0},
      Demand{a, b, 60_Gbps, 0},
  };
  const auto assignment = B4Te{}.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 90.0, 1e-6);
  EXPECT_NEAR(assignment.routings[0].routed.value, 45.0, 1.5);
  EXPECT_NEAR(assignment.routings[1].routed.value, 45.0, 1.5);
}

TEST(Engines, CspfChunkingSplitsLargeDemand) {
  CspfTe chunked(25_Gbps);
  graph::Graph g = sim::fig7_square();
  const TrafficMatrix demands = {demand(g, "A", "B", 100_Gbps)};
  const auto assignment = chunked.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 100.0, 1e-6);
  EXPECT_GE(assignment.routings[0].paths.size(), 4u);
  validate_assignment(g, assignment);
}

TEST(Engines, ZeroVolumeDemandIsIgnored) {
  graph::Graph g = sim::fig7_square();
  const TrafficMatrix demands = {demand(g, "A", "B", 0_Gbps)};
  for (const auto& engine : all_engines()) {
    const auto assignment = engine->solve(g, demands);
    EXPECT_EQ(assignment.total_routed, 0_Gbps) << engine->name();
    EXPECT_TRUE(assignment.routings[0].paths.empty()) << engine->name();
  }
}

// ---- Property sweep over engines x random instances ----------------------

struct SweepCase {
  std::string engine;
  int seed;
};

class EngineRandomSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineRandomSweep, ValidAssignmentOnRandomInstance) {
  const auto [engine_index, seed] = GetParam();
  const auto engine = all_engines()[static_cast<std::size_t>(engine_index)];

  util::Rng rng(static_cast<std::uint64_t>(seed) * 101 + 7);
  graph::Graph g = sim::waxman(9, rng);
  for (graph::EdgeId e : g.edge_ids())
    g.edge(e).capacity = util::Gbps{rng.uniform(20.0, 120.0)};

  sim::GravityParams params;
  params.total = util::Gbps{rng.uniform(100.0, 600.0)};
  TrafficMatrix demands = sim::gravity_matrix(g, params, rng);
  // Mix in priorities.
  for (std::size_t i = 0; i < demands.size(); i += 3)
    demands[i].priority = 1;

  const auto assignment = engine->solve(g, demands);
  // Core safety property: never overload, never over-serve.
  validate_assignment(g, assignment);
  EXPECT_LE(assignment.total_routed.value,
            total_demand(demands).value + 1e-6);
  EXPECT_GT(assignment.total_routed.value, 0.0);
}

std::string sweep_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* names[] = {"mcf", "cspf", "swan", "b4"};
  return std::string(names[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    EnginesBySeed, EngineRandomSweep,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(1, 7)),
    sweep_case_name);

}  // namespace
}  // namespace rwc::te
