// Tests for summary statistics, percentiles, empirical CDFs, histograms and
// the highest-density-region estimator (the HDR drives Fig. 2a/2b).
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rwc::util {
namespace {

TEST(Summary, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, KnownValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.25), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 7.0);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(percentile_sorted({}, 0.5), CheckError);
  EXPECT_THROW(percentile_sorted(v, 1.5), CheckError);
}

TEST(Hdr, FullCoverageIsFullRange) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 9.0};
  const Interval hdr = highest_density_region(v, 1.0);
  EXPECT_DOUBLE_EQ(hdr.lo, 1.0);
  EXPECT_DOUBLE_EQ(hdr.hi, 9.0);
}

TEST(Hdr, FindsTheDenseCluster) {
  // 95 samples near 10, 5 outliers near 0: the 95% HDR must hug the cluster.
  std::vector<double> v;
  for (int i = 0; i < 95; ++i) v.push_back(10.0 + 0.01 * i);
  for (int i = 0; i < 5; ++i) v.push_back(0.1 * i);
  const Interval hdr = highest_density_region(v, 0.95);
  EXPECT_GE(hdr.lo, 9.9);
  EXPECT_LE(hdr.hi, 11.0);
  EXPECT_LT(hdr.width(), 1.0);
}

TEST(Hdr, WindowContainsRequestedMass) {
  Rng rng(8);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng.normal(0.0, 1.0));
  const Interval hdr = highest_density_region(v, 0.95);
  const auto inside = std::count_if(v.begin(), v.end(), [&](double x) {
    return x >= hdr.lo && x <= hdr.hi;
  });
  EXPECT_GE(static_cast<double>(inside) / v.size(), 0.95 - 1e-9);
}

TEST(Hdr, NarrowerThanCentralIntervalForSkewedData) {
  // For a heavily right-skewed sample the HDR should beat the naive
  // (2.5%, 97.5%) percentile interval.
  Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.lognormal(0.0, 1.0));
  const Interval hdr = highest_density_region(v, 0.95);
  std::sort(v.begin(), v.end());
  const double central =
      percentile_sorted(v, 0.975) - percentile_sorted(v, 0.025);
  EXPECT_LT(hdr.width(), central);
}

TEST(Hdr, SingleSample) {
  const std::vector<double> v = {3.0};
  const Interval hdr = highest_density_region(v, 0.95);
  EXPECT_DOUBLE_EQ(hdr.lo, 3.0);
  EXPECT_DOUBLE_EQ(hdr.hi, 3.0);
}

// Property sweep: HDR is never wider than the range and always contains the
// requested mass, across coverages and distributions.
class HdrSweep : public ::testing::TestWithParam<double> {};

TEST_P(HdrSweep, CoverageAndBoundedness) {
  const double coverage = GetParam();
  Rng rng(static_cast<std::uint64_t>(coverage * 1000));
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i)
    v.push_back(rng.bernoulli(0.8) ? rng.normal(5.0, 0.5)
                                   : rng.uniform(0.0, 20.0));
  const Summary s = summarize(v);
  const Interval hdr = highest_density_region(v, coverage);
  EXPECT_GE(hdr.lo, s.min);
  EXPECT_LE(hdr.hi, s.max);
  const auto inside = std::count_if(v.begin(), v.end(), [&](double x) {
    return x >= hdr.lo && x <= hdr.hi;
  });
  EXPECT_GE(static_cast<double>(inside) / v.size(), coverage - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Coverages, HdrSweep,
                         ::testing::Values(0.5, 0.75, 0.9, 0.95, 0.99, 1.0));

TEST(EmpiricalCdf, FractionsAndQuantilesAgree) {
  EmpiricalCdf cdf({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 4.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 4.0);
}

TEST(EmpiricalCdf, IsMonotone) {
  Rng rng(123);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal(0.0, 2.0));
  EmpiricalCdf cdf(v);
  double previous = -1.0;
  for (double x = -8.0; x <= 8.0; x += 0.25) {
    const double f = cdf.fraction_at_or_below(x);
    EXPECT_GE(f, previous);
    previous = f;
  }
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-100.0); // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

}  // namespace
}  // namespace rwc::util
