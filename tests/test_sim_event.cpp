// Tests for the discrete-event queue.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hpp"
#include "util/check.hpp"

namespace rwc::sim {
namespace {

TEST(EventQueue, ProcessesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&](util::Seconds) { order.push_back(3); });
  queue.schedule(1.0, [&](util::Seconds) { order.push_back(1); });
  queue.schedule(2.0, [&](util::Seconds) { order.push_back(2); });
  EXPECT_EQ(queue.run_until(10.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 10.0);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    queue.schedule(1.0, [&order, i](util::Seconds) { order.push_back(i); });
  queue.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonIsInclusive) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(5.0, [&](util::Seconds) { ++fired; });
  queue.schedule(5.0001, [&](util::Seconds) { ++fired; });
  queue.run_until(5.0);
  EXPECT_EQ(fired, 1);
  queue.run_until(6.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbacksSeeEventTime) {
  EventQueue queue;
  util::Seconds seen = -1.0;
  queue.schedule(7.5, [&](util::Seconds now) { seen = now; });
  queue.run_until(100.0);
  EXPECT_EQ(seen, 7.5);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int chain = 0;
  std::function<void(util::Seconds)> step = [&](util::Seconds) {
    if (++chain < 5) queue.schedule_in(1.0, step);
  };
  queue.schedule(0.0, step);
  queue.run_until(10.0);
  EXPECT_EQ(chain, 5);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ScheduleInPastThrows) {
  EventQueue queue;
  queue.schedule(1.0, [](util::Seconds) {});
  queue.run_until(5.0);
  EXPECT_THROW(queue.schedule(4.0, [](util::Seconds) {}), util::CheckError);
  EXPECT_THROW(queue.schedule_in(-1.0, [](util::Seconds) {}),
               util::CheckError);
}

TEST(EventQueue, RunUntilLeavesFutureEventsQueued) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&](util::Seconds) { ++fired; });
  queue.schedule(9.0, [&](util::Seconds) { ++fired; });
  queue.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(queue.empty());
}

}  // namespace
}  // namespace rwc::sim
