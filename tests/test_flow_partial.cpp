// Partial repair of warm-started min-cost flow (docs/SOLVERS.md): a solve
// whose network matches a recording structurally but not exactly (dirty
// residuals) replays the recorded augmenting paths under support
// verification. Every outcome — verified repair, rollback to cold,
// escalation on a too-dirty network — must be bit-identical to a cold
// solve on the perturbed network, including the final residuals.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "flow/mincost.hpp"
#include "flow/network.hpp"
#include "graph/graph.hpp"
#include "obs/registry.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc::flow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

/// Two disjoint 0 -> 3 routes — 0-1-3 (cheap) and 0-2-3 (pricier) — plus a
/// 1 -> 2 decoy arc no min-cost path ever uses. Arc pair indices: 0/1 =
/// 0->1, 2/3 = 1->3, 4/5 = 0->2, 6/7 = 2->3, 8/9 = decoy.
ResidualNetwork diamond(double cap01 = 10.0, double decoy_cap = 10.0) {
  ResidualNetwork net(4);
  net.add_arc(0, 1, cap01, 1.0);
  net.add_arc(1, 3, 10.0, 1.0);
  net.add_arc(0, 2, 10.0, 2.0);
  net.add_arc(2, 3, 10.0, 2.0);
  net.add_arc(1, 2, decoy_cap, 100.0);
  return net;
}

/// Same structure as `base` would have, with selected arcs' initial
/// residuals overwritten — the dirty-link perturbation.
ResidualNetwork perturb(ResidualNetwork net,
                        const std::vector<std::pair<int, double>>& changes) {
  std::vector<double> residuals = net.residuals();
  for (const auto& [arc, value] : changes)
    residuals[static_cast<std::size_t>(arc)] = value;
  net.restore_residuals(std::move(residuals));
  return net;
}

std::vector<double> arc_flows(const ResidualNetwork& net) {
  std::vector<double> flows;
  for (int arc = 0; arc < static_cast<int>(net.arc_count()); arc += 2)
    flows.push_back(net.flow(arc));
  return flows;
}

void expect_bit_identical(const ResidualNetwork& a, const ResidualNetwork& b,
                          const MinCostFlowResult& ra,
                          const MinCostFlowResult& rb) {
  EXPECT_EQ(ra.flow, rb.flow);
  EXPECT_EQ(ra.cost, rb.cost);
  EXPECT_EQ(ra.status, rb.status);
  ASSERT_EQ(a.arc_count(), b.arc_count());
  EXPECT_EQ(a.residuals(), b.residuals());  // full state, not just flows
  EXPECT_EQ(arc_flows(a), arc_flows(b));
}

TEST(MinCostPartial, StructuralFingerprintIgnoresResidualsOnly) {
  const ResidualNetwork a = diamond(10.0);
  const ResidualNetwork b = diamond(8.0);  // same structure, dirty capacity
  const auto fa = network_fingerprints(a, 0, 3);
  const auto fb = network_fingerprints(b, 0, 3);
  EXPECT_EQ(fa.structural, fb.structural);
  EXPECT_NE(fa.exact, fb.exact);
  EXPECT_EQ(fa.exact, network_fingerprint(a, 0, 3));

  // Costs, structure and terminals all break the structural match.
  ResidualNetwork costs(4);
  costs.add_arc(0, 1, 10.0, 1.5);
  costs.add_arc(1, 3, 10.0, 1.0);
  costs.add_arc(0, 2, 10.0, 2.0);
  costs.add_arc(2, 3, 10.0, 2.0);
  costs.add_arc(1, 2, 10.0, 100.0);
  EXPECT_NE(network_fingerprints(costs, 0, 3).structural, fa.structural);
  EXPECT_NE(network_fingerprints(a, 0, 2).structural, fa.structural);
}

TEST(MinCostPartial, RepairOfUntouchedDirtyArcMatchesColdBitwise) {
  // The decoy arc is dirty but never on an augmenting path: support stays
  // equal throughout, so the repair replays to a verified-optimal end.
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, kInf, &warm);
  ASSERT_TRUE(warm.exhausted);
  ASSERT_TRUE(warm.repairable());

  ResidualNetwork cold_net = perturb(diamond(), {{8, 7.0}});
  const auto cold = min_cost_max_flow(cold_net, 0, 3);

  const std::uint64_t repairs_before = counter_value("solver.partial_repairs");
  ResidualNetwork repair_net = perturb(diamond(), {{8, 7.0}});
  const auto repaired = min_cost_max_flow(repair_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, repair_net, cold, repaired);
  EXPECT_EQ(counter_value("solver.partial_repairs"), repairs_before + 1);
  // The recording was rewritten against the perturbed network and stays
  // verified-complete: a replay on the same perturbed network is exact.
  const ResidualNetwork fresh = perturb(diamond(), {{8, 7.0}});
  EXPECT_EQ(warm.fingerprint, network_fingerprint(fresh, 0, 3));
  EXPECT_TRUE(warm.exhausted);
  ResidualNetwork replay_net = perturb(diamond(), {{8, 7.0}});
  const auto replayed = min_cost_max_flow(replay_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, replay_net, cold, replayed);
}

TEST(MinCostPartial, RepairWithDivergentBottleneckMatchesColdBitwise) {
  // Shrinking both arcs of the 0->2->3 path equally leaves every support
  // decision identical while the last augmentation's bottleneck shrinks
  // from 10 to 9: a genuine repair with a divergent amount, and the final
  // saturation pattern still matches the recorded one, so exhaustion
  // verifies without a live Dijkstra.
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, kInf, &warm);

  ResidualNetwork cold_net = perturb(diamond(), {{4, 9.0}, {6, 9.0}});
  const auto cold = min_cost_max_flow(cold_net, 0, 3);

  const std::uint64_t repairs_before = counter_value("solver.partial_repairs");
  ResidualNetwork repair_net = perturb(diamond(), {{4, 9.0}, {6, 9.0}});
  const auto repaired = min_cost_max_flow(repair_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, repair_net, cold, repaired);
  EXPECT_EQ(counter_value("solver.partial_repairs"), repairs_before + 1);
  // Rewritten in place: new fingerprint, live (9.0) bottleneck, exhaustion
  // verified — an exact replay on the perturbed network follows.
  const ResidualNetwork fresh = perturb(diamond(), {{4, 9.0}, {6, 9.0}});
  EXPECT_EQ(warm.fingerprint, network_fingerprint(fresh, 0, 3));
  EXPECT_TRUE(warm.exhausted);
  ResidualNetwork replay_net = perturb(diamond(), {{4, 9.0}, {6, 9.0}});
  const auto replayed = min_cost_max_flow(replay_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, replay_net, cold, replayed);
}

TEST(MinCostPartial, AsymmetricShrinkRollsBackConservatively) {
  // Shrinking only 0->2 leaves a one-unit sliver on 2->3 after the replay,
  // flipping that arc's support versus the recorded (saturated) pattern.
  // The exhaustion check cannot prove optimality from support alone, so
  // the repair rolls back and solves cold — still bit-identical.
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, kInf, &warm);

  ResidualNetwork cold_net = perturb(diamond(), {{4, 9.0}});
  const auto cold = min_cost_max_flow(cold_net, 0, 3);

  const std::uint64_t rollbacks_before =
      counter_value("solver.partial_rollbacks");
  ResidualNetwork repair_net = perturb(diamond(), {{4, 9.0}});
  const auto repaired = min_cost_max_flow(repair_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, repair_net, cold, repaired);
  EXPECT_EQ(counter_value("solver.partial_rollbacks"), rollbacks_before + 1);
}

TEST(MinCostPartial, SaturatedDirtyLinkRollsBackToColdBitwise) {
  // The dirty link drops to zero capacity: its support flips, the
  // before-path verification fails, and the solver must roll the residuals
  // back and solve cold — still bit-identical to a never-warm cold solve.
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, kInf, &warm);

  ResidualNetwork cold_net = perturb(diamond(), {{0, 0.0}});
  const auto cold = min_cost_max_flow(cold_net, 0, 3);

  const std::uint64_t rollbacks_before =
      counter_value("solver.partial_rollbacks");
  ResidualNetwork repair_net = perturb(diamond(), {{0, 0.0}});
  const auto result = min_cost_max_flow(repair_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, repair_net, cold, result);
  EXPECT_EQ(counter_value("solver.partial_rollbacks"), rollbacks_before + 1);
  // The rollback re-recorded the perturbed network; it replays exactly.
  const ResidualNetwork fresh = perturb(diamond(), {{0, 0.0}});
  EXPECT_EQ(warm.fingerprint, network_fingerprint(fresh, 0, 3));
}

TEST(MinCostPartial, FullyDirtyNetworkEscalatesToColdSolve) {
  // Every link dirty (100% of forward arcs, beyond kMaxRepairDirtyFraction
  // of all arcs): the repair tier must escalate to a full solve without
  // attempting a replay.
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, kInf, &warm);

  const std::vector<std::pair<int, double>> everything{
      {0, 11.0}, {2, 12.0}, {4, 13.0}, {6, 14.0}, {8, 15.0}};
  ResidualNetwork cold_net = perturb(diamond(), everything);
  const auto cold = min_cost_max_flow(cold_net, 0, 3);

  const std::uint64_t repairs_before = counter_value("solver.partial_repairs");
  const std::uint64_t rollbacks_before =
      counter_value("solver.partial_rollbacks");
  const std::uint64_t misses_before = counter_value("solver.warm_misses");
  ResidualNetwork escalate_net = perturb(diamond(), everything);
  const auto result = min_cost_max_flow(escalate_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, escalate_net, cold, result);
  EXPECT_EQ(counter_value("solver.partial_repairs"), repairs_before);
  EXPECT_EQ(counter_value("solver.partial_rollbacks"), rollbacks_before);
  EXPECT_EQ(counter_value("solver.warm_misses"), misses_before + 1);
}

TEST(MinCostPartial, RepairHonorsFlowLimitAndKeepsRecordingIntact) {
  // A flow limit that binds mid-replay: the repair truncates exactly where
  // a cold limited solve would, and leaves the recording describing the
  // ORIGINAL network (the caller must not store it for the perturbed one).
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, kInf, &warm);
  const std::uint64_t recorded_fingerprint = warm.fingerprint;

  for (double limit : {2.5, 10.0, 12.0}) {
    ResidualNetwork cold_net = perturb(diamond(), {{8, 6.0}});
    const auto cold = min_cost_max_flow(cold_net, 0, 3, limit);

    ResidualNetwork repair_net = perturb(diamond(), {{8, 6.0}});
    MinCostWarmStart repair_warm = warm;  // keep the original intact
    const auto repaired =
        min_cost_max_flow(repair_net, 0, 3, limit, &repair_warm);
    expect_bit_identical(cold_net, repair_net, cold, repaired);
    EXPECT_EQ(repaired.status, SolveStatus::kFlowLimitReached);
    EXPECT_EQ(repair_warm.fingerprint, recorded_fingerprint);
  }
}

TEST(MinCostPartial, RepairOfTruncatedRecordingResumesLiveSsp) {
  // Record WITH a limit (recording not exhausted), then repair on a dirty
  // network asking for everything: replay the prefix, then resume live
  // SSP from the recorded potentials — bit-identical to cold throughout.
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, 10.0, &warm);
  ASSERT_FALSE(warm.exhausted);

  ResidualNetwork cold_net = perturb(diamond(), {{8, 4.0}});
  const auto cold = min_cost_max_flow(cold_net, 0, 3);

  const std::uint64_t repairs_before = counter_value("solver.partial_repairs");
  ResidualNetwork repair_net = perturb(diamond(), {{8, 4.0}});
  const auto repaired = min_cost_max_flow(repair_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, repair_net, cold, repaired);
  EXPECT_EQ(counter_value("solver.partial_repairs"), repairs_before + 1);
  // The resumed solve extended the recording to completion for the
  // perturbed network.
  EXPECT_TRUE(warm.exhausted);
  const ResidualNetwork fresh = perturb(diamond(), {{8, 4.0}});
  EXPECT_EQ(warm.fingerprint, network_fingerprint(fresh, 0, 3));
}

TEST(MinCostPartial, RecordingWithoutRepairDataRunsCold) {
  // A recording stripped of its repair fields — exactly what a
  // checkpoint-restored recording looks like (docs/REPLAY.md) — must never
  // feed the repair path: structural match or not, the solve runs cold.
  ResidualNetwork record_net = diamond();
  MinCostWarmStart warm;
  min_cost_max_flow(record_net, 0, 3, kInf, &warm);
  warm.struct_fingerprint = 0;
  warm.initial_residuals.clear();
  ASSERT_FALSE(warm.repairable());

  ResidualNetwork cold_net = perturb(diamond(), {{8, 7.0}});
  const auto cold = min_cost_max_flow(cold_net, 0, 3);

  const std::uint64_t repairs_before = counter_value("solver.partial_repairs");
  const std::uint64_t misses_before = counter_value("solver.warm_misses");
  ResidualNetwork miss_net = perturb(diamond(), {{8, 7.0}});
  const auto result = min_cost_max_flow(miss_net, 0, 3, kInf, &warm);
  expect_bit_identical(cold_net, miss_net, cold, result);
  EXPECT_EQ(counter_value("solver.partial_repairs"), repairs_before);
  EXPECT_EQ(counter_value("solver.warm_misses"), misses_before + 1);
  // The cold re-record regains repair eligibility for future rounds.
  EXPECT_TRUE(warm.repairable());
}

TEST(WarmStartCacheStructural, IndexFindsLatestAndFollowsEviction) {
  WarmStartCache cache(2);
  auto make = [](std::uint64_t exact, std::uint64_t structural) {
    auto recording = std::make_shared<MinCostWarmStart>();
    recording->fingerprint = exact;
    recording->struct_fingerprint = structural;
    recording->initial_residuals = {1.0};
    return recording;
  };
  cache.store(make(1, 100));
  ASSERT_NE(cache.find_structural(100), nullptr);
  EXPECT_EQ(cache.find_structural(100)->fingerprint, 1u);

  // A newer recording with the same structure wins the index.
  cache.store(make(2, 100));
  EXPECT_EQ(cache.find_structural(100)->fingerprint, 2u);

  // FIFO eviction of a recording removes its structural entry.
  cache.store(make(3, 300));
  cache.store(make(4, 400));  // evicts exact=1 then exact=2
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_EQ(cache.find_structural(100), nullptr);
  ASSERT_NE(cache.find_structural(300), nullptr);
  ASSERT_NE(cache.find_structural(400), nullptr);
}

TEST(WarmStartCacheStructural, NonRepairableRecordingsAreNotIndexed) {
  WarmStartCache cache(4);
  auto recording = std::make_shared<MinCostWarmStart>();
  recording->fingerprint = 7;
  recording->struct_fingerprint = 700;
  // No initial_residuals: restored-from-checkpoint shape.
  cache.store(std::move(recording));
  EXPECT_NE(cache.find(7), nullptr);
  EXPECT_EQ(cache.find_structural(700), nullptr);
}

TEST(McfTePartial, PerturbedRoundMatchesColdEngineExactly) {
  // End-to-end through the TE engine: after a round on the base graph, a
  // round on a one-edge-perturbed graph takes the structural-repair path
  // and must route every demand exactly like an engine with the partial
  // tier disabled (which itself matches a cold engine).
  util::Rng topo_rng = util::Rng::stream(23, 0);
  const graph::Graph base = sim::waxman(16, topo_rng);
  util::Rng demand_rng = util::Rng::stream(23, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{base.total_capacity().value / 3.0};
  gravity.sparsity = 0.85;
  const te::TrafficMatrix demands =
      sim::gravity_matrix(base, gravity, demand_rng);

  graph::Graph perturbed;
  for (graph::NodeId node : base.node_ids())
    perturbed.add_node(base.node_name(node));
  for (graph::EdgeId edge : base.edge_ids()) {
    const graph::Edge& e = base.edge(edge);
    const util::Gbps capacity =
        edge.value == 0 ? util::Gbps{e.capacity.value * 0.75} : e.capacity;
    perturbed.add_edge(e.src, e.dst, capacity, e.cost, e.weight);
  }

  te::McfTe::Options no_partial;
  no_partial.partial_repair = false;
  const te::McfTe plain_engine(no_partial);
  const te::McfTe partial_engine;  // partial_repair defaults on

  // Round 1 (identical graphs) seeds both engines' caches.
  (void)plain_engine.solve(base, demands);
  (void)partial_engine.solve(base, demands);

  const std::uint64_t activity_before =
      counter_value("solver.partial_repairs") +
      counter_value("solver.partial_rollbacks");
  const auto plain = plain_engine.solve(perturbed, demands);
  const auto partial = partial_engine.solve(perturbed, demands);
  // The perturbed first-demand network is a 1-arc dirty diff against the
  // cached recording, so the partial tier must have engaged.
  EXPECT_GT(counter_value("solver.partial_repairs") +
                counter_value("solver.partial_rollbacks"),
            activity_before);

  ASSERT_EQ(partial.total_routed.value, plain.total_routed.value);
  ASSERT_EQ(partial.edge_load_gbps, plain.edge_load_gbps);
  ASSERT_EQ(partial.routings.size(), plain.routings.size());
  for (std::size_t d = 0; d < partial.routings.size(); ++d) {
    ASSERT_EQ(partial.routings[d].paths.size(),
              plain.routings[d].paths.size());
    for (std::size_t p = 0; p < partial.routings[d].paths.size(); ++p) {
      EXPECT_EQ(partial.routings[d].paths[p].second.value,
                plain.routings[d].paths[p].second.value);
      EXPECT_EQ(partial.routings[d].paths[p].first.edges,
                plain.routings[d].paths[p].first.edges);
    }
  }
}

}  // namespace
}  // namespace rwc::flow
