// Tests for min-cost max-flow (SSP), the cycle-cancelling cross-check and
// flow decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/cycle_cancel.hpp"
#include "flow/decompose.hpp"
#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/mincost.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace rwc::flow {
namespace {

TEST(MinCostFlow, PrefersCheapPath) {
  // Two parallel routes, the cheaper has limited capacity.
  ResidualNetwork net(4);
  const int cheap1 = net.add_arc(0, 1, 5.0, 1.0);
  net.add_arc(1, 3, 5.0, 1.0);
  const int costly1 = net.add_arc(0, 2, 10.0, 5.0);
  net.add_arc(2, 3, 10.0, 5.0);
  const auto result = min_cost_max_flow(net, 0, 3);
  EXPECT_DOUBLE_EQ(result.flow, 15.0);
  // 5 units at cost 2 each + 10 units at cost 10 each.
  EXPECT_DOUBLE_EQ(result.cost, 110.0);
  EXPECT_DOUBLE_EQ(net.flow(cheap1), 5.0);
  EXPECT_DOUBLE_EQ(net.flow(costly1), 10.0);
}

TEST(MinCostFlow, FlowLimitStopsEarly) {
  ResidualNetwork net(2);
  net.add_arc(0, 1, 10.0, 3.0);
  const auto result = min_cost_max_flow(net, 0, 1, 4.0);
  EXPECT_DOUBLE_EQ(result.flow, 4.0);
  EXPECT_DOUBLE_EQ(result.cost, 12.0);
}

TEST(MinCostFlow, CostMatchesNetworkTotalCost) {
  ResidualNetwork net(4);
  net.add_arc(0, 1, 3.0, 2.0);
  net.add_arc(1, 3, 3.0, 1.0);
  net.add_arc(0, 2, 4.0, 1.0);
  net.add_arc(2, 3, 4.0, 4.0);
  const auto result = min_cost_max_flow(net, 0, 3);
  EXPECT_NEAR(result.cost, net.total_cost(), 1e-9);
}

TEST(MinCostFlow, HandlesNegativeCostArcs) {
  // A negative arc on the longer route makes it cheaper overall.
  ResidualNetwork net(4);
  net.add_arc(0, 1, 5.0, 4.0);
  net.add_arc(1, 3, 5.0, 0.0);
  net.add_arc(0, 2, 5.0, 6.0);
  net.add_arc(2, 3, 5.0, -4.0);
  const auto result = min_cost_max_flow(net, 0, 3);
  EXPECT_DOUBLE_EQ(result.flow, 10.0);
  EXPECT_DOUBLE_EQ(result.cost, 5.0 * 4.0 + 5.0 * 2.0);
}

TEST(MinCostFlow, ResultHasNoNegativeResidualCycle) {
  util::Rng rng(7);
  graph::Graph g = sim::waxman(12, rng);
  for (graph::EdgeId e : g.edge_ids()) {
    g.edge(e).capacity = util::Gbps{rng.uniform(1.0, 10.0)};
    g.edge(e).cost = rng.uniform(0.0, 5.0);
  }
  auto view = make_network(g);
  min_cost_max_flow(view.net, 0, 11);
  EXPECT_FALSE(find_negative_cycle(view.net).has_value());
}

class MinCostCrossCheckSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinCostCrossCheckSweep, SspMatchesCycleCancelling) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 3);
  graph::Graph g = sim::waxman(10, rng);
  for (graph::EdgeId e : g.edge_ids()) {
    g.edge(e).capacity = util::Gbps{std::floor(rng.uniform(1.0, 10.0))};
    g.edge(e).cost = std::floor(rng.uniform(0.0, 6.0));
  }
  auto ssp_view = make_network(g);
  auto cc_view = make_network(g);
  const auto ssp = min_cost_max_flow(ssp_view.net, 0, 9);
  const double cc_flow = min_cost_max_flow_by_cancelling(cc_view.net, 0, 9);
  EXPECT_NEAR(ssp.flow, cc_flow, 1e-6);
  EXPECT_NEAR(ssp.cost, cc_view.net.total_cost(), 1e-6);
  EXPECT_FALSE(find_negative_cycle(ssp_view.net).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCostCrossCheckSweep,
                         ::testing::Range(1, 16));

TEST(CycleCancel, FindsAndCancelsANegativeCycle) {
  // Build a circulation with a negative cycle by saturating a costly path
  // that a negative-cost back-route undercuts.
  ResidualNetwork net(3);
  const int a = net.add_arc(0, 1, 5.0, 5.0);
  const int b = net.add_arc(1, 2, 5.0, 5.0);
  const int c = net.add_arc(2, 0, 5.0, -20.0);
  net.push(a, 0.0);  // no flow yet: residual cycle 0->1->2->0 costs -10
  EXPECT_TRUE(find_negative_cycle(net).has_value());
  const double saved = cancel_negative_cycles(net);
  EXPECT_NEAR(saved, 50.0, 1e-9);  // 5 units around the cycle at gain 10
  EXPECT_FALSE(find_negative_cycle(net).has_value());
  EXPECT_DOUBLE_EQ(net.flow(a), 5.0);
  EXPECT_DOUBLE_EQ(net.flow(b), 5.0);
  EXPECT_DOUBLE_EQ(net.flow(c), 5.0);
}

TEST(Decompose, SplitsFlowIntoValidPaths) {
  ResidualNetwork net(4);
  net.add_arc(0, 1, 3.0);
  net.add_arc(1, 3, 3.0);
  net.add_arc(0, 2, 4.0);
  net.add_arc(2, 3, 4.0);
  const double flow = max_flow_dinic(net, 0, 3);
  const auto decomposition = decompose_flow(net, 0, 3);
  double total = 0.0;
  for (const PathFlow& pf : decomposition.paths) {
    EXPECT_FALSE(pf.arcs.empty());
    EXPECT_EQ(net.source(pf.arcs.front()), 0);
    EXPECT_EQ(net.target(pf.arcs.back()), 3);
    for (std::size_t i = 0; i + 1 < pf.arcs.size(); ++i)
      EXPECT_EQ(net.target(pf.arcs[i]), net.source(pf.arcs[i + 1]));
    total += pf.amount;
  }
  EXPECT_NEAR(total, flow, 1e-9);
  EXPECT_DOUBLE_EQ(decomposition.cancelled_cycle_flow, 0.0);
}

TEST(Decompose, CancelsCirculations) {
  // An s-t path plus a detached cycle of flow.
  ResidualNetwork net(5);
  const int st = net.add_arc(0, 4, 2.0);
  const int c1 = net.add_arc(1, 2, 1.0);
  const int c2 = net.add_arc(2, 3, 1.0);
  const int c3 = net.add_arc(3, 1, 1.0);
  net.push(st, 2.0);
  net.push(c1, 1.0);
  net.push(c2, 1.0);
  net.push(c3, 1.0);
  const auto decomposition = decompose_flow(net, 0, 4);
  ASSERT_EQ(decomposition.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(decomposition.paths[0].amount, 2.0);
  // The detached cycle is simply not part of any s-t walk, so it must not
  // appear in the paths.
}

TEST(Decompose, HandlesCycleTouchingThePath) {
  // s -> a -> t with a cycle a -> b -> a superimposed. The cycle arcs are
  // inserted before the exit arc so the walk necessarily runs into them.
  ResidualNetwork net(4);
  const int sa = net.add_arc(0, 1, 5.0);
  const int ab = net.add_arc(1, 2, 1.0);
  const int ba = net.add_arc(2, 1, 1.0);
  const int at = net.add_arc(1, 3, 5.0);
  net.push(sa, 3.0);
  net.push(at, 3.0);
  net.push(ab, 1.0);
  net.push(ba, 1.0);
  const auto decomposition = decompose_flow(net, 0, 3);
  double total = 0.0;
  for (const PathFlow& pf : decomposition.paths) total += pf.amount;
  EXPECT_NEAR(total, 3.0, 1e-9);
  EXPECT_NEAR(decomposition.cancelled_cycle_flow, 1.0, 1e-9);
}

}  // namespace
}  // namespace rwc::flow
