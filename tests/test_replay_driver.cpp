// ReplayDriver contract tests: the streaming driver reproduces the
// WanSimulator's analytic dynamic-policy run bit-for-bit, and a kill at
// any checkpoint followed by restore-then-continue is bit-identical to the
// uninterrupted run — at pool sizes 1/2/8, with warm or cold caches, for
// both built-in engine families (ISSUE 4 acceptance).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "prop/invariants.hpp"
#include "replay/checkpoint.hpp"
#include "replay/driver.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using replay::Checkpoint;
using replay::CheckpointStore;
using replay::Error;
using replay::ReplayConfig;
using replay::ReplayDriver;

struct Fixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
};

/// Mid-load WAN fixture shared by every test in this file.
Fixture make_fixture(std::uint64_t seed, int nodes = 10) {
  util::Rng topo_rng = util::Rng::stream(seed, 0);
  Fixture f{sim::waxman(nodes, topo_rng), {}};
  util::Rng demand_rng = util::Rng::stream(seed, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{f.topology.total_capacity().value * 0.4};
  f.demands = sim::gravity_matrix(f.topology, gravity, demand_rng);
  return f;
}

ReplayConfig small_config(std::uint64_t rounds, std::uint64_t chunk_rounds) {
  ReplayConfig config;
  config.rounds = rounds;
  config.seed = 7;
  config.chunk_rounds = chunk_rounds;
  return config;
}

void expect_metrics_equal(const sim::SimulationMetrics& a,
                          const sim::SimulationMetrics& b,
                          const std::string& context) {
  EXPECT_EQ(a.offered_gbps_hours, b.offered_gbps_hours) << context;
  EXPECT_EQ(a.delivered_gbps_hours, b.delivered_gbps_hours) << context;
  EXPECT_EQ(a.availability, b.availability) << context;
  EXPECT_EQ(a.link_failures, b.link_failures) << context;
  EXPECT_EQ(a.link_flaps, b.link_flaps) << context;
  EXPECT_EQ(a.upgrades, b.upgrades) << context;
  EXPECT_EQ(a.restorations, b.restorations) << context;
  EXPECT_EQ(a.lock_failures, b.lock_failures) << context;
  EXPECT_EQ(a.reconfig_downtime_hours, b.reconfig_downtime_hours) << context;
  EXPECT_EQ(a.te_rounds, b.te_rounds) << context;
}

/// Uninterrupted reference: per-round signatures, final chain and metrics.
struct Reference {
  std::vector<prop::RoundSignature> signatures;
  std::uint64_t chain = 0;
  sim::SimulationMetrics metrics;
};

Reference reference_run(const Fixture& f, const te::TeAlgorithm& engine,
                        const ReplayConfig& config) {
  Reference ref;
  ReplayDriver driver(f.topology, engine, f.demands, config);
  while (!driver.done())
    ref.signatures.push_back(prop::signature_of(driver.step()));
  ref.chain = driver.signature_chain();
  ref.metrics = driver.metrics();
  return ref;
}

/// Drives to every checkpoint round in `kill_rounds`, captures, then
/// restores each capture into a FRESH driver and proves the continuation
/// matches the reference tail bit-for-bit.
void check_kill_restore(const Fixture& f, const te::TeAlgorithm& engine,
                        const ReplayConfig& config, const Reference& ref,
                        std::initializer_list<std::uint64_t> kill_rounds,
                        const std::string& context) {
  ReplayDriver source(f.topology, engine, f.demands, config);
  std::vector<Checkpoint> checkpoints;
  std::vector<std::uint64_t> kills(kill_rounds);
  std::size_t next_kill = 0;
  while (!source.done()) {
    if (next_kill < kills.size() && source.round() == kills[next_kill]) {
      checkpoints.push_back(source.checkpoint());
      ++next_kill;
    }
    source.step();
  }
  ASSERT_EQ(checkpoints.size(), kills.size()) << context;

  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    const std::string at = context + ", killed at round " +
                           std::to_string(kills[k]);
    ReplayDriver resumed(f.topology, engine, f.demands, config);
    ASSERT_EQ(resumed.restore(checkpoints[k]), Error::kNone) << at;
    ASSERT_EQ(resumed.round(), kills[k]) << at;
    for (std::uint64_t r = kills[k]; r < config.rounds; ++r) {
      const prop::InvariantResult check = prop::check_signatures_equal(
          ref.signatures[r], prop::signature_of(resumed.step()),
          at + ", round " + std::to_string(r));
      ASSERT_TRUE(check.ok) << check.detail;
    }
    EXPECT_EQ(resumed.signature_chain(), ref.chain) << at;
    expect_metrics_equal(ref.metrics, resumed.metrics(), at);
  }
}

TEST(ReplayDriver, MatchesWanSimulatorBitForBit) {
  const Fixture f = make_fixture(20170701);
  const te::McfTe engine;
  const ReplayConfig config = small_config(/*rounds=*/16, /*chunk_rounds=*/256);

  ReplayDriver driver(f.topology, engine, f.demands, config);
  const sim::SimulationMetrics streamed = driver.run();

  sim::SimulationConfig sim_config;
  sim_config.horizon = static_cast<double>(config.rounds) * config.te_interval;
  sim_config.te_interval = config.te_interval;
  sim_config.snr_margin = config.snr_margin;
  sim_config.policy = sim::CapacityPolicy::kDynamic;
  sim_config.diurnal = config.diurnal;
  sim_config.snr_model = config.snr_model;
  sim_config.latency = config.latency;
  sim_config.seed = config.seed;
  sim::WanSimulator simulator(f.topology, engine, sim_config);
  const sim::SimulationMetrics reference = simulator.run(f.demands);

  expect_metrics_equal(reference, streamed, "driver vs WanSimulator");
  EXPECT_EQ(streamed.te_rounds, config.rounds);
}

TEST(ReplayDriver, KillRestoreBitIdenticalAcrossPoolSizes) {
  const Fixture f = make_fixture(20170701, /*nodes=*/8);
  const te::McfTe engine;
  // chunk_rounds 8 < rounds forces refills, so kills land both on and off
  // chunk boundaries (6 mid-chunk, 8 on a boundary, 18 mid-chunk again).
  ReplayConfig config = small_config(/*rounds=*/24, /*chunk_rounds=*/8);

  exec::ThreadPool serial(0);
  config.pool = &serial;
  const Reference ref = reference_run(f, engine, config);
  ASSERT_EQ(ref.signatures.size(), config.rounds);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    config.pool = &pool;
    check_kill_restore(f, engine, config, ref, {6, 8, 18},
                       "pool size " + std::to_string(threads));
  }
}

TEST(ReplayDriver, ColdCacheRestoreIsStillBitIdentical) {
  const Fixture f = make_fixture(20170701, /*nodes=*/8);
  const te::McfTe engine;
  ReplayConfig config = small_config(/*rounds=*/12, /*chunk_rounds=*/8);
  const Reference ref = reference_run(f, engine, config);

  // Caches only change timing: a checkpoint that never captured them
  // restores to a cold engine and must continue bit-identically anyway.
  config.checkpoint_caches = false;
  check_kill_restore(f, engine, config, ref, {5}, "cold-cache restore");
}

TEST(ReplayDriver, SwanEngineKillRestoreRoundTripsPathCache) {
  const Fixture f = make_fixture(20170701, /*nodes=*/8);
  const te::SwanTe engine;
  const ReplayConfig config = small_config(/*rounds=*/12, /*chunk_rounds=*/8);
  const Reference ref = reference_run(f, engine, config);
  check_kill_restore(f, engine, config, ref, {5, 8}, "swan engine");
}

TEST(ReplayDriver, RestoreRejectsConfigMismatchAndLeavesDriverUntouched) {
  const Fixture f = make_fixture(20170701, /*nodes=*/8);
  const te::McfTe engine;
  ReplayConfig config = small_config(/*rounds=*/12, /*chunk_rounds=*/8);

  ReplayDriver other(f.topology, engine, f.demands, config);
  other.run(4);
  const Checkpoint foreign = [&] {
    ReplayConfig changed = config;
    changed.seed = config.seed + 1;
    ReplayDriver driver(f.topology, engine, f.demands, changed);
    driver.run(4);
    return driver.checkpoint();
  }();

  const Reference ref = reference_run(f, engine, config);
  ReplayDriver driver(f.topology, engine, f.demands, config);
  driver.run(6);
  const std::uint64_t chain_before = driver.signature_chain();
  EXPECT_EQ(driver.restore(foreign), Error::kConfigMismatch);
  EXPECT_EQ(driver.round(), 6u) << "failed restore must not move the driver";
  EXPECT_EQ(driver.signature_chain(), chain_before);
  // ...and it still finishes exactly like the uninterrupted run.
  driver.run();
  EXPECT_EQ(driver.signature_chain(), ref.chain);
}

TEST(ReplayDriver, PeriodicStoreAndRestoreLatestResumeTheRun) {
  const Fixture f = make_fixture(20170701, /*nodes=*/8);
  const te::McfTe engine;
  ReplayConfig config = small_config(/*rounds=*/12, /*chunk_rounds=*/8);
  const Reference ref = reference_run(f, engine, config);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rwc-replay-test-periodic";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore store(dir, /*keep=*/2);
    config.checkpoint_every = 5;
    ReplayDriver driver(f.topology, engine, f.demands, config);
    driver.attach_store(&store);
    driver.run(11);  // dies after round 11; checkpoints exist at 5 and 10

    ReplayDriver resumed(f.topology, engine, f.demands, config);
    ASSERT_EQ(resumed.restore_latest(store), Error::kNone);
    EXPECT_EQ(resumed.round(), 10u);
    resumed.run();
    EXPECT_EQ(resumed.signature_chain(), ref.chain);
    expect_metrics_equal(ref.metrics, resumed.metrics(), "restore_latest");
  }
  std::filesystem::remove_all(dir);
}

TEST(ReplayDriver, ObsCheckpointRewindsCounters) {
  const Fixture f = make_fixture(20170701, /*nodes=*/8);
  const te::McfTe engine;
  ReplayConfig config = small_config(/*rounds=*/10, /*chunk_rounds=*/8);
  config.checkpoint_obs = true;

  ReplayDriver driver(f.topology, engine, f.demands, config);
  driver.run(4);
  const Checkpoint ck = driver.checkpoint();
  const std::uint64_t rounds_at_capture =
      obs::Registry::global().counter("replay.rounds").value();

  driver.run(4);  // counter moves on
  ASSERT_GT(obs::Registry::global().counter("replay.rounds").value(),
            rounds_at_capture);

  ASSERT_EQ(driver.restore(ck), Error::kNone);
  EXPECT_EQ(obs::Registry::global().counter("replay.rounds").value(),
            rounds_at_capture)
      << "checkpoint_obs restore must rewind the captured counters";
}

TEST(ReplayDriver, ConfigFingerprintSeparatesRuns) {
  const Fixture f = make_fixture(20170701, /*nodes=*/8);
  const te::McfTe engine;
  const ReplayConfig config = small_config(/*rounds=*/12, /*chunk_rounds=*/8);
  const ReplayDriver a(f.topology, engine, f.demands, config);
  ReplayConfig other = config;
  other.seed = config.seed + 1;
  const ReplayDriver b(f.topology, engine, f.demands, other);
  EXPECT_NE(a.config_fingerprint(), b.config_fingerprint());
  const ReplayDriver c(f.topology, engine, f.demands, config);
  EXPECT_EQ(a.config_fingerprint(), c.config_fingerprint());
}

}  // namespace
}  // namespace rwc
