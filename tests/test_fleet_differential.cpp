// Differential layer for the fleet engine (docs/FLEET.md): the incremental
// re-solve hot path must be bit-identical to full re-solves on every round
// signature, the fleet chain must be invariant to shard count and pool
// size, each instance's slot must equal a direct run of that instance, and
// checkpointing must stay observational. Signatures come from the shared
// tests/support/round_signature.hpp helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "fault/plan.hpp"
#include "fault/registry.hpp"
#include "fleet/fleet.hpp"
#include "replay/driver.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "support/round_signature.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using fleet::FleetConfig;
using fleet::FleetResult;
using replay::ReplayConfig;
using replay::ReplayDriver;

/// Small fleet the suite can afford to run several times.
FleetConfig small_fleet(std::uint64_t seed) {
  FleetConfig config;
  config.instances = 6;
  config.shards = 2;
  config.rounds = 10;
  config.seed = seed;
  config.min_nodes = 8;
  config.max_nodes = 10;
  return config;
}

/// One instance-shaped replay fixture (what fleet::run_instance drives).
struct InstanceFixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  ReplayConfig config;
};

InstanceFixture make_instance_fixture(std::uint64_t seed,
                                      std::uint64_t rounds) {
  util::Rng rng = util::Rng::stream(seed, 1);
  InstanceFixture fixture;
  fixture.topology = sim::waxman(9, rng);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{fixture.topology.total_capacity().value * 0.5};
  fixture.demands = sim::gravity_matrix(fixture.topology, gravity, rng);
  fixture.config.rounds = rounds;
  fixture.config.diurnal = false;
  fixture.config.hysteresis = core::HysteresisParams{};
  fixture.config.seed = util::Rng::stream(seed, 2).next_u64();
  return fixture;
}

struct ArmResult {
  std::vector<prop::RoundSignature> signatures;
  std::vector<bool> hits;
  std::vector<bool> partials;
  std::uint64_t chain = 0;
};

ArmResult run_arm(const InstanceFixture& fixture, bool incremental,
                  bool partial = true) {
  ReplayConfig config = fixture.config;
  config.incremental = incremental;
  te::McfTe::Options options;
  options.partial_repair = partial;
  te::McfTe engine(options);
  ReplayDriver driver(fixture.topology, engine, fixture.demands, config);
  ArmResult result;
  while (!driver.done()) {
    const auto report = driver.step();
    result.signatures.push_back(prop::signature_of(report));
    result.hits.push_back(report.stats.incremental_hit);
    result.partials.push_back(report.stats.partial_resolve);
  }
  result.chain = driver.signature_chain();
  return result;
}

void expect_arms_equal(const ArmResult& full, const ArmResult& incremental,
                       const std::string& context) {
  ASSERT_EQ(full.signatures.size(), incremental.signatures.size()) << context;
  for (std::size_t r = 0; r < full.signatures.size(); ++r) {
    const prop::InvariantResult check = prop::check_signatures_equal(
        full.signatures[r], incremental.signatures[r],
        context + ", round " + std::to_string(r));
    ASSERT_TRUE(check.ok) << check.detail;
  }
  EXPECT_EQ(full.chain, incremental.chain) << context;
}

TEST(FleetDifferential, IncrementalMatchesFullOnEveryRound) {
  for (const std::uint64_t seed : {11u, 23u}) {
    const InstanceFixture fixture = make_instance_fixture(seed, 24);
    const ArmResult full = run_arm(fixture, false);
    const ArmResult incremental = run_arm(fixture, true);
    expect_arms_equal(full, incremental, "seed " + std::to_string(seed));
    // The comparison only means something if the hot path actually fired.
    EXPECT_NE(std::count(incremental.hits.begin(), incremental.hits.end(),
                         true),
              0)
        << "seed " << seed << ": no memo hit in 24 rounds";
    EXPECT_EQ(std::count(full.hits.begin(), full.hits.end(), true), 0)
        << "seed " << seed;
  }
}

TEST(FleetDifferential, IncrementalMatchesFullUnderFaultPlans) {
  // Parallel-keyed sites only (docs/FLEET.md): injections fire by edge id /
  // network fingerprint, so both arms see identical faults.
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::Injection snr_garbage;
  snr_garbage.site = "core.snr";
  snr_garbage.period = 3;
  snr_garbage.hit = 1;
  snr_garbage.action.kind = fault::Kind::kGarbage;
  plan.injections.push_back(snr_garbage);
  fault::Injection mincost_budget;
  mincost_budget.site = "flow.mincost";
  mincost_budget.period = 2;
  mincost_budget.hit = 0;
  mincost_budget.action.kind = fault::Kind::kBudget;
  mincost_budget.action.magnitude = 12.0;
  plan.injections.push_back(mincost_budget);

  const InstanceFixture fixture = make_instance_fixture(31, 20);
  const auto faulted_arm = [&](bool incremental) {
    fault::ScopedPlan armed(plan);
    return run_arm(fixture, incremental);
  };
  const ArmResult full = faulted_arm(false);
  const ArmResult incremental = faulted_arm(true);
  expect_arms_equal(full, incremental, "faulted instance");
}

TEST(FleetDifferential, PartialTierMatchesColdSolversOnEveryRound) {
  // Diurnal scaling shifts demand volumes every round while the topology
  // (and so every arc cost) stays put on most rounds: the exact memo
  // misses but later demands see residual-only perturbations — the
  // partial tier's case. Its rounds must be bit-identical to the same
  // rounds with the tier disabled and to full re-solves.
  for (const std::uint64_t seed : {11u, 23u}) {
    InstanceFixture fixture = make_instance_fixture(seed, 24);
    fixture.config.diurnal = true;
    const ArmResult cold = run_arm(fixture, false, false);
    const ArmResult no_partial = run_arm(fixture, true, false);
    const ArmResult partial = run_arm(fixture, true, true);
    expect_arms_equal(cold, no_partial,
                      "seed " + std::to_string(seed) + ", partial off");
    expect_arms_equal(cold, partial,
                      "seed " + std::to_string(seed) + ", partial on");
    // The comparison only means something if the tier actually fired.
    EXPECT_NE(std::count(partial.partials.begin(), partial.partials.end(),
                         true),
              0)
        << "seed " << seed << ": no partial re-solve in 24 diurnal rounds";
    EXPECT_EQ(std::count(no_partial.partials.begin(),
                         no_partial.partials.end(), true),
              0)
        << "seed " << seed;
  }
}

TEST(FleetDifferential, PartialTierMatchesUnderFaultPlans) {
  // Same parallel-keyed plan discipline as the incremental test: budget
  // faults truncate solves mid-flight and garbage faults shift the SNR
  // inputs, and the partial tier must stay bit-identical through both.
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::Injection snr_garbage;
  snr_garbage.site = "core.snr";
  snr_garbage.period = 3;
  snr_garbage.hit = 1;
  snr_garbage.action.kind = fault::Kind::kGarbage;
  plan.injections.push_back(snr_garbage);
  fault::Injection mincost_budget;
  mincost_budget.site = "flow.mincost";
  mincost_budget.period = 2;
  mincost_budget.hit = 0;
  mincost_budget.action.kind = fault::Kind::kBudget;
  mincost_budget.action.magnitude = 12.0;
  plan.injections.push_back(mincost_budget);

  InstanceFixture fixture = make_instance_fixture(31, 20);
  fixture.config.diurnal = true;
  const auto faulted_arm = [&](bool partial) {
    fault::ScopedPlan armed(plan);
    return run_arm(fixture, true, partial);
  };
  const ArmResult without = faulted_arm(false);
  const ArmResult with = faulted_arm(true);
  expect_arms_equal(without, with, "faulted instance, partial tier");
}

TEST(FleetDifferential, FleetChainInvariantToShardsAndPoolSizes) {
  const FleetConfig base = small_fleet(101);
  const FleetResult reference = fleet::run_fleet(base);
  ASSERT_EQ(reference.instances.size(), base.instances);
  EXPECT_EQ(reference.total_rounds, base.instances * base.rounds);

  struct Variant {
    std::size_t shards;
    std::size_t pool_threads;
  };
  for (const Variant variant : {Variant{1, 1}, Variant{3, 2}, Variant{6, 8}}) {
    exec::ThreadPool pool(variant.pool_threads);
    FleetConfig config = base;
    config.shards = variant.shards;
    config.pool = &pool;
    const FleetResult got = fleet::run_fleet(config);
    EXPECT_EQ(got.fleet_chain, reference.fleet_chain)
        << "shards=" << variant.shards << " pool=" << variant.pool_threads;
    EXPECT_EQ(got.failure_events, reference.failure_events)
        << "shards=" << variant.shards << " pool=" << variant.pool_threads;
  }
}

TEST(FleetDifferential, FleetChainInvariantToIncrementalFlag) {
  FleetConfig config = small_fleet(202);
  config.incremental = true;
  const FleetResult incremental = fleet::run_fleet(config);
  config.incremental = false;
  const FleetResult full = fleet::run_fleet(config);
  EXPECT_EQ(incremental.fleet_chain, full.fleet_chain);
  EXPECT_EQ(full.incremental_hits, 0u);
  EXPECT_GT(incremental.incremental_hits, 0u)
      << "hot path never fired across "
      << incremental.total_rounds << " fleet rounds";
}

TEST(FleetDifferential, FleetChainInvariantToPartialFlag) {
  // The fleet-level statement of the solver ladder's contract: enabling
  // the partial tier changes work counters only, never the fleet chain.
  // Both engines are covered so the mincost repair AND the LP pivot-replay
  // paths cross the fleet determinism bar — each under the perturbation
  // its tier serves. For mcf, diurnal demands shift residuals while costs
  // stay put. For swan, stable demands with SNR-driven capacity flips keep
  // the maximize LP's structure fixed with rhs-only movement (diurnal
  // traffic would shift the penalty-derived objective coefficients every
  // round and structurally miss).
  for (const fleet::EngineKind engine :
       {fleet::EngineKind::kMcf, fleet::EngineKind::kSwan}) {
    FleetConfig config = small_fleet(505);
    config.instances = 3;
    config.engine = engine;
    config.diurnal = engine == fleet::EngineKind::kMcf;
    if (engine == fleet::EngineKind::kSwan) config.rounds = 24;
    config.partial = true;
    const FleetResult partial = fleet::run_fleet(config);
    config.partial = false;
    const FleetResult cold = fleet::run_fleet(config);
    const char* name = engine == fleet::EngineKind::kMcf ? "mcf" : "swan";
    EXPECT_EQ(partial.fleet_chain, cold.fleet_chain) << name;
    EXPECT_EQ(cold.partial_rounds, 0u) << name;
    EXPECT_GT(partial.partial_rounds, 0u)
        << name << ": partial tier never fired across "
        << partial.total_rounds << " fleet rounds";

    // The partial tier must also be invariant to execution parallelism:
    // engine caches are shared across a pool's workers, so a lost or
    // reordered recording store may change which rounds repair — never
    // what they compute.
    for (const std::size_t pool_threads : {1u, 2u, 8u}) {
      exec::ThreadPool pool(pool_threads);
      FleetConfig pooled = config;
      pooled.partial = true;
      pooled.pool = &pool;
      EXPECT_EQ(fleet::run_fleet(pooled).fleet_chain, cold.fleet_chain)
          << name << " pool=" << pool_threads;
    }
  }
}

TEST(FleetDifferential, InstanceSlotsMatchDirectRuns) {
  const FleetConfig config = small_fleet(303);
  const FleetResult fleet_run = fleet::run_fleet(config);
  ASSERT_EQ(fleet_run.instances.size(), config.instances);
  for (std::size_t i = 0; i < config.instances; ++i) {
    const fleet::InstanceResult direct = fleet::run_instance(config, i);
    EXPECT_EQ(direct.signature_chain, fleet_run.instances[i].signature_chain)
        << "instance " << i;
    EXPECT_EQ(direct.failure_events, fleet_run.instances[i].failure_events)
        << "instance " << i;
    EXPECT_EQ(direct.link_capability_gbps,
              fleet_run.instances[i].link_capability_gbps)
        << "instance " << i;
  }
}

TEST(FleetDifferential, CheckpointingIsObservational) {
  const FleetConfig plain = small_fleet(404);
  const FleetResult reference = fleet::run_fleet(plain);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rwc-fleet-ckpt-test";
  std::filesystem::remove_all(dir);
  FleetConfig checkpointed = plain;
  checkpointed.checkpoint_dir = dir.string();
  checkpointed.checkpoint_every = 4;
  const FleetResult got = fleet::run_fleet(checkpointed);
  EXPECT_EQ(got.fleet_chain, reference.fleet_chain);
  // Every instance actually wrote a store.
  for (std::size_t i = 0; i < plain.instances; ++i)
    EXPECT_TRUE(std::filesystem::exists(dir / ("instance-" +
                                               std::to_string(i))))
        << "instance " << i;
  std::filesystem::remove_all(dir);
}

TEST(FleetDifferential, RestoreMidHorizonColdMemoStaysBitIdentical) {
  // The memo is deliberately not checkpointed: restoring mid-horizon costs
  // one full re-solve (first resumed round is never a hit) but the round
  // signatures and the final chain must match the uninterrupted run.
  const InstanceFixture fixture = make_instance_fixture(55, 20);
  ReplayConfig config = fixture.config;
  config.incremental = true;
  te::McfTe engine;

  ReplayDriver driver(fixture.topology, engine, fixture.demands, config);
  std::vector<prop::RoundSignature> reference;
  replay::Checkpoint mid;
  while (!driver.done()) {
    if (driver.round() == 10) mid = driver.checkpoint();
    reference.push_back(prop::signature_of(driver.step()));
  }

  ReplayDriver resumed(fixture.topology, engine, fixture.demands, config);
  ASSERT_EQ(resumed.restore(mid), replay::Error::kNone);
  bool first = true;
  for (std::size_t r = 10; r < reference.size(); ++r) {
    const auto report = resumed.step();
    if (first) {
      EXPECT_FALSE(report.stats.incremental_hit)
          << "memo survived a restore; it must be rebuilt cold";
      first = false;
    }
    const prop::InvariantResult check = prop::check_signatures_equal(
        reference[r], prop::signature_of(report),
        "resumed round " + std::to_string(r));
    ASSERT_TRUE(check.ok) << check.detail;
  }
  EXPECT_EQ(resumed.signature_chain(), driver.signature_chain());
}

}  // namespace
}  // namespace rwc
