// Tests for the optical link-budget model.
#include <gtest/gtest.h>

#include "optical/link_budget.hpp"
#include "util/check.hpp"

namespace rwc::optical {
namespace {

using util::Db;
using namespace util::literals;

TEST(LinkBudget, KnownOsnrExample) {
  // 10 spans of 80 km @ 0.22 dB/km, NF 5 dB, 0 dBm launch:
  // OSNR = 58 + 0 - 17.6 - 5 - 10 = 25.4 dB.
  LinkBudget budget;
  budget.span_count = 10;
  EXPECT_NEAR(estimate_osnr(budget).value, 25.4, 1e-9);
}

TEST(LinkBudget, OsnrToSnrAtSymbolRate) {
  // 32 GBd: 10 log10(32/12.5) = 4.082 dB penalty.
  EXPECT_NEAR(osnr_to_snr(Db{25.4}, 32.0).value, 25.4 - 4.0824, 1e-3);
  // At the reference bandwidth the conversion is the identity.
  EXPECT_NEAR(osnr_to_snr(Db{20.0}, 12.5).value, 20.0, 1e-12);
}

TEST(LinkBudget, SnrDecreasesWithSpans) {
  LinkBudget budget;
  double previous = 1e9;
  for (int spans = 1; spans <= 40; spans *= 2) {
    budget.span_count = spans;
    const double snr = estimate_snr(budget).value;
    EXPECT_LT(snr, previous);
    previous = snr;
  }
  // Doubling the span count costs exactly 3.01 dB.
  budget.span_count = 10;
  const double ten = estimate_snr(budget).value;
  budget.span_count = 20;
  EXPECT_NEAR(ten - estimate_snr(budget).value, 3.0103, 1e-3);
}

TEST(LinkBudget, LongerSpansCostMore) {
  LinkBudget short_spans;
  short_spans.span.length_km = 60.0;
  LinkBudget long_spans;
  long_spans.span.length_km = 100.0;
  EXPECT_GT(estimate_snr(short_spans).value,
            estimate_snr(long_spans).value);
}

TEST(LinkBudget, FeasibleCapacityFollowsTheLadder) {
  const auto table = ModulationTable::standard();
  // Short metro link: plenty of SNR for 200 G.
  LinkBudget metro;
  metro.span_count = 3;
  EXPECT_EQ(feasible_capacity(metro, table), 200_Gbps);
  // A long haul: degrades down the ladder.
  LinkBudget haul;
  haul.span_count = 80;
  EXPECT_LT(feasible_capacity(haul, table), 200_Gbps);
  EXPECT_GT(feasible_capacity(haul, table), 0_Gbps);
}

TEST(LinkBudget, MaxReachMatchesDirectEvaluation) {
  LinkBudget budget;
  const auto table = ModulationTable::standard();
  const Db threshold = table.threshold_for(200_Gbps);
  const int reach = max_reach_spans(budget, threshold);
  ASSERT_GT(reach, 0);
  budget.span_count = reach;
  EXPECT_GE(estimate_snr(budget), threshold);
  budget.span_count = reach + 1;
  EXPECT_LT(estimate_snr(budget), threshold);
}

TEST(LinkBudget, ReachShrinksWithRequiredSnrAndMargin) {
  const LinkBudget budget;
  const int reach_100 = max_reach_spans(budget, Db{6.5});
  const int reach_200 = max_reach_spans(budget, Db{13.0});
  EXPECT_GT(reach_100, reach_200);
  EXPECT_GE(reach_200, 1);
  EXPECT_LE(max_reach_spans(budget, Db{13.0}, Db{2.0}), reach_200);
}

TEST(LinkBudget, ImpossibleReachIsZero) {
  LinkBudget budget;
  budget.launch_power_dbm = -20.0;  // hopeless
  EXPECT_EQ(max_reach_spans(budget, Db{25.0}), 0);
}

TEST(LinkBudget, ValidatesInputs) {
  LinkBudget budget;
  budget.span_count = 0;
  EXPECT_THROW(estimate_osnr(budget), util::CheckError);
  budget.span_count = 1;
  budget.span.length_km = 0.0;
  EXPECT_THROW(estimate_osnr(budget), util::CheckError);
  EXPECT_THROW(osnr_to_snr(Db{20.0}, 0.0), util::CheckError);
}

TEST(LinkBudget, TotalLength) {
  LinkBudget budget;
  budget.span_count = 12;
  budget.span.length_km = 75.0;
  EXPECT_DOUBLE_EQ(budget.total_length_km(), 900.0);
}

}  // namespace
}  // namespace rwc::optical
