// Checkpoint format tests (rwc::replay): round-trip fidelity for every
// section, typed rejection of every corruption class the format defends
// against (bad magic/version, truncation at any byte, CRC-detected bit
// rot, missing mandatory sections), file IO, the replay.restore fault
// site, and CheckpointStore rotation + deterministic fallback.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "replay/checkpoint.hpp"

namespace rwc {
namespace {

using replay::Checkpoint;
using replay::CheckpointStore;
using replay::Error;

/// A checkpoint exercising every section with non-default content.
Checkpoint sample_checkpoint(bool with_caches = true, bool with_obs = true) {
  Checkpoint ck;
  ck.config_fingerprint = 0xFEEDFACECAFEBEEFull;
  ck.round = 40;
  ck.chunk_base_round = 32;
  ck.signature_chain = 0x123456789ABCDEF0ull;
  ck.metrics.offered_gbps_hours = 1234.5;
  ck.metrics.delivered_gbps_hours = 1200.25;
  ck.metrics.availability = 39.875;  // running sum
  ck.metrics.link_failures = 3;
  ck.metrics.link_flaps = 7;
  ck.metrics.upgrades = 11;
  ck.metrics.restorations = 2;
  ck.metrics.lock_failures = 0;
  ck.metrics.reconfig_downtime_hours = 0.75;
  ck.metrics.te_rounds = 40;

  ck.controller.configured = {util::Gbps{100.0}, util::Gbps{150.0}};
  core::HysteresisFilter::State hysteresis;
  hysteresis.candidate = {util::Gbps{200.0}, util::Gbps{0.0}};
  hysteresis.streak = {2, 0};
  ck.controller.hysteresis = hysteresis;
  te::FlowAssignment assignment;
  te::FlowAssignment::DemandRouting routing;
  routing.demand = {graph::NodeId{0}, graph::NodeId{1}, util::Gbps{42.0}, 1};
  graph::Path path;
  path.edges = {graph::EdgeId{0}, graph::EdgeId{1}};
  path.weight = 2.0;
  routing.paths.emplace_back(path, util::Gbps{42.0});
  routing.routed = util::Gbps{42.0};
  assignment.routings.push_back(routing);
  assignment.edge_load_gbps = {42.0, 42.0};
  assignment.total_routed = util::Gbps{42.0};
  assignment.total_cost = 0.25;
  ck.controller.last_assignment = assignment;
  ck.controller.last_traffic = {42.0, 42.0};
  ck.controller.last_snr = {util::Db{14.5}, util::Db{6.25}};

  for (int e = 0; e < 2; ++e) {
    telemetry::SnrTraceCursor::State cursor;
    cursor.position = 32;
    cursor.rng.engine = {0x1111ull + static_cast<std::uint64_t>(e), 0x2222ull,
                         0x3333ull, 0x4444ull};
    cursor.rng.cached_normal = 0.5;
    cursor.rng.has_cached_normal = (e == 0);
    ck.cursors.push_back(cursor);
  }

  ck.latency_rng.engine = {1, 2, 3, 4};
  ck.latency_rng.cached_normal = -1.25;
  ck.latency_rng.has_cached_normal = true;

  if (with_caches) {
    ck.caches_present = true;
    flow::MinCostWarmStart recording;
    recording.fingerprint = 0xABCDull;
    flow::MinCostWarmStart::Augmentation aug;
    aug.arcs = {3, 1, 0};
    aug.bottleneck = 17.5;
    aug.path_cost = 2.5;
    recording.augmentations.push_back(aug);
    recording.exhausted = true;
    recording.final_potential = {0.0, 1.0, 2.0};
    ck.warm_recordings.push_back(recording);

    graph::PathCache::ExportedEntry entry;
    entry.fingerprint = 0xBEEFull;
    entry.source = 0;
    entry.target = 1;
    entry.k = 4;
    entry.paths = {path};
    ck.path_entries.push_back(entry);
  }
  if (with_obs) {
    ck.obs_present = true;
    ck.obs_counters = {{"replay.rounds", 40}, {"flow.mincost.runs", 123}};
    ck.obs_gauges = {{"exec.pool_utilization", 0.75}};
  }
  return ck;
}

void expect_checkpoints_equal(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.chunk_base_round, b.chunk_base_round);
  EXPECT_EQ(a.signature_chain, b.signature_chain);
  EXPECT_EQ(a.metrics.offered_gbps_hours, b.metrics.offered_gbps_hours);
  EXPECT_EQ(a.metrics.delivered_gbps_hours, b.metrics.delivered_gbps_hours);
  EXPECT_EQ(a.metrics.availability, b.metrics.availability);
  EXPECT_EQ(a.metrics.link_failures, b.metrics.link_failures);
  EXPECT_EQ(a.metrics.link_flaps, b.metrics.link_flaps);
  EXPECT_EQ(a.metrics.upgrades, b.metrics.upgrades);
  EXPECT_EQ(a.metrics.restorations, b.metrics.restorations);
  EXPECT_EQ(a.metrics.lock_failures, b.metrics.lock_failures);
  EXPECT_EQ(a.metrics.reconfig_downtime_hours,
            b.metrics.reconfig_downtime_hours);
  EXPECT_EQ(a.metrics.te_rounds, b.metrics.te_rounds);

  ASSERT_EQ(a.controller.configured.size(), b.controller.configured.size());
  for (std::size_t i = 0; i < a.controller.configured.size(); ++i)
    EXPECT_EQ(a.controller.configured[i].value,
              b.controller.configured[i].value);
  ASSERT_EQ(a.controller.hysteresis.has_value(),
            b.controller.hysteresis.has_value());
  if (a.controller.hysteresis.has_value()) {
    ASSERT_EQ(a.controller.hysteresis->candidate.size(),
              b.controller.hysteresis->candidate.size());
    for (std::size_t i = 0; i < a.controller.hysteresis->candidate.size();
         ++i) {
      EXPECT_EQ(a.controller.hysteresis->candidate[i].value,
                b.controller.hysteresis->candidate[i].value);
      EXPECT_EQ(a.controller.hysteresis->streak[i],
                b.controller.hysteresis->streak[i]);
    }
  }
  const te::FlowAssignment& aa = a.controller.last_assignment;
  const te::FlowAssignment& ba = b.controller.last_assignment;
  ASSERT_EQ(aa.routings.size(), ba.routings.size());
  for (std::size_t r = 0; r < aa.routings.size(); ++r) {
    EXPECT_EQ(aa.routings[r].demand.src, ba.routings[r].demand.src);
    EXPECT_EQ(aa.routings[r].demand.dst, ba.routings[r].demand.dst);
    EXPECT_EQ(aa.routings[r].demand.volume.value,
              ba.routings[r].demand.volume.value);
    EXPECT_EQ(aa.routings[r].demand.priority, ba.routings[r].demand.priority);
    ASSERT_EQ(aa.routings[r].paths.size(), ba.routings[r].paths.size());
    for (std::size_t p = 0; p < aa.routings[r].paths.size(); ++p) {
      EXPECT_EQ(aa.routings[r].paths[p].first.edges,
                ba.routings[r].paths[p].first.edges);
      EXPECT_EQ(aa.routings[r].paths[p].first.weight,
                ba.routings[r].paths[p].first.weight);
      EXPECT_EQ(aa.routings[r].paths[p].second.value,
                ba.routings[r].paths[p].second.value);
    }
    EXPECT_EQ(aa.routings[r].routed.value, ba.routings[r].routed.value);
  }
  EXPECT_EQ(aa.edge_load_gbps, ba.edge_load_gbps);
  EXPECT_EQ(aa.total_routed.value, ba.total_routed.value);
  EXPECT_EQ(aa.total_cost, ba.total_cost);
  EXPECT_EQ(a.controller.last_traffic, b.controller.last_traffic);
  ASSERT_EQ(a.controller.last_snr.size(), b.controller.last_snr.size());
  for (std::size_t i = 0; i < a.controller.last_snr.size(); ++i)
    EXPECT_EQ(a.controller.last_snr[i].value, b.controller.last_snr[i].value);

  ASSERT_EQ(a.cursors.size(), b.cursors.size());
  for (std::size_t i = 0; i < a.cursors.size(); ++i)
    EXPECT_EQ(a.cursors[i], b.cursors[i]);
  EXPECT_EQ(a.latency_rng, b.latency_rng);

  EXPECT_EQ(a.caches_present, b.caches_present);
  ASSERT_EQ(a.warm_recordings.size(), b.warm_recordings.size());
  for (std::size_t i = 0; i < a.warm_recordings.size(); ++i) {
    EXPECT_EQ(a.warm_recordings[i].fingerprint,
              b.warm_recordings[i].fingerprint);
    ASSERT_EQ(a.warm_recordings[i].augmentations.size(),
              b.warm_recordings[i].augmentations.size());
    for (std::size_t g = 0; g < a.warm_recordings[i].augmentations.size();
         ++g) {
      EXPECT_EQ(a.warm_recordings[i].augmentations[g].arcs,
                b.warm_recordings[i].augmentations[g].arcs);
      EXPECT_EQ(a.warm_recordings[i].augmentations[g].bottleneck,
                b.warm_recordings[i].augmentations[g].bottleneck);
      EXPECT_EQ(a.warm_recordings[i].augmentations[g].path_cost,
                b.warm_recordings[i].augmentations[g].path_cost);
    }
    EXPECT_EQ(a.warm_recordings[i].exhausted, b.warm_recordings[i].exhausted);
    EXPECT_EQ(a.warm_recordings[i].final_potential,
              b.warm_recordings[i].final_potential);
  }
  ASSERT_EQ(a.path_entries.size(), b.path_entries.size());
  for (std::size_t i = 0; i < a.path_entries.size(); ++i) {
    EXPECT_EQ(a.path_entries[i].fingerprint, b.path_entries[i].fingerprint);
    EXPECT_EQ(a.path_entries[i].source, b.path_entries[i].source);
    EXPECT_EQ(a.path_entries[i].target, b.path_entries[i].target);
    EXPECT_EQ(a.path_entries[i].k, b.path_entries[i].k);
    ASSERT_EQ(a.path_entries[i].paths.size(), b.path_entries[i].paths.size());
    for (std::size_t p = 0; p < a.path_entries[i].paths.size(); ++p) {
      EXPECT_EQ(a.path_entries[i].paths[p].edges,
                b.path_entries[i].paths[p].edges);
      EXPECT_EQ(a.path_entries[i].paths[p].weight,
                b.path_entries[i].paths[p].weight);
    }
  }
  EXPECT_EQ(a.obs_present, b.obs_present);
  EXPECT_EQ(a.obs_counters, b.obs_counters);
  EXPECT_EQ(a.obs_gauges, b.obs_gauges);
}

/// Scratch directory per test, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("rwc-replay-test-" + name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(ReplayCheckpoint, Crc32KnownAnswer) {
  const char digits[] = "123456789";
  EXPECT_EQ(replay::crc32(std::as_bytes(std::span(digits, 9))), 0xCBF43926u);
}

TEST(ReplayCheckpoint, EncodeDecodeRoundTripsAllSections) {
  const Checkpoint original = sample_checkpoint();
  const std::vector<std::byte> bytes = replay::encode(original);
  Checkpoint decoded;
  ASSERT_EQ(replay::decode(bytes, decoded), Error::kNone)
      << "a freshly encoded checkpoint must decode";
  expect_checkpoints_equal(original, decoded);
}

TEST(ReplayCheckpoint, ColdCacheMarkerRoundTrips) {
  const Checkpoint original =
      sample_checkpoint(/*with_caches=*/false, /*with_obs=*/false);
  const std::vector<std::byte> bytes = replay::encode(original);
  Checkpoint decoded;
  ASSERT_EQ(replay::decode(bytes, decoded), Error::kNone);
  EXPECT_FALSE(decoded.caches_present);
  EXPECT_FALSE(decoded.obs_present);
  EXPECT_TRUE(decoded.warm_recordings.empty());
  EXPECT_TRUE(decoded.path_entries.empty());
}

TEST(ReplayCheckpoint, DecodeRejectsBadMagic) {
  std::vector<std::byte> bytes = replay::encode(sample_checkpoint());
  bytes[0] ^= std::byte{0xFF};
  Checkpoint out;
  EXPECT_EQ(replay::decode(bytes, out), Error::kBadMagic);
}

TEST(ReplayCheckpoint, DecodeRejectsBadVersion) {
  std::vector<std::byte> bytes = replay::encode(sample_checkpoint());
  bytes[8] = std::byte{99};  // version is little-endian at offset 8
  Checkpoint out;
  EXPECT_EQ(replay::decode(bytes, out), Error::kBadVersion);
}

TEST(ReplayCheckpoint, DecodeRejectsEveryTruncationLength) {
  const std::vector<std::byte> bytes = replay::encode(sample_checkpoint());
  Checkpoint out;
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const Error error =
        replay::decode(std::span(bytes.data(), length), out);
    EXPECT_NE(error, Error::kNone)
        << "prefix of " << length << "/" << bytes.size()
        << " bytes decoded as a valid checkpoint";
  }
}

TEST(ReplayCheckpoint, DecodeRejectsPayloadBitRot) {
  std::vector<std::byte> bytes = replay::encode(sample_checkpoint());
  // Past the header and the first section's framing, this lands inside a
  // CRC-protected payload.
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  Checkpoint out;
  EXPECT_EQ(replay::decode(bytes, out), Error::kCrcMismatch);
}

TEST(ReplayCheckpoint, DecodeRejectsMissingMandatorySection) {
  const Checkpoint original =
      sample_checkpoint(/*with_caches=*/false, /*with_obs=*/false);
  std::vector<std::byte> bytes = replay::encode(original);
  // Retag the first section (kMeta, id at offset 16) as an unknown id; the
  // decoder skips unknown sections, leaving the mandatory meta one absent.
  bytes[16] = std::byte{200};
  Checkpoint out;
  EXPECT_EQ(replay::decode(bytes, out), Error::kMissingSection);
}

TEST(ReplayCheckpoint, WriteReadFileRoundTrips) {
  const TempDir dir("file-roundtrip");
  const Checkpoint original = sample_checkpoint();
  const std::filesystem::path path = dir.path / "ck.bin";
  ASSERT_EQ(replay::write_file(path, original), Error::kNone);
  Checkpoint decoded;
  ASSERT_EQ(replay::read_file(path, decoded), Error::kNone);
  expect_checkpoints_equal(original, decoded);
  // Temp file from the atomic write must not linger.
  EXPECT_FALSE(std::filesystem::exists(dir.path / "ck.bin.tmp"));
}

TEST(ReplayCheckpoint, ReadFileMissingIsIoError) {
  const TempDir dir("file-missing");
  Checkpoint out;
  EXPECT_EQ(replay::read_file(dir.path / "absent.bin", out), Error::kIo);
}

TEST(ReplayCheckpoint, FaultSiteDropTruncatesExactlyOnce) {
  const TempDir dir("fault-drop");
  const std::filesystem::path path = dir.path / "ck.bin";
  ASSERT_EQ(replay::write_file(path, sample_checkpoint()), Error::kNone);
  fault::ScopedPlan plan(fault::FaultPlan::parse("replay.restore@0:drop"));
  Checkpoint out;
  const Error first = replay::read_file(path, out);
  EXPECT_TRUE(first == Error::kTruncated || first == Error::kMalformed)
      << "got " << replay::to_string(first);
  // One-shot injection: the second read sees intact bytes.
  EXPECT_EQ(replay::read_file(path, out), Error::kNone);
  EXPECT_GE(fault::Registry::global().injected("replay.restore"), 1u);
}

TEST(ReplayCheckpoint, FaultSiteGarbageIsDetectedByCrc) {
  const TempDir dir("fault-garbage");
  const std::filesystem::path path = dir.path / "ck.bin";
  ASSERT_EQ(replay::write_file(path, sample_checkpoint()), Error::kNone);
  // Offset 100 lands inside the first (meta) section's payload.
  fault::ScopedPlan plan(
      fault::FaultPlan::parse("replay.restore@0:garbage=100"));
  Checkpoint out;
  EXPECT_EQ(replay::read_file(path, out), Error::kCrcMismatch);
}

TEST(ReplayCheckpoint, StoreRotatesOldFiles) {
  const TempDir dir("store-rotate");
  CheckpointStore store(dir.path / "ckpts", /*keep=*/2);
  Checkpoint ck = sample_checkpoint();
  for (std::uint64_t round : {10u, 20u, 30u}) {
    ck.round = round;
    ck.chunk_base_round = round;  // round may never precede the chunk base
    ASSERT_EQ(store.write(ck), Error::kNone);
  }
  const auto files = store.files();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].filename().string(), "ckpt-000000000020.bin");
  EXPECT_EQ(files[1].filename().string(), "ckpt-000000000030.bin");

  Checkpoint loaded;
  ASSERT_EQ(store.load_latest(ck.config_fingerprint, loaded), Error::kNone);
  EXPECT_EQ(loaded.round, 30u);
}

TEST(ReplayCheckpoint, StoreFallsBackPastCorruptNewest) {
  const TempDir dir("store-fallback");
  CheckpointStore store(dir.path / "ckpts", /*keep=*/4);
  Checkpoint ck = sample_checkpoint();
  ck.round = 10;
  ck.chunk_base_round = 10;
  ASSERT_EQ(store.write(ck), Error::kNone);
  ck.round = 20;
  ck.chunk_base_round = 20;
  ASSERT_EQ(store.write(ck), Error::kNone);
  // Truncate the newest file on disk (a torn write).
  const auto files = store.files();
  ASSERT_EQ(files.size(), 2u);
  std::filesystem::resize_file(files.back(),
                               std::filesystem::file_size(files.back()) / 2);

  const std::uint64_t fallbacks_before =
      obs::Registry::global().counter("replay.restore.fallbacks").value();
  Checkpoint loaded;
  ASSERT_EQ(store.load_latest(ck.config_fingerprint, loaded), Error::kNone);
  EXPECT_EQ(loaded.round, 10u) << "must fall back to the previous checkpoint";
  EXPECT_GT(obs::Registry::global().counter("replay.restore.fallbacks").value(),
            fallbacks_before);
}

TEST(ReplayCheckpoint, StoreReportsNewestErrorWhenNothingLoads) {
  const TempDir dir("store-all-bad");
  CheckpointStore store(dir.path / "ckpts", /*keep=*/4);
  Checkpoint ck = sample_checkpoint();
  ck.round = 5;
  ASSERT_EQ(store.write(ck), Error::kNone);
  const auto files = store.files();
  std::filesystem::resize_file(files.back(), 4);  // not even a full magic
  Checkpoint loaded;
  EXPECT_EQ(store.load_latest(ck.config_fingerprint, loaded),
            Error::kTruncated);
}

TEST(ReplayCheckpoint, StoreEmptyIsNotFound) {
  const TempDir dir("store-empty");
  const CheckpointStore store(dir.path / "ckpts", 4);
  Checkpoint loaded;
  EXPECT_EQ(store.load_latest(0, loaded), Error::kNotFound);
}

TEST(ReplayCheckpoint, StoreSkipsForeignConfiguration) {
  const TempDir dir("store-foreign");
  CheckpointStore store(dir.path / "ckpts", 4);
  Checkpoint ck = sample_checkpoint();
  ASSERT_EQ(store.write(ck), Error::kNone);
  Checkpoint loaded;
  EXPECT_EQ(store.load_latest(ck.config_fingerprint ^ 1, loaded),
            Error::kConfigMismatch);
}

TEST(ReplayCheckpoint, ErrorNamesAreStable) {
  EXPECT_STREQ(replay::to_string(Error::kNone), "none");
  EXPECT_STREQ(replay::to_string(Error::kTruncated), "truncated");
  EXPECT_STREQ(replay::to_string(Error::kCrcMismatch), "crc-mismatch");
  EXPECT_STREQ(replay::to_string(Error::kConfigMismatch), "config-mismatch");
}

}  // namespace
}  // namespace rwc
