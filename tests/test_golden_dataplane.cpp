// Golden-trace regression tests for the dataplane differential oracle
// (docs/DATAPLANE.md §5): a short xcheck run — controller rounds replayed
// through the flowlet dataplane — is pinned bit-for-bit against committed
// fixtures for two seeds. One fixture line per round: the gap scores as
// IEEE-754 bit patterns, the violation/migration counters in decimal and
// the dataplane state signature in hex, with a field-level diff naming
// exactly what moved. Any drift in WCMP placement, the tick schedule, the
// HPCC controller, the timeline builder or the controller plan upstream
// shows up here first.
//
// Regenerating after an INTENDED behavior change:
//   RWC_GOLDEN_REGEN=1 ./build/tests/rwc_tests --gtest_filter='GoldenDataplane.*'
// then commit the rewritten tests/golden/dataplane-*.golden files
// alongside the change that explains them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "dataplane/xcheck.hpp"

#ifndef RWC_GOLDEN_DIR
#error "RWC_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace rwc {
namespace {

std::string bits_of(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << bits;
  return out.str();
}

double double_of(const std::string& hex) {
  const std::uint64_t bits = std::stoull(hex, nullptr, 16);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string hex_of(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

/// One fixture line per dataplane round (plus a trailing chain line).
std::string serialize(std::size_t index,
                      const dataplane::XcheckRound& round) {
  std::ostringstream out;
  out << "round-" << index << ' ' << bits_of(round.max_shortfall) << ' '
      << bits_of(round.max_overshoot) << ' '
      << bits_of(round.total_alloc_gbps) << ' '
      << bits_of(round.total_goodput_gbps) << ' ' << round.migrations << ' '
      << round.rate_cuts << ' ' << round.capacity_violations << ' '
      << round.window_violations << ' ' << (round.scheduled ? 1 : 0) << ' '
      << hex_of(round.signature);
  return out.str();
}

struct GoldenField {
  std::string name;
  std::string expected;
  std::string got;
};

std::vector<GoldenField> diff_line(const std::string& expected,
                                   const std::string& got) {
  static const char* kFields[] = {
      "name",       "max_shortfall",       "max_overshoot",
      "alloc_gbps", "goodput_gbps",        "migrations",
      "rate_cuts",  "capacity_violations", "window_violations",
      "scheduled",  "signature"};
  std::istringstream expected_in(expected), got_in(got);
  std::vector<GoldenField> diffs;
  for (const char* field : kFields) {
    std::string expected_token, got_token;
    expected_in >> expected_token;
    got_in >> got_token;
    if (expected_token == got_token) continue;
    GoldenField diff{field, expected_token, got_token};
    const bool is_bits = std::string(field).find("_gbps") != std::string::npos ||
                         std::string(field).find("shortfall") != std::string::npos ||
                         std::string(field).find("overshoot") != std::string::npos;
    if (is_bits && expected_token.size() == 16 && got_token.size() == 16) {
      diff.expected += " (" + std::to_string(double_of(expected_token)) + ")";
      diff.got += " (" + std::to_string(double_of(got_token)) + ")";
    }
    diffs.push_back(diff);
  }
  return diffs;
}

void check_against_golden(std::uint64_t seed) {
  const std::filesystem::path path =
      std::filesystem::path(RWC_GOLDEN_DIR) /
      ("dataplane-" + std::to_string(seed) + ".golden");

  dataplane::XcheckConfig config;
  config.seed = seed;
  config.rounds = 3;
  const dataplane::XcheckOutcome outcome = dataplane::run_xcheck(config);
  ASSERT_TRUE(outcome.pass) << outcome.failure;

  std::vector<std::string> lines;
  for (std::size_t r = 0; r < outcome.rounds.size(); ++r)
    lines.push_back(serialize(r, outcome.rounds[r]));
  lines.push_back("chain " + hex_of(outcome.chain));

  if (std::getenv("RWC_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : lines) out << line << '\n';
    GTEST_SKIP() << "regenerated " << path << " — commit it";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path << "; generate it with\n  RWC_GOLDEN_REGEN=1 "
      << "./build/tests/rwc_tests --gtest_filter='GoldenDataplane.*'";
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) expected.push_back(line);

  ASSERT_EQ(expected.size(), lines.size())
      << "fixture " << path << " has " << expected.size()
      << " lines, the run produced " << lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (expected[i] == lines[i]) continue;
    std::ostringstream message;
    message << "line " << i << " drifted from " << path << ":\n";
    for (const GoldenField& diff : diff_line(expected[i], lines[i]))
      message << "  " << diff.name << ": expected " << diff.expected
              << ", got " << diff.got << '\n';
    message << "If this change is intended, regenerate with\n"
            << "  RWC_GOLDEN_REGEN=1 ./build/tests/rwc_tests "
            << "--gtest_filter='GoldenDataplane.*'\nand commit the new "
            << "fixture.";
    ADD_FAILURE() << message.str();
  }
}

TEST(GoldenDataplane, XcheckSeed20170701) { check_against_golden(20170701); }

TEST(GoldenDataplane, XcheckSeed20250808) { check_against_golden(20250808); }

}  // namespace
}  // namespace rwc
