// Reusable invariant checks for the property harness (tests/prop/) and the
// example-based suites (tests/test_determinism.cpp). Each check returns an
// InvariantResult instead of asserting, so the shrinking runner
// (tests/prop/shrink.hpp) can re-evaluate a property on halved fault plans
// and the final gtest failure can carry the minimized reproduction.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "core/hysteresis.hpp"
#include "graph/graph.hpp"
#include "optical/modulation.hpp"
#include "te/demand.hpp"
// InvariantResult / all_of and the RoundSignature helpers live in the
// shared tests/support/ library so the example-based suites and the fleet
// differential layer use the same definitions (same rwc::prop namespace).
#include "support/round_signature.hpp"

namespace rwc::prop {

/// No link may be configured above the ladder rate its observed SNR
/// supports at the controller's margin. `configured` and `snr` are indexed
/// by physical edge id; `snr` must be what the controller was shown (a
/// stale-telemetry fault changes what "observed" means, so callers feed the
/// per-round input, not ground truth).
inline InvariantResult check_capacity_bound(
    const optical::ModulationTable& table, std::span<const util::Db> snr,
    util::Db margin, std::span<const util::Gbps> configured) {
  if (configured.size() != snr.size())
    return InvariantResult::fail("configured/snr size mismatch");
  for (std::size_t i = 0; i < configured.size(); ++i) {
    const double raw = snr[i].value;
    const double observed =
        (std::isfinite(raw) && raw >= 0.0) ? raw : 0.0;  // sanitize contract
    const util::Gbps feasible =
        table.feasible_capacity(util::Db{observed}, margin);
    if (configured[i].value > feasible.value + 1e-9) {
      std::ostringstream out;
      out << "edge " << i << " configured " << configured[i].value
          << " Gbps exceeds feasible " << feasible.value << " Gbps at snr "
          << observed << " dB";
      return InvariantResult::fail(out.str());
    }
  }
  return InvariantResult::pass();
}

/// Flow conservation and capacity feasibility of an accepted assignment on
/// the physical topology:
///   * every path is contiguous src->dst for its demand, volumes >= 0;
///   * per-demand path volumes sum to the routed amount;
///   * per-edge load (recomputed from paths) stays within capacity
///     (non-negative residual) and matches edge_load_gbps;
///   * per-node net flow equals routed sources minus routed sinks.
inline InvariantResult check_flow_conservation(const graph::Graph& graph,
                                               const te::FlowAssignment& a,
                                               double tolerance = 1e-6) {
  std::vector<double> load(graph.edge_count(), 0.0);
  std::vector<double> balance(graph.node_count(), 0.0);
  for (std::size_t d = 0; d < a.routings.size(); ++d) {
    const auto& routing = a.routings[d];
    double routed = 0.0;
    for (const auto& [path, volume] : routing.paths) {
      if (volume.value < -tolerance)
        return InvariantResult::fail("negative path volume on demand " +
                                     std::to_string(d));
      graph::NodeId at = routing.demand.src;
      for (const graph::EdgeId edge : path.edges) {
        if (!edge.valid() ||
            static_cast<std::size_t>(edge.value) >= graph.edge_count())
          return InvariantResult::fail("invalid edge id on demand " +
                                       std::to_string(d));
        if (graph.edge(edge).src != at)
          return InvariantResult::fail("discontiguous path on demand " +
                                       std::to_string(d));
        load[static_cast<std::size_t>(edge.value)] += volume.value;
        at = graph.edge(edge).dst;
      }
      if (!path.edges.empty() && at != routing.demand.dst)
        return InvariantResult::fail("path misses destination on demand " +
                                     std::to_string(d));
      routed += volume.value;
    }
    if (std::abs(routed - routing.routed.value) > tolerance)
      return InvariantResult::fail(
          "path volumes do not sum to routed on demand " + std::to_string(d));
    balance[static_cast<std::size_t>(routing.demand.src.value)] -= routed;
    balance[static_cast<std::size_t>(routing.demand.dst.value)] += routed;
  }
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const graph::Edge& edge = graph.edge(graph::EdgeId{
        static_cast<std::int32_t>(e)});
    const double residual = edge.capacity.value - load[e];
    if (residual < -tolerance) {
      std::ostringstream out;
      out << "edge " << e << " overloaded: " << load[e] << " Gbps on "
          << edge.capacity.value << " Gbps capacity";
      return InvariantResult::fail(out.str());
    }
    if (e < a.edge_load_gbps.size() &&
        std::abs(a.edge_load_gbps[e] - load[e]) > tolerance)
      return InvariantResult::fail("edge_load_gbps mismatch on edge " +
                                   std::to_string(e));
    balance[static_cast<std::size_t>(edge.src.value)] += load[e];
    balance[static_cast<std::size_t>(edge.dst.value)] -= load[e];
  }
  // balance now holds (out - in) + routed_sink - routed_src per node: zero
  // everywhere when flow is conserved at transit nodes and endpoints.
  for (std::size_t n = 0; n < balance.size(); ++n)
    if (std::abs(balance[n]) > tolerance * 10.0)
      return InvariantResult::fail("flow not conserved at node " +
                                   std::to_string(n) + " (imbalance " +
                                   std::to_string(balance[n]) + " Gbps)");
  return InvariantResult::pass();
}

/// Model-based oracle for the hysteresis dwell contract: replays a
/// per-round input sequence for ONE link through its own streak counter and
/// checks each filtered output against core::HysteresisFilter semantics —
/// reductions pass immediately; an INCREASE above the configured rate is
/// only exposed after its rate has been continuously feasible (with the
/// extra margin) for `up_hold_rounds` consecutive rounds. Never-faster-
/// than-dwell is the contrapositive: any exposed increase implies a full
/// streak, so two increases are at least `up_hold_rounds` rounds apart.
struct HysteresisRound {
  util::Gbps raw_feasible{0.0};    // ladder rate at the base margin
  util::Gbps raw_with_extra{0.0};  // ladder rate at base + extra margin
  util::Gbps configured{0.0};      // configured rate entering the round
  util::Gbps output{0.0};          // what the filter returned
};

inline InvariantResult check_hysteresis_dwell(
    std::span<const HysteresisRound> rounds, const core::HysteresisParams& p) {
  double candidate = 0.0;  // rate being held for promotion
  int streak = 0;
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const HysteresisRound& r = rounds[i];
    std::ostringstream at;
    at << "round " << i << " (feasible=" << r.raw_feasible.value
       << " extra=" << r.raw_with_extra.value
       << " configured=" << r.configured.value << " out=" << r.output.value
       << "): ";
    if (r.raw_feasible.value <= r.configured.value) {
      // Reduction or hold: must pass through unchanged, and any promotion
      // progress is void (the target rate was not continuously feasible).
      if (r.output.value != r.raw_feasible.value)
        return InvariantResult::fail(at.str() + "reduction was dampened");
      candidate = 0.0;
      streak = 0;
      continue;
    }
    // An increase is on offer. Track the oracle's own streak on the
    // extra-margin rate, exactly as the contract states it.
    if (r.raw_with_extra.value > r.configured.value &&
        r.raw_with_extra.value == candidate) {
      ++streak;
    } else if (r.raw_with_extra.value > r.configured.value) {
      candidate = r.raw_with_extra.value;
      streak = 1;
    } else {
      candidate = 0.0;
      streak = 0;
    }
    if (r.output.value > r.configured.value) {
      if (streak < p.up_hold_rounds)
        return InvariantResult::fail(
            at.str() + "increase exposed after " + std::to_string(streak) +
            " rounds; dwell requires " + std::to_string(p.up_hold_rounds));
      if (r.output.value != candidate)
        return InvariantResult::fail(at.str() +
                                     "exposed rate differs from the rate "
                                     "that served the dwell");
      // The streak keeps running: while the caller's configured rate lags
      // the exposure, re-exposing every round is still dwell-compliant.
    } else if (r.output.value != r.configured.value) {
      return InvariantResult::fail(at.str() +
                                   "output is neither the configured rate "
                                   "nor a promoted increase");
    }
  }
  return InvariantResult::pass();
}

}  // namespace rwc::prop
