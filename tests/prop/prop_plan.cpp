// Properties of the fault-plan machinery itself, plus the harness's
// mutation checks: every invariant checker is fed a deliberately broken
// input and must catch it. A harness whose checkers cannot fail proves
// nothing — these tests are the proof that ours can.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "fault/registry.hpp"
#include "prop/generators.hpp"
#include "prop/seeds.hpp"
#include "prop/invariants.hpp"
#include "prop/shrink.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

// Default seed triple; the nightly sweep widens this via RWC_PROP_SEEDS
// (tests/prop/seeds.hpp).
const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({17, 29, 47});

TEST(PropPlan, SpecRoundTripsGeneratedPlans) {
  std::vector<prop::SiteProfile> profiles = prop::degrading_sites();
  const auto& timing = prop::timing_sites();
  profiles.insert(profiles.end(), timing.begin(), timing.end());
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng = util::Rng::stream(seed, 700);
    for (int trial = 0; trial < 20; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(profiles, rng, seed, 8);
      const std::string spec = plan.to_string();
      const fault::FaultPlan parsed = fault::FaultPlan::parse(spec);
      ASSERT_EQ(parsed.injections.size(), plan.injections.size())
          << "seed=" << seed << " spec=\"" << spec << "\"";
      for (std::size_t i = 0; i < plan.injections.size(); ++i) {
        const fault::Injection& a = plan.injections[i];
        const fault::Injection& b = parsed.injections[i];
        EXPECT_EQ(a.site, b.site) << spec;
        EXPECT_EQ(a.hit, b.hit) << spec;
        EXPECT_EQ(a.period, b.period) << spec;
        EXPECT_EQ(a.action.kind, b.action.kind) << spec;
        EXPECT_DOUBLE_EQ(a.action.magnitude, b.action.magnitude) << spec;
      }
      EXPECT_EQ(parsed.to_string(), spec);
    }
  }
}

TEST(PropPlan, ShrinkingIsolatesASingleCulpritInjection) {
  // A property that fails exactly when the plan schedules a bvt.reconfig
  // failure: the minimizer must descend to that single injection no matter
  // how much noise surrounds it.
  const prop::Property property = [](const fault::FaultPlan& plan) {
    for (const fault::Injection& injection : plan.injections)
      if (injection.site == "bvt.reconfig" &&
          injection.action.kind == fault::Kind::kFail)
        return prop::InvariantResult::fail("reconfig abort scheduled");
    return prop::InvariantResult::pass();
  };
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng = util::Rng::stream(seed, 800);
    fault::FaultPlan plan;
    plan.seed = seed;
    const auto& timing = prop::timing_sites();
    const std::size_t noise = static_cast<std::size_t>(
        rng.uniform_int(3, 9));
    const std::size_t culprit_at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(noise)));
    for (std::size_t i = 0; i <= noise; ++i) {
      if (i == culprit_at) {
        plan.injections.push_back(
            {"bvt.reconfig", 0, 0, {fault::Kind::kFail, 0.0}});
      } else {
        const auto& profile = timing[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(timing.size()) - 1))];
        plan.injections.push_back(prop::random_injection(profile, rng));
      }
    }
    const auto failure = prop::minimize_failure(plan, property);
    ASSERT_TRUE(failure.has_value()) << "seed=" << seed;
    ASSERT_EQ(failure->minimized.injections.size(), 1u) << "seed=" << seed;
    EXPECT_EQ(failure->minimized.injections.front().site, "bvt.reconfig");
    EXPECT_EQ(failure->minimized.injections.front().action.kind,
              fault::Kind::kFail);
  }
}

TEST(PropPlan, MinimizerReturnsNulloptOnPassingPlans) {
  const prop::Property always_pass = [](const fault::FaultPlan&) {
    return prop::InvariantResult::pass();
  };
  fault::FaultPlan plan;
  plan.injections.push_back({"exec.steal", 0, 1, {fault::Kind::kDelay, 0.1}});
  EXPECT_FALSE(prop::minimize_failure(plan, always_pass).has_value());
}

// ---- Mutation checks: corrupt an input, expect the checker to object. ----

TEST(PropMutation, CapacityBoundCatchesOverProvisionedLink) {
  const optical::ModulationTable table = optical::ModulationTable::standard();
  // 4 dB - 0.5 dB margin supports 50 G; configuring 100 G must be flagged.
  const std::vector<util::Db> snr = {util::Db{15.0}, util::Db{4.0}};
  const std::vector<util::Gbps> good = {util::Gbps{100.0}, util::Gbps{50.0}};
  const std::vector<util::Gbps> broken = {util::Gbps{100.0},
                                          util::Gbps{100.0}};
  EXPECT_TRUE(
      prop::check_capacity_bound(table, snr, util::Db{0.5}, good).ok);
  const auto result =
      prop::check_capacity_bound(table, snr, util::Db{0.5}, broken);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("edge 1"), std::string::npos);
}

TEST(PropMutation, FlowConservationCatchesOverloadAndLeaks) {
  graph::Graph graph;
  const graph::NodeId a = graph.add_node("a");
  const graph::NodeId b = graph.add_node("b");
  const graph::NodeId c = graph.add_node("c");
  const graph::EdgeId ab = graph.add_edge(a, b, util::Gbps{10.0});
  const graph::EdgeId bc = graph.add_edge(b, c, util::Gbps{10.0});

  te::FlowAssignment assignment;
  te::FlowAssignment::DemandRouting routing;
  routing.demand = {a, c, util::Gbps{8.0}, 0};
  routing.paths.emplace_back(graph::Path{{ab, bc}, 2.0}, util::Gbps{8.0});
  routing.routed = util::Gbps{8.0};
  assignment.routings.push_back(routing);
  assignment.edge_load_gbps = {8.0, 8.0};
  EXPECT_TRUE(prop::check_flow_conservation(graph, assignment).ok);

  // Mutation 1: volume beyond capacity.
  te::FlowAssignment overloaded = assignment;
  overloaded.routings[0].paths[0].second = util::Gbps{12.0};
  overloaded.routings[0].routed = util::Gbps{12.0};
  overloaded.edge_load_gbps = {12.0, 12.0};
  EXPECT_FALSE(prop::check_flow_conservation(graph, overloaded).ok);

  // Mutation 2: a path that leaks flow mid-way (stops at b, claims a->c).
  te::FlowAssignment leaking = assignment;
  leaking.routings[0].paths[0].first.edges = {ab};
  EXPECT_FALSE(prop::check_flow_conservation(graph, leaking).ok);

  // Mutation 3: per-demand volumes that do not sum to `routed`.
  te::FlowAssignment shorted = assignment;
  shorted.routings[0].routed = util::Gbps{5.0};
  EXPECT_FALSE(prop::check_flow_conservation(graph, shorted).ok);
}

TEST(PropMutation, HysteresisOracleCatchesPrematureIncrease) {
  core::HysteresisParams params;
  params.up_hold_rounds = 3;
  // Round 0 exposes 200 G immediately: a dwell violation by construction.
  const std::vector<prop::HysteresisRound> rounds = {
      {util::Gbps{200.0}, util::Gbps{200.0}, util::Gbps{100.0},
       util::Gbps{200.0}},
  };
  const auto result = prop::check_hysteresis_dwell(rounds, params);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("dwell"), std::string::npos);
}

TEST(PropMutation, SignatureCheckCatchesAnyFieldDivergence) {
  prop::RoundSignature a;
  a.upgrades = {{3, 150.0}};
  a.routed = 512.0;
  prop::RoundSignature b = a;
  EXPECT_TRUE(prop::check_signatures_equal(a, b, "same").ok);
  b.routed = 512.5;
  EXPECT_FALSE(prop::check_signatures_equal(a, b, "routed").ok);
  b = a;
  b.upgrades[0].second = 175.0;
  EXPECT_FALSE(prop::check_signatures_equal(a, b, "upgrades").ok);
}

TEST(PropPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(fault::FaultPlan::parse("nonsense"), util::CheckError);
  EXPECT_THROW(fault::FaultPlan::parse("site@x:fail"), util::CheckError);
  EXPECT_THROW(fault::FaultPlan::parse("site@1:notakind"), util::CheckError);
  EXPECT_THROW(fault::FaultPlan::parse("site%0@1:fail;"), util::CheckError);
}

}  // namespace
}  // namespace rwc
