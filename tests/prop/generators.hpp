// Seeded input generators for the property harness. Everything is a pure
// function of the util::Rng handed in, so a test that prints its seed is a
// complete reproduction recipe (pair with the minimized fault-plan spec
// from tests/prop/shrink.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "fault/plan.hpp"
#include "graph/graph.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/demand.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rwc::prop {

/// Connected Waxman WAN, 8-14 nodes at 100 Gbps nominal.
inline graph::Graph random_topology(util::Rng& rng) {
  const int nodes = static_cast<int>(rng.uniform_int(8, 14));
  return sim::waxman(nodes, rng);
}

/// Gravity matrix loading the topology to 30-70% of total capacity.
inline te::TrafficMatrix random_demands(const graph::Graph& graph,
                                        util::Rng& rng) {
  sim::GravityParams gravity;
  gravity.total =
      util::Gbps{graph.total_capacity().value * rng.uniform(0.3, 0.7)};
  gravity.sparsity = rng.uniform(0.0, 0.9);
  return sim::gravity_matrix(graph, gravity, rng);
}

/// Per-link SNR: mostly healthy (the ladder tops out at 13 dB), with a
/// degraded tail reaching below the 50 G threshold (3 dB) so rounds see
/// walk/crawl flaps, not only upgrades.
inline std::vector<util::Db> random_snr(std::size_t links, util::Rng& rng) {
  std::vector<util::Db> snr(links, util::Db{0.0});
  for (util::Db& value : snr)
    value = util::Db{rng.bernoulli(0.2) ? rng.uniform(0.0, 7.0)
                                        : rng.uniform(7.0, 20.0)};
  return snr;
}

/// What a generated injection may do at one site. Serial sites are keyed by
/// their own small hit counters, so one-shot (period 0) injections with
/// small hits fire; parallel sites are keyed by large deterministic values
/// (fingerprints, edge ids), so generated injections use period matching,
/// which fires for any key distribution.
struct SiteProfile {
  std::string_view site;
  bool serial = false;
  std::vector<fault::Kind> kinds;
};

/// Sites whose injections may change RESULTS (capacities, routing) but must
/// never break an invariant: the capacity-bound / conservation properties
/// draw from these.
inline const std::vector<SiteProfile>& degrading_sites() {
  static const std::vector<SiteProfile> sites = {
      {"core.snr", false,
       {fault::Kind::kStale, fault::Kind::kNan, fault::Kind::kGarbage,
        fault::Kind::kDrop}},
      {"flow.mincost", false, {fault::Kind::kBudget}},
  };
  return sites;
}

/// Sites whose injections are contractually TIMING-ONLY (cache forced
/// misses, steal-boundary delays): any property may include them and
/// results must be byte-identical to a run without them.
inline const std::vector<SiteProfile>& timing_sites() {
  static const std::vector<SiteProfile> sites = {
      {"cache.warm.find", false, {fault::Kind::kInvalidate}},
      {"cache.path.lookup", false, {fault::Kind::kInvalidate}},
      {"exec.steal", true, {fault::Kind::kDelay}},
  };
  return sites;
}

inline fault::Injection random_injection(const SiteProfile& profile,
                                         util::Rng& rng) {
  fault::Injection injection;
  injection.site = std::string(profile.site);
  injection.action.kind = profile.kinds[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(profile.kinds.size()) - 1))];
  if (profile.serial && rng.bernoulli(0.5)) {
    injection.period = 0;  // one-shot on an early hit
    injection.hit = static_cast<std::uint64_t>(rng.uniform_int(0, 7));
  } else {
    injection.period = static_cast<std::uint64_t>(rng.uniform_int(1, 4));
    injection.hit = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(injection.period) - 1));
  }
  switch (injection.action.kind) {
    case fault::Kind::kBudget:
      injection.action.magnitude = static_cast<double>(rng.uniform_int(0, 24));
      break;
    case fault::Kind::kStall:
      injection.action.magnitude = rng.uniform(0.1, 10.0);  // seconds
      break;
    case fault::Kind::kDelay:
      injection.action.magnitude = rng.uniform(0.05, 1.0);  // milliseconds
      break;
    default:
      injection.action.magnitude = 0.0;
  }
  return injection;
}

/// A schedule of 1..max_injections injections drawn from `profiles`.
inline fault::FaultPlan random_fault_plan(
    std::span<const SiteProfile> profiles, util::Rng& rng,
    std::uint64_t seed_for_provenance, std::size_t max_injections = 6) {
  fault::FaultPlan plan;
  plan.seed = seed_for_provenance;
  const std::size_t count = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(max_injections)));
  for (std::size_t i = 0; i < count; ++i) {
    const auto& profile = profiles[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(profiles.size()) - 1))];
    plan.injections.push_back(random_injection(profile, rng));
  }
  return plan;
}

}  // namespace rwc::prop
