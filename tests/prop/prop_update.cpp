// Consistent-update properties under fault injection (docs/UPDATE.md):
// controller-planned transition schedules executed with random
// update.commit / update.rollback fault plans must keep EVERY transient
// dataplane state congestion-free, black-hole-free and loop-free
// (check_dataplane is the oracle), commit monotonically (an aborted
// execution stops exactly on a committed-round prefix, never a torn
// round), and — when the schedule survives its faults — converge to a
// dataplane bit-identical to a fault-free run. Violations report the seed
// plus the halving-minimized plan spec (prop/shrink.hpp). The mutation
// checks at the bottom prove each oracle can actually reject a broken
// execution — a property that cannot fail is vacuous.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "optical/modulation.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "prop/seeds.hpp"
#include "prop/shrink.hpp"
#include "te/mcf_te.hpp"
#include "update/executor.hpp"
#include "update/schedule.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({13, 37, 59});

// Local site profiles: both executor sites are serial (fault::next on a
// per-site hit counter). update.commit understands kFail (roll back and
// retry the round) plus the timing kinds; update.rollback is timing-only
// by contract. kStall is safe here — the executor books the stall into
// its simulated makespan, it never sleeps.
const std::vector<prop::SiteProfile>& update_sites() {
  static const std::vector<prop::SiteProfile> sites = {
      {"update.commit", true,
       {fault::Kind::kFail, fault::Kind::kStall, fault::Kind::kDelay}},
      {"update.rollback", true,
       {fault::Kind::kStall, fault::Kind::kDelay}},
  };
  return sites;
}

/// Random WAN driven through a few controller rounds with the update
/// stage on; keeps every feasible non-empty transition schedule the
/// controller planned. Pure in `seed`.
struct UpdateFixture {
  graph::Graph topology;
  std::vector<update::UpdateSchedule> schedules;

  explicit UpdateFixture(std::uint64_t seed) {
    util::Rng rng = util::Rng::stream(seed, 650);
    topology = prop::random_topology(rng);
    const te::TrafficMatrix demands = prop::random_demands(topology, rng);
    core::ControllerOptions options;
    update::SchedulerConfig stage;
    stage.headroom = 0.1;
    stage.seed = seed;
    options.update = stage;
    const te::McfTe engine;
    core::DynamicCapacityController controller(
        topology, optical::ModulationTable::standard(), engine, options);
    for (std::uint64_t round = 0; round < 4; ++round) {
      util::Rng snr_rng = util::Rng::stream(seed, 660 + round);
      const auto snr = prop::random_snr(topology.edge_count(), snr_rng);
      const auto report = controller.run_round(snr, demands);
      if (report.update.has_value() && report.update->feasible &&
          !report.update->rounds.empty())
        schedules.push_back(*report.update);
    }
  }
};

/// Property 1+2: with `plan` armed, every state the executor ever exposes
/// — after each route move, each reconfig drain/commit step, and each
/// rollback step — satisfies check_dataplane: within capacity (plus
/// headroom / the static overload floor), no traffic on a drained link,
/// every route a simple contiguous src->dst path (loop- and
/// black-hole-free).
prop::InvariantResult transients_stay_clean(const UpdateFixture& fixture,
                                            const fault::FaultPlan& plan) {
  try {
    for (const update::UpdateSchedule& schedule : fixture.schedules) {
      std::string violation;
      bool clean = true;
      fault::ScopedPlan armed(plan);
      update::ScheduleExecutor executor(fixture.topology, schedule);
      executor.run([&](const update::DataplaneState& state) {
        if (clean && !update::check_dataplane(fixture.topology, schedule,
                                              state, &violation))
          clean = false;
      });
      if (!clean)
        return prop::InvariantResult::fail(
            "transient dataplane violation under plan \"" +
            plan.to_string() + "\": " + violation);
    }
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

/// Property 3: faults never corrupt state — they only retry, stretch
/// timing, or abort at a round boundary. A completed faulted execution
/// ends bit-identical to the fault-free run (and its makespan can only
/// have grown); an aborted one ends bit-identical to the fault-free
/// execution of exactly its committed-round prefix (monotone progress).
prop::InvariantResult faulted_replays_fault_free(
    const UpdateFixture& fixture, const fault::FaultPlan& plan) {
  try {
    for (const update::UpdateSchedule& schedule : fixture.schedules) {
      update::ScheduleExecutor faulted(fixture.topology, schedule);
      {
        fault::ScopedPlan armed(plan);
        faulted.run();
      }
      const update::ExecutionResult& result = faulted.result();
      update::ScheduleExecutor reference(fixture.topology, schedule);
      reference.run_rounds(result.rounds_committed);
      if (!(faulted.state() == reference.state()))
        return prop::InvariantResult::fail(
            "faulted execution (committed " +
            std::to_string(result.rounds_committed) + "/" +
            std::to_string(schedule.rounds.size()) +
            " rounds) diverged from the fault-free replay of its "
            "committed prefix under plan \"" + plan.to_string() + "\"");
      if (result.completed &&
          result.makespan_seconds <
              reference.result().makespan_seconds - 1e-12)
        return prop::InvariantResult::fail(
            "faults shortened the makespan under plan \"" +
            plan.to_string() + "\"");
      if (result.aborted && result.rounds_committed >= schedule.rounds.size())
        return prop::InvariantResult::fail(
            "aborted execution claims a full commit under plan \"" +
            plan.to_string() + "\"");
      if (!result.aborted &&
          result.rounds_committed != schedule.rounds.size())
        return prop::InvariantResult::fail(
            "non-aborted execution stopped early under plan \"" +
            plan.to_string() + "\"");
    }
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropUpdate, TransientStatesStayCongestionAndLoopFreeUnderFaults) {
  // Vacuity guards: the fixtures must actually produce schedules, and the
  // generated plans must actually fire inside the executor.
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  std::size_t schedules = 0;
  for (const std::uint64_t seed : kSeeds) {
    const UpdateFixture fixture(seed);
    schedules += fixture.schedules.size();
    util::Rng fault_rng = util::Rng::stream(seed, 651);
    for (int trial = 0; trial < 2; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(update_sites(), fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return transients_stay_clean(fixture,
                                                           candidate);
                            });
    }
  }
  EXPECT_GT(schedules, 0u)
      << "no fixture produced a transition schedule — nothing was tested";
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

TEST(PropUpdate, FaultedExecutionReplaysBitIdenticallyFaultFree) {
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  std::size_t schedules = 0;
  for (const std::uint64_t seed : kSeeds) {
    const UpdateFixture fixture(seed);
    schedules += fixture.schedules.size();
    util::Rng fault_rng = util::Rng::stream(seed, 652);
    for (int trial = 0; trial < 2; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(update_sites(), fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return faulted_replays_fault_free(fixture,
                                                                candidate);
                            });
    }
  }
  EXPECT_GT(schedules, 0u)
      << "no fixture produced a transition schedule — nothing was tested";
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

// ---- Mutation checks: each oracle must reject a broken execution. -----

TEST(PropUpdate, MutationTransientOracleRejectsOversubscription) {
  const UpdateFixture fixture(kSeeds.front());
  ASSERT_FALSE(fixture.schedules.empty());
  // Inflate the first route move far beyond any link: executing the
  // broken schedule must trip the transient oracle even fault-free.
  update::UpdateSchedule broken = fixture.schedules.front();
  bool mutated = false;
  for (auto& round : broken.rounds) {
    for (auto& move : round.moves)
      if (move.kind != update::Move::Kind::kReconfig) {
        move.volume = util::Gbps{1e6};
        mutated = true;
        break;
      }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  UpdateFixture poisoned = fixture;
  poisoned.schedules = {broken};
  const prop::InvariantResult result =
      transients_stay_clean(poisoned, fault::FaultPlan{});
  EXPECT_FALSE(result.ok);
}

TEST(PropUpdate, MutationReplayOracleRejectsDivergentPrefixes) {
  const UpdateFixture fixture(kSeeds.front());
  ASSERT_FALSE(fixture.schedules.empty());
  // A schedule whose round list was quietly truncated after planning: the
  // faulted arm executes fewer rounds than the reference replays, so the
  // prefix comparison must reject it.
  update::UpdateSchedule truncated = fixture.schedules.front();
  ASSERT_FALSE(truncated.rounds.empty());
  UpdateFixture reference = fixture;
  reference.schedules = {fixture.schedules.front()};
  update::ScheduleExecutor full(reference.topology,
                                reference.schedules.front());
  full.run();
  truncated.rounds.pop_back();
  update::ScheduleExecutor partial(reference.topology, truncated);
  partial.run();
  EXPECT_FALSE(full.state() == partial.state())
      << "dropping a round left the final dataplane unchanged — the "
         "bit-identity oracle would never fire on this fixture";
}

}  // namespace
}  // namespace rwc
