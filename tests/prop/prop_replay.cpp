// Replay-layer properties (tests/prop/): on randomized topologies and
// demand matrices, (1) restore-then-continue is bit-identical to the
// uninterrupted run from any checkpoint round, (2) a corrupted newest
// checkpoint makes restore_latest fall back to the previous one
// deterministically (the `replay.restore` fault site injects the
// corruption), and (3) no single-byte corruption of a serialized
// checkpoint ever decodes as valid — the format's framing + CRCs catch
// every flip, without crashing.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "prop/generators.hpp"
#include "prop/seeds.hpp"
#include "prop/invariants.hpp"
#include "replay/checkpoint.hpp"
#include "replay/driver.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using replay::Checkpoint;
using replay::CheckpointStore;
using replay::Error;
using replay::ReplayConfig;
using replay::ReplayDriver;

// Default seed triple; the nightly sweep widens this via RWC_PROP_SEEDS
// (tests/prop/seeds.hpp).
const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({17, 29, 47});

struct ReplayFixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  ReplayConfig config;
};

ReplayFixture make_fixture(std::uint64_t seed) {
  util::Rng rng = util::Rng::stream(seed, 300);
  ReplayFixture fixture;
  fixture.topology = prop::random_topology(rng);
  fixture.demands = prop::random_demands(fixture.topology, rng);
  fixture.config.rounds = 12;
  fixture.config.chunk_rounds = 5;  // off-round-count chunking forces refills
  fixture.config.seed = seed;
  return fixture;
}

TEST(PropReplay, RestoreContinueMatchesUninterruptedRun) {
  const te::McfTe engine;
  for (const std::uint64_t seed : kSeeds) {
    const ReplayFixture fixture = make_fixture(seed);
    const std::string context = "seed " + std::to_string(seed);

    std::vector<prop::RoundSignature> reference;
    std::vector<Checkpoint> checkpoints;
    ReplayDriver driver(fixture.topology, engine, fixture.demands,
                        fixture.config);
    while (!driver.done()) {
      checkpoints.push_back(driver.checkpoint());  // one per round boundary
      reference.push_back(prop::signature_of(driver.step()));
    }

    for (std::size_t k = 0; k < checkpoints.size(); ++k) {
      ReplayDriver resumed(fixture.topology, engine, fixture.demands,
                           fixture.config);
      ASSERT_EQ(resumed.restore(checkpoints[k]), Error::kNone)
          << context << ", checkpoint " << k;
      for (std::size_t r = k; r < reference.size(); ++r) {
        const prop::InvariantResult check = prop::check_signatures_equal(
            reference[r], prop::signature_of(resumed.step()),
            context + ", checkpoint " + std::to_string(k) + ", round " +
                std::to_string(r));
        ASSERT_TRUE(check.ok) << check.detail;
      }
      ASSERT_EQ(resumed.signature_chain(), driver.signature_chain())
          << context << ", checkpoint " << k;
    }
  }
}

TEST(PropReplay, CorruptedNewestCheckpointFallsBackDeterministically) {
  const te::McfTe engine;
  for (const std::uint64_t seed : kSeeds) {
    const std::string context = "seed " + std::to_string(seed);
    const ReplayFixture fixture = make_fixture(seed);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("rwc-prop-replay-" + std::to_string(seed));
    std::filesystem::remove_all(dir);
    CheckpointStore store(dir, /*keep=*/4);

    std::vector<prop::RoundSignature> reference;
    ReplayDriver driver(fixture.topology, engine, fixture.demands,
                        fixture.config);
    Checkpoint at4, at8;
    while (!driver.done()) {
      if (driver.round() == 4) at4 = driver.checkpoint();
      if (driver.round() == 8) at8 = driver.checkpoint();
      reference.push_back(prop::signature_of(driver.step()));
    }
    ASSERT_EQ(store.write(at4), Error::kNone) << context;
    ASSERT_EQ(store.write(at8), Error::kNone) << context;

    const std::uint64_t rejected_before =
        obs::Registry::global().counter("replay.restore.rejected").value();
    ReplayDriver resumed(fixture.topology, engine, fixture.demands,
                         fixture.config);
    {
      // First read (the newest file, round 8) arrives truncated; the store
      // must fall back to the round-4 checkpoint, which reads clean.
      fault::ScopedPlan plan(
          fault::FaultPlan::parse("replay.restore@0:drop"));
      ASSERT_EQ(resumed.restore_latest(store), Error::kNone) << context;
    }
    ASSERT_EQ(resumed.round(), 4u) << context;
    EXPECT_GT(
        obs::Registry::global().counter("replay.restore.rejected").value(),
        rejected_before)
        << context;

    // The fallback continuation still matches the reference tail exactly.
    for (std::size_t r = 4; r < reference.size(); ++r) {
      const prop::InvariantResult check = prop::check_signatures_equal(
          reference[r], prop::signature_of(resumed.step()),
          context + ", round " + std::to_string(r));
      ASSERT_TRUE(check.ok) << check.detail;
    }
    ASSERT_EQ(resumed.signature_chain(), driver.signature_chain()) << context;
    std::filesystem::remove_all(dir);
  }
}

TEST(PropReplay, SingleByteFlipsNeverDecode) {
  const te::McfTe engine;
  for (const std::uint64_t seed : kSeeds) {
    const ReplayFixture fixture = make_fixture(seed);
    ReplayConfig config = fixture.config;
    // Mandatory sections only: with the optional cache/obs sections
    // present, one flip of a section id could in principle re-tag an
    // optional section as skippable-unknown and still decode. Every byte
    // of a mandatory-only checkpoint is load-bearing.
    config.checkpoint_caches = false;
    config.checkpoint_obs = false;
    ReplayDriver driver(fixture.topology, engine, fixture.demands, config);
    driver.run(3);
    const std::vector<std::byte> bytes = replay::encode(driver.checkpoint());

    util::Rng rng = util::Rng::stream(seed, 301);
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t offset = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      const std::byte flip{
          static_cast<unsigned char>(rng.uniform_int(1, 255))};
      std::vector<std::byte> corrupted = bytes;
      corrupted[offset] ^= flip;
      Checkpoint out;
      const Error error = replay::decode(corrupted, out);
      EXPECT_NE(error, Error::kNone)
          << "seed " << seed << ": flipping byte " << offset << " with 0x"
          << std::hex << std::to_integer<int>(flip)
          << " decoded as a valid checkpoint";
    }
  }
}

}  // namespace
}  // namespace rwc
