// Fleet-level properties (docs/FLEET.md): on randomized fleet
// configurations, (1) the incremental re-solve hot path is bit-identical
// to full re-solves under randomized fault plans drawn from the
// parallel-keyed sites, (2) the fleet chain is invariant to shard count
// and pool size, and (3) each instance is a pure function of
// (seed, instance id) — its slot equals a direct run. Failing plans are
// minimized by the shrinking runner.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "fault/registry.hpp"
#include "fleet/fleet.hpp"
#include "prop/generators.hpp"
#include "prop/seeds.hpp"
#include "prop/shrink.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using fleet::FleetConfig;
using fleet::FleetResult;

/// Fleet fixture sized for a property iteration: a handful of instances
/// with randomized size/load parameters.
FleetConfig random_fleet(std::uint64_t seed, util::Rng& rng) {
  FleetConfig config;
  config.instances = static_cast<std::size_t>(rng.uniform_int(3, 5));
  config.shards = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(config.instances)));
  config.rounds = static_cast<std::uint64_t>(rng.uniform_int(6, 9));
  config.seed = seed * 977 + 13;
  config.min_nodes = 8;
  config.max_nodes = 10;
  config.demand_load = rng.uniform(0.3, 0.6);
  return config;
}

TEST(PropFleet, IncrementalEqualsFullUnderFaultPlans) {
  for (const std::uint64_t seed : prop::sweep_seeds({5, 19, 37})) {
    util::Rng rng = util::Rng::stream(seed, 500);
    const FleetConfig base = random_fleet(seed, rng);
    // Parallel-keyed degrading sites only: injections fire by per-instance
    // keys, so both arms (and any shard layout) see identical faults.
    const fault::FaultPlan plan =
        prop::random_fault_plan(prop::degrading_sites(), rng, seed);
    prop::expect_property(
        seed, plan, [&](const fault::FaultPlan& active) {
          const auto run = [&](bool incremental) {
            FleetConfig config = base;
            config.incremental = incremental;
            fault::ScopedPlan armed(active);
            return fleet::run_fleet(config);
          };
          const FleetResult full = run(false);
          const FleetResult incremental = run(true);
          if (full.fleet_chain != incremental.fleet_chain)
            return prop::InvariantResult::fail(
                "fleet chain diverged: full vs incremental under plan \"" +
                active.to_string() + "\"");
          for (std::size_t i = 0; i < full.instances.size(); ++i)
            if (full.instances[i].signature_chain !=
                incremental.instances[i].signature_chain)
              return prop::InvariantResult::fail(
                  "instance " + std::to_string(i) + " diverged under plan \"" +
                  active.to_string() + "\"");
          return prop::InvariantResult::pass();
        });
  }
}

TEST(PropFleet, PartialTierEqualsColdSolversUnderFaultPlans) {
  // The solver ladder's middle rung (docs/SOLVERS.md) on randomized
  // fleets: with the partial tier on, every fleet chain — under a
  // randomized parallel-keyed fault plan — equals the cold-solver run.
  // Diurnal demands make the tier's residual-only perturbation case occur.
  for (const std::uint64_t seed : prop::sweep_seeds({9, 27})) {
    util::Rng rng = util::Rng::stream(seed, 503);
    FleetConfig base = random_fleet(seed, rng);
    base.diurnal = true;
    const fault::FaultPlan plan =
        prop::random_fault_plan(prop::degrading_sites(), rng, seed);
    prop::expect_property(
        seed, plan, [&](const fault::FaultPlan& active) {
          const auto run = [&](bool partial) {
            FleetConfig config = base;
            config.partial = partial;
            fault::ScopedPlan armed(active);
            return fleet::run_fleet(config);
          };
          const FleetResult cold = run(false);
          const FleetResult partial = run(true);
          if (cold.fleet_chain != partial.fleet_chain)
            return prop::InvariantResult::fail(
                "fleet chain diverged: cold vs partial tier under plan \"" +
                active.to_string() + "\"");
          for (std::size_t i = 0; i < cold.instances.size(); ++i)
            if (cold.instances[i].signature_chain !=
                partial.instances[i].signature_chain)
              return prop::InvariantResult::fail(
                  "instance " + std::to_string(i) + " diverged under plan \"" +
                  active.to_string() + "\"");
          return prop::InvariantResult::pass();
        });
  }
}

TEST(PropFleet, FleetChainInvariantToShardsAndPools) {
  for (const std::uint64_t seed : prop::sweep_seeds({7, 21})) {
    util::Rng rng = util::Rng::stream(seed, 501);
    const FleetConfig base = random_fleet(seed, rng);
    const std::string context = "seed " + std::to_string(seed);
    const FleetResult reference = fleet::run_fleet(base);

    const std::size_t other_shards = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(base.instances)));
    const std::size_t pool_threads =
        static_cast<std::size_t>(rng.uniform_int(0, 8));
    exec::ThreadPool pool(pool_threads);
    FleetConfig variant = base;
    variant.shards = other_shards;
    variant.pool = &pool;
    const FleetResult got = fleet::run_fleet(variant);
    EXPECT_EQ(got.fleet_chain, reference.fleet_chain)
        << context << ": shards " << base.shards << " -> " << other_shards
        << ", pool " << pool_threads;
    EXPECT_EQ(got.total_rounds, reference.total_rounds) << context;
    EXPECT_EQ(got.failure_events, reference.failure_events) << context;
  }
}

TEST(PropFleet, InstancesArePureFunctionsOfSeedAndId) {
  for (const std::uint64_t seed : prop::sweep_seeds({3, 13})) {
    util::Rng rng = util::Rng::stream(seed, 502);
    const FleetConfig config = random_fleet(seed, rng);
    const std::string context = "seed " + std::to_string(seed);
    const FleetResult fleet_run = fleet::run_fleet(config);
    ASSERT_EQ(fleet_run.instances.size(), config.instances) << context;
    for (std::size_t i = 0; i < config.instances; ++i) {
      const fleet::InstanceResult direct = fleet::run_instance(config, i);
      EXPECT_EQ(direct.signature_chain,
                fleet_run.instances[i].signature_chain)
          << context << ", instance " << i;
      EXPECT_EQ(direct.rounds, fleet_run.instances[i].rounds)
          << context << ", instance " << i;
    }
  }
}

}  // namespace
}  // namespace rwc
