// Demand-estimation properties under fault injection (tests/prop/,
// docs/DEMAND.md): (1) whatever a random demand.counter / demand.solve
// plan does to the counter stream, every estimate the controller solves
// stays finite and non-negative — corrupted telemetry degrades the
// estimate, never the invariants; (2) the record-before-apply contract:
// a live estimated run with counter faults armed replays BIT-IDENTICALLY
// from its recorded CounterLog with no faults armed — the log records
// what the estimator consumed, after faults. Violations report the seed
// plus the halving-minimized plan spec (prop/shrink.hpp).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "optical/modulation.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "prop/seeds.hpp"
#include "prop/shrink.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({17, 29, 47});

// Local site profiles: demand sites are not in prop::degrading_sites()
// because their contracts are demand-specific. demand.counter is parallel
// (keyed by edge id); demand.solve is serial (one hit per estimate call).
const std::vector<prop::SiteProfile>& demand_counter_sites() {
  static const std::vector<prop::SiteProfile> sites = {
      {"demand.counter", false,
       {fault::Kind::kDrop, fault::Kind::kGarbage, fault::Kind::kNan,
        fault::Kind::kStale, fault::Kind::kDuplicate}},
  };
  return sites;
}

// The replay property deliberately excludes demand.solve: the solve site
// fires AFTER the counters are recorded (it degrades the inversion, not
// the stream), so the log cannot absorb it — only counter faults are
// covered by the replay contract (docs/DEMAND.md §5).
const std::vector<prop::SiteProfile>& demand_all_sites() {
  static const std::vector<prop::SiteProfile> sites = {
      demand_counter_sites()[0],
      {"demand.solve", true, {fault::Kind::kBudget}},
  };
  return sites;
}

// Constructed in place (McfTe is neither copyable nor movable).
struct DemandFixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  te::McfTe engine;

  explicit DemandFixture(std::uint64_t seed) {
    util::Rng rng = util::Rng::stream(seed, 810);
    topology = prop::random_topology(rng);
    demands = prop::random_demands(topology, rng);
  }
};

/// Deterministic per-round SNR, pure in (seed, round) — the schedule
/// replays exactly across property re-evaluations and both arms.
std::vector<util::Db> snr_for(std::uint64_t seed, std::uint64_t round,
                              std::size_t edges) {
  util::Rng rng = util::Rng::stream(seed, 820 + round);
  return prop::random_snr(edges, rng);
}

core::ControllerOptions estimated_options(std::size_t record_rounds) {
  core::ControllerOptions options;
  options.demand.source = demand::DemandSource::kEstimated;
  options.demand.noise = 0.02;
  options.demand.loss_rate = 0.01;
  options.demand.record_rounds = record_rounds;
  return options;
}

prop::InvariantResult estimates_stay_sane(DemandFixture& fixture,
                                          std::uint64_t seed,
                                          const fault::FaultPlan& plan) {
  constexpr std::uint64_t kRounds = 5;
  try {
    core::DynamicCapacityController controller(
        fixture.topology, optical::ModulationTable::standard(), fixture.engine,
        estimated_options(kRounds));
    fault::ScopedPlan armed(plan);
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      const auto snr = snr_for(seed, round, fixture.topology.edge_count());
      controller.run_round(snr, fixture.demands);
      const demand::DemandPipeline* pipeline = controller.demand_pipeline();
      if (pipeline == nullptr)
        return prop::InvariantResult::fail(
            "estimated-mode controller has no demand pipeline");
      const te::TrafficMatrix& estimated = pipeline->last_estimated();
      if (estimated.size() != fixture.demands.size())
        return prop::InvariantResult::fail(
            "estimate lost ODs under plan \"" + plan.to_string() + "\"");
      for (std::size_t j = 0; j < estimated.size(); ++j) {
        const double volume = estimated[j].volume.value;
        if (!std::isfinite(volume) || volume < 0.0)
          return prop::InvariantResult::fail(
              "round " + std::to_string(round) + " od " + std::to_string(j) +
              " estimated " + std::to_string(volume) + " under plan \"" +
              plan.to_string() + "\"");
      }
    }
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropDemand, EstimatesStayFiniteNonNegativeUnderFaultPlans) {
  // Vacuity guards: the generated plans must actually fire, and the
  // corrupt kinds must actually reach the sanitizer — otherwise the
  // invariant above is tested against clean counters.
  auto& registry = obs::Registry::global();
  const std::uint64_t injected_before =
      registry.counter("fault.injected").value();
  const std::uint64_t sanitized_before =
      registry.counter("demand.counters_sanitized").value() +
      registry.counter("demand.counters_dropped").value();
  for (const std::uint64_t seed : kSeeds) {
    DemandFixture fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 811);
    for (int trial = 0; trial < 2; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(demand_all_sites(), fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return estimates_stay_sane(fixture, seed,
                                                         candidate);
                            });
    }
  }
  EXPECT_GT(registry.counter("fault.injected").value(), injected_before)
      << "no generated injection ever fired — the property is vacuous";
  EXPECT_GT(registry.counter("demand.counters_sanitized").value() +
                registry.counter("demand.counters_dropped").value(),
            sanitized_before)
      << "no corrupt counter ever reached the sanitizer — the property "
         "never exercised the degraded path";
}

/// Live faulted run, then a fault-free replay of the recorded CounterLog
/// through a fresh controller: round signatures and the final estimated
/// volumes must match bitwise — faults fire before the log records, so
/// whatever survived IS the canonical counter stream.
prop::InvariantResult replay_matches_live(DemandFixture& fixture,
                                          std::uint64_t seed,
                                          const fault::FaultPlan& plan) {
  constexpr std::uint64_t kRounds = 5;
  try {
    core::DynamicCapacityController live(
        fixture.topology, optical::ModulationTable::standard(), fixture.engine,
        estimated_options(kRounds));
    std::vector<prop::RoundSignature> live_signatures;
    {
      fault::ScopedPlan armed(plan);
      for (std::uint64_t round = 0; round < kRounds; ++round)
        live_signatures.push_back(prop::signature_of(live.run_round(
            snr_for(seed, round, fixture.topology.edge_count()),
            fixture.demands)));
    }
    const demand::DemandPipeline* live_pipeline = live.demand_pipeline();
    if (live_pipeline == nullptr)
      return prop::InvariantResult::fail("live controller has no pipeline");
    if (live_pipeline->log().size() != kRounds)
      return prop::InvariantResult::fail(
          "CounterLog recorded " +
          std::to_string(live_pipeline->log().size()) + " of " +
          std::to_string(kRounds) + " rounds");

    core::DynamicCapacityController replayed(
        fixture.topology, optical::ModulationTable::standard(), fixture.engine,
        estimated_options(kRounds));
    demand::DemandPipeline* replay_pipeline = replayed.demand_pipeline();
    for (std::size_t i = 0; i < kRounds; ++i)
      replay_pipeline->push_replay(live_pipeline->log().at(i));
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      const prop::RoundSignature got = prop::signature_of(replayed.run_round(
          snr_for(seed, round, fixture.topology.edge_count()),
          fixture.demands));
      const prop::InvariantResult check = prop::check_signatures_equal(
          live_signatures[round], got,
          "fault-free log replay, round " + std::to_string(round) +
              ", plan \"" + plan.to_string() + "\"");
      if (!check.ok) return check;
    }

    const te::TrafficMatrix& live_estimate = live_pipeline->last_estimated();
    const te::TrafficMatrix& replay_estimate =
        replay_pipeline->last_estimated();
    if (live_estimate.size() != replay_estimate.size())
      return prop::InvariantResult::fail("replay estimate lost ODs");
    for (std::size_t j = 0; j < live_estimate.size(); ++j) {
      const double a = live_estimate[j].volume.value;
      const double b = replay_estimate[j].volume.value;
      if (std::bit_cast<std::uint64_t>(a) != std::bit_cast<std::uint64_t>(b))
        return prop::InvariantResult::fail(
            "od " + std::to_string(j) + " final estimate diverged: live " +
            std::to_string(a) + " vs replay " + std::to_string(b) +
            " under plan \"" + plan.to_string() + "\"");
    }
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropDemand, FaultedRunsReplayBitIdenticallyFromTheCounterLog) {
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  for (const std::uint64_t seed : kSeeds) {
    DemandFixture fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 812);
    for (int trial = 0; trial < 2; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(demand_counter_sites(), fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return replay_matches_live(fixture, seed,
                                                         candidate);
                            });
    }
  }
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

}  // namespace
}  // namespace rwc
