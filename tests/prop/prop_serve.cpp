// Serve-path properties under fault injection (tests/prop/): the
// determinism-over-ingest-log contract (docs/SERVE.md) on randomized
// services. (1) With drop/garbage/nan faults firing inside the ingest
// offer path, a fault-free replay of the recorded log still reproduces
// the live signature chain — the log records what the service consumed,
// after faults, before sanitization. (2) serve.publish delays are
// contractually timing-only: a delayed run chains identically to an
// undelayed one. Violations report the seed plus the halving-minimized
// plan spec (prop/shrink.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "prop/seeds.hpp"
#include "prop/shrink.hpp"
#include "serve/service.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({17, 29, 47});

// Local site profiles: serve sites are not in prop::degrading_sites()
// because their contract (log-absorbs-faults) differs from the
// capacity-bound properties drawn from that list. kStall is deliberately
// absent — random_injection draws 0.1-10 s stall magnitudes, which only
// the targeted selfcheck (bench/serve_loop --selfcheck) exercises.
const std::vector<prop::SiteProfile>& serve_ingest_sites() {
  static const std::vector<prop::SiteProfile> sites = {
      {"serve.ingest", false,
       {fault::Kind::kDrop, fault::Kind::kGarbage, fault::Kind::kNan}},
  };
  return sites;
}

const std::vector<prop::SiteProfile>& serve_publish_sites() {
  static const std::vector<prop::SiteProfile> sites = {
      {"serve.publish", true, {fault::Kind::kDelay}},
  };
  return sites;
}

// Constructed in place (McfTe is neither copyable nor movable).
struct ServeFixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  te::McfTe engine;

  explicit ServeFixture(std::uint64_t seed) {
    util::Rng rng = util::Rng::stream(seed, 600);
    topology = prop::random_topology(rng);
    demands = prop::random_demands(topology, rng);
  }
};

/// Deterministic telemetry for one round: pure in (seed, round), so the
/// schedule replays exactly across property re-evaluations.
std::vector<serve::IngestEvent> events_for(std::uint64_t seed,
                                           std::uint64_t round,
                                           std::size_t edges,
                                           std::size_t demand_count) {
  util::Rng rng = util::Rng::stream(seed, 700 + round);
  std::vector<serve::IngestEvent> events;
  const int count = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < count; ++i) {
    if (demand_count > 0 && rng.bernoulli(0.25)) {
      events.push_back(
          {serve::IngestType::kDemand,
           static_cast<std::uint32_t>(rng.uniform_int(
               0, static_cast<std::int64_t>(demand_count) - 1)),
           rng.uniform(0.0, 50.0)});
    } else {
      events.push_back(
          {serve::IngestType::kSnr,
           static_cast<std::uint32_t>(rng.uniform_int(
               0, static_cast<std::int64_t>(edges) - 1)),
           rng.uniform(2.0, 20.0)});
    }
  }
  return events;
}

/// Live run with `plan` armed across the ingest offers, then a fault-free
/// replay of the recorded log: the chains must match — faults fire before
/// the log records, so whatever survived IS the canonical input stream.
prop::InvariantResult log_contract(const ServeFixture& fixture,
                                   std::uint64_t seed,
                                   const fault::FaultPlan& plan) {
  constexpr std::uint64_t kRounds = 5;
  try {
    serve::ServeService live(fixture.topology, fixture.engine,
                             fixture.demands);
    {
      fault::ScopedPlan armed(plan);
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        for (const serve::IngestEvent& event :
             events_for(seed, round, fixture.topology.edge_count(),
                        fixture.demands.size()))
          live.queue().offer(event);
        live.step();
      }
    }

    serve::ServeService replayed(fixture.topology, fixture.engine,
                                 fixture.demands);
    for (std::size_t round = 0; round < live.log().rounds(); ++round)
      replayed.step(live.log().batch(round));

    if (replayed.round() != live.round())
      return prop::InvariantResult::fail(
          "replay round count diverged under plan \"" + plan.to_string() +
          "\"");
    if (replayed.signature_chain() != live.signature_chain())
      return prop::InvariantResult::fail(
          "fault-free replay of the ingest log diverged from the live "
          "chain under plan \"" + plan.to_string() + "\"");
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropServe, FaultedIngestReplaysFaultFreeFromTheRecordedLog) {
  // Vacuity guard: the generated plans must actually fire inside the
  // offer path, or the contract above is tested against nothing.
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  for (const std::uint64_t seed : kSeeds) {
    const ServeFixture fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 601);
    for (int trial = 0; trial < 2; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(serve_ingest_sites(), fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return log_contract(fixture, seed, candidate);
                            });
    }
  }
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

/// The same deterministic schedule stepped with and without publish-path
/// delay faults: serve.publish is contractually timing-only (the sleep
/// happens before the atomic swap, outside any reader-visible state), so
/// both runs must chain identically.
prop::InvariantResult publish_is_timing_only(const ServeFixture& fixture,
                                             std::uint64_t seed,
                                             const fault::FaultPlan& plan) {
  constexpr std::uint64_t kRounds = 4;
  try {
    const auto run = [&](const fault::FaultPlan* armed_plan) {
      serve::ServeService service(fixture.topology, fixture.engine,
                                  fixture.demands);
      if (armed_plan != nullptr) {
        fault::ScopedPlan armed(*armed_plan);
        for (std::uint64_t round = 0; round < kRounds; ++round)
          service.step(events_for(seed, round,
                                  fixture.topology.edge_count(),
                                  fixture.demands.size()));
        return service.signature_chain();
      }
      for (std::uint64_t round = 0; round < kRounds; ++round)
        service.step(events_for(seed, round, fixture.topology.edge_count(),
                                fixture.demands.size()));
      return service.signature_chain();
    };
    const std::uint64_t reference = run(nullptr);
    const std::uint64_t delayed = run(&plan);
    if (reference != delayed)
      return prop::InvariantResult::fail(
          "publish delay changed the signature chain under plan \"" +
          plan.to_string() + "\" — serve.publish must be timing-only");
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropServe, PublishDelaysNeverChangeTheChain) {
  for (const std::uint64_t seed : kSeeds) {
    const ServeFixture fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 602);
    const fault::FaultPlan plan =
        prop::random_fault_plan(serve_publish_sites(), fault_rng, seed);
    prop::expect_property(seed, plan,
                          [&](const fault::FaultPlan& candidate) {
                            return publish_is_timing_only(fixture, seed,
                                                          candidate);
                          });
  }
}

}  // namespace
}  // namespace rwc
