// Seed schedule for the property harness.
//
// Every prop suite iterates sweep_seeds(defaults): a short pinned list for
// interactive/CI tier2 runs, overridable through the RWC_PROP_SEEDS
// environment variable for the nightly sweep and for replaying a failure:
//
//   RWC_PROP_SEEDS=100            -> seeds 1..100 (the nightly 100-seed job)
//   RWC_PROP_SEEDS=29,            -> exactly seed 29 (replay a failure)
//   RWC_PROP_SEEDS=17,29,47       -> exactly those seeds
//
// A bare number N <= 1000 expands to the range 1..N; anything with a comma
// is an explicit list (a trailing comma selects a single seed). shrink.hpp's
// failure message prints the matching RWC_PROP_SEEDS=<seed>, assignment, so
// the repro command is paste-ready.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

namespace rwc::prop {

inline std::vector<std::uint64_t> sweep_seeds(
    std::initializer_list<std::uint64_t> defaults) {
  const char* env = std::getenv("RWC_PROP_SEEDS");
  if (env == nullptr || *env == '\0')
    return std::vector<std::uint64_t>(defaults);
  std::vector<std::uint64_t> seeds;
  const std::string spec(env);
  if (spec.find(',') == std::string::npos) {
    const std::uint64_t n = std::strtoull(spec.c_str(), nullptr, 10);
    if (n == 0) return std::vector<std::uint64_t>(defaults);
    if (n <= 1000) {
      for (std::uint64_t s = 1; s <= n; ++s) seeds.push_back(s);
    } else {
      seeds.push_back(n);  // a large value is a literal seed, not a count
    }
    return seeds;
  }
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t end = spec.find(',', begin);
    const std::string token =
        spec.substr(begin, end == std::string::npos ? end : end - begin);
    if (!token.empty())
      seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  if (seeds.empty()) return std::vector<std::uint64_t>(defaults);
  return seeds;
}

}  // namespace rwc::prop
