// Min-cost-flow properties under fault injection: warm-started solves stay
// bit-identical to cold solves (including when a budget fault binds), the
// budget degrades to a valid partial flow, and every solve conserves flow
// at transit nodes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "fault/registry.hpp"
#include "flow/mincost.hpp"
#include "obs/registry.hpp"
#include "flow/network.hpp"
#include "prop/generators.hpp"
#include "prop/seeds.hpp"
#include "prop/invariants.hpp"
#include "prop/shrink.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

// Default seed triple; the nightly sweep widens this via RWC_PROP_SEEDS
// (tests/prop/seeds.hpp).
const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({17, 29, 47});

struct FlowFixture {
  int nodes = 0;
  struct Arc {
    int src, dst;
    double capacity, cost;
  };
  std::vector<Arc> arcs;
  double flow_limit = std::numeric_limits<double>::infinity();

  flow::ResidualNetwork build() const {
    flow::ResidualNetwork net(static_cast<std::size_t>(nodes));
    for (const Arc& arc : arcs)
      net.add_arc(arc.src, arc.dst, arc.capacity, arc.cost);
    return net;
  }
  int source() const { return 0; }
  int sink() const { return nodes - 1; }
};

FlowFixture random_flow_fixture(util::Rng& rng) {
  FlowFixture fixture;
  fixture.nodes = static_cast<int>(rng.uniform_int(5, 9));
  for (int src = 0; src < fixture.nodes; ++src)
    for (int dst = 0; dst < fixture.nodes; ++dst)
      if (src != dst && rng.bernoulli(0.45))
        fixture.arcs.push_back({src, dst, rng.uniform(0.0, 8.0),
                                rng.uniform(0.0, 4.0)});
  if (rng.bernoulli(0.5)) fixture.flow_limit = rng.uniform(0.0, 12.0);
  return fixture;
}

prop::InvariantResult same_result(const flow::MinCostFlowResult& cold,
                                  const flow::MinCostFlowResult& warm) {
  if (cold.flow == warm.flow && cold.cost == warm.cost &&
      cold.status == warm.status &&
      cold.augmenting_paths == warm.augmenting_paths)
    return prop::InvariantResult::pass();
  std::ostringstream out;
  out << "warm != cold: flow " << warm.flow << " vs " << cold.flow
      << ", cost " << warm.cost << " vs " << cold.cost << ", status "
      << static_cast<int>(warm.status) << " vs "
      << static_cast<int>(cold.status) << ", paths "
      << warm.augmenting_paths << " vs " << cold.augmenting_paths;
  return prop::InvariantResult::fail(out.str());
}

/// Transit-node conservation + non-negative residuals on the solved net.
prop::InvariantResult check_network_conservation(
    const flow::ResidualNetwork& net, int source, int sink) {
  for (int node = 0; node < static_cast<int>(net.node_count()); ++node) {
    if (node == source || node == sink) continue;
    if (std::abs(net.net_outflow(node)) > 1e-6)
      return prop::InvariantResult::fail(
          "flow not conserved at transit node " + std::to_string(node));
  }
  for (int arc = 0; arc < static_cast<int>(net.arc_count()); ++arc)
    if (net.residual(arc) < -flow::kFlowEps)
      return prop::InvariantResult::fail("negative residual on arc " +
                                         std::to_string(arc));
  return prop::InvariantResult::pass();
}

/// Cold solve, recorded solve, replayed solve — all on the same network
/// with `plan` armed. The three results and the two final residual states
/// (cold vs replay) must be bit-identical, budget faults included.
prop::InvariantResult warm_equals_cold(const FlowFixture& fixture,
                                       const fault::FaultPlan& plan) {
  fault::ScopedPlan armed(plan);
  flow::ResidualNetwork cold_net = fixture.build();
  const auto cold = flow::min_cost_max_flow(cold_net, fixture.source(),
                                            fixture.sink(),
                                            fixture.flow_limit);
  flow::MinCostWarmStart recording;
  flow::ResidualNetwork record_net = fixture.build();
  const auto recorded = flow::min_cost_max_flow(
      record_net, fixture.source(), fixture.sink(), fixture.flow_limit,
      &recording);
  flow::ResidualNetwork replay_net = fixture.build();
  const auto replayed = flow::min_cost_max_flow(
      replay_net, fixture.source(), fixture.sink(), fixture.flow_limit,
      &recording);
  if (const auto check = same_result(cold, recorded); !check.ok)
    return prop::InvariantResult::fail("recording pass: " + check.detail);
  if (const auto check = same_result(cold, replayed); !check.ok)
    return prop::InvariantResult::fail("replay pass: " + check.detail);
  for (int arc = 0; arc < static_cast<int>(cold_net.arc_count()); ++arc)
    if (cold_net.residual(arc) != replay_net.residual(arc))
      return prop::InvariantResult::fail(
          "replayed residual state diverged on arc " + std::to_string(arc));
  if (const auto check = check_network_conservation(
          cold_net, fixture.source(), fixture.sink());
      !check.ok)
    return check;
  return prop::InvariantResult::pass();
}

TEST(PropFlow, WarmStartsMatchColdSolvesUnderBudgetFaults) {
  const std::vector<prop::SiteProfile> profiles = {
      {"flow.mincost", false, {fault::Kind::kBudget}},
      {"cache.warm.find", false, {fault::Kind::kInvalidate}},
  };
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng = util::Rng::stream(seed, 500);
    for (int trial = 0; trial < 4; ++trial) {
      const FlowFixture fixture = random_flow_fixture(rng);
      const fault::FaultPlan plan =
          prop::random_fault_plan(profiles, rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return warm_equals_cold(fixture, candidate);
                            });
    }
  }
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

TEST(PropFlow, BudgetFaultsDegradeToValidPartialFlows) {
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng = util::Rng::stream(seed, 600);
    for (int trial = 0; trial < 4; ++trial) {
      const FlowFixture fixture = random_flow_fixture(rng);
      // Unfaulted baseline for the budget comparison.
      flow::ResidualNetwork free_net = fixture.build();
      const auto unbounded = flow::min_cost_max_flow(
          free_net, fixture.source(), fixture.sink(), fixture.flow_limit);
      ASSERT_EQ(unbounded.status == flow::SolveStatus::kBudgetExhausted,
                false);
      const std::uint64_t budget =
          static_cast<std::uint64_t>(rng.uniform_int(0, 6));
      fault::FaultPlan plan;
      plan.seed = seed;
      plan.injections.push_back(
          {"flow.mincost", 0, 1,
           {fault::Kind::kBudget, static_cast<double>(budget)}});
      prop::expect_property(
          seed, plan, [&](const fault::FaultPlan& candidate) {
            fault::ScopedPlan armed(candidate);
            flow::ResidualNetwork net = fixture.build();
            const auto result = flow::min_cost_max_flow(
                net, fixture.source(), fixture.sink(), fixture.flow_limit);
            if (result.augmenting_paths > budget)
              return prop::InvariantResult::fail(
                  "budget overrun: " +
                  std::to_string(result.augmenting_paths) + " paths on a " +
                  std::to_string(budget) + " budget");
            if (result.flow > unbounded.flow + flow::kFlowEps)
              return prop::InvariantResult::fail(
                  "partial flow exceeds the unbounded optimum");
            if (result.status != flow::SolveStatus::kBudgetExhausted &&
                result.flow != unbounded.flow)
              return prop::InvariantResult::fail(
                  "non-exhausted status with less flow than the optimum");
            return check_network_conservation(net, fixture.source(),
                                              fixture.sink());
          });
    }
  }
}

}  // namespace
}  // namespace rwc
