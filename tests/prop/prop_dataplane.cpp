// Dataplane properties under fault injection (tests/prop/,
// docs/DATAPLANE.md §7): whatever a random dataplane.packet /
// dataplane.hash plan does to injection and flowlet placement, (1) the
// byte ledger still conserves (cumulative injected == delivered + dropped
// + in-flight), per-OD goodput stays finite and non-negative, and no link
// buffer ever holds more than its tail-drop budget; (2) a faulted run is
// a pure function of (fixture, plan): re-running the same plan on a fresh
// simulator reproduces every round's state signature bit-for-bit.
// Violations report the seed plus the halving-minimized plan spec
// (prop/shrink.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/timeline.hpp"
#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "optical/modulation.hpp"
#include "prop/generators.hpp"
#include "prop/invariants.hpp"
#include "prop/seeds.hpp"
#include "prop/shrink.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({13, 31, 53});

// Local site profiles: both dataplane sites are parallel (keyed by
// tick * flowlets + flowlet, respectively od * flowlets + flowlet), so
// generated injections use period matching. Kinds mirror what the sites
// honor (docs/FAULTS.md §4): packet-level drop/duplicate/delay at the
// source, and WCMP salt corruption / frozen stale picks at placement.
const std::vector<prop::SiteProfile>& dataplane_sites() {
  static const std::vector<prop::SiteProfile> sites = {
      {"dataplane.packet", false,
       {fault::Kind::kDrop, fault::Kind::kDuplicate, fault::Kind::kDelay}},
      {"dataplane.hash", false,
       {fault::Kind::kGarbage, fault::Kind::kStale}},
  };
  return sites;
}

// One fault-free controller round fixes the installed plan; properties
// then replay it through fresh DataplaneSims under the candidate plan, so
// every property evaluation (including the minimizer's halved plans) sees
// the identical (assignment, timeline) input.
struct DataplaneFixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  te::McfTe engine;
  te::FlowAssignment assignment;
  dataplane::DataplaneConfig config;
  dataplane::CapacityTimeline timeline;

  explicit DataplaneFixture(std::uint64_t seed) {
    util::Rng rng = util::Rng::stream(seed, 910);
    topology = prop::random_topology(rng);
    demands = prop::random_demands(topology, rng);
    core::DynamicCapacityController controller(
        topology, optical::ModulationTable::standard(), engine, {});
    const std::vector<util::Db> snr(topology.edge_count(), util::Db{20.0});
    controller.run_round(snr, demands);
    assignment = controller.last_assignment();
    const std::span<const util::Gbps> configured =
        controller.configured_capacities();
    const std::vector<util::Gbps> caps(configured.begin(), configured.end());
    // 64 ticks keeps minimizer re-evaluations cheap; still >= 8 and a
    // power of two (DataplaneConfig contract).
    config.ticks_per_round = 64;
    timeline = dataplane::build_timeline(caps, caps, nullptr,
                                         config.ticks_per_round,
                                         config.tick_seconds);
  }

  /// Per-link tail-drop budget in bytes (dataplane.hpp: capacity *
  /// buffer_ms, floored at min_buffer_gbps for dark links).
  double buffer_budget_bytes(std::size_t edge) const {
    const double cap = topology
                           .edge(graph::EdgeId{static_cast<std::int32_t>(
                               static_cast<int>(edge))})
                           .capacity.value;
    const double gbps = std::max(cap, config.min_buffer_gbps);
    return gbps * (config.buffer_ms / 1000.0) * (1e9 / 8.0);
  }
};

constexpr std::uint64_t kRounds = 2;
constexpr double kLedgerRelTol = 1e-9;
constexpr double kLedgerAbsTolBytes = 1.0;

prop::InvariantResult invariants_hold(DataplaneFixture& fixture,
                                      const fault::FaultPlan& plan) {
  try {
    dataplane::DataplaneSim sim(fixture.topology, fixture.demands.size(),
                                fixture.config);
    fault::ScopedPlan armed(plan);
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      const dataplane::RoundResult result =
          sim.run_round(fixture.assignment, fixture.timeline);
      const std::string at = "round " + std::to_string(round) +
                             " under plan \"" + plan.to_string() + "\": ";
      const double ledger = result.delivered_bytes + result.dropped_bytes +
                            result.inflight_bytes;
      if (std::abs(ledger - result.injected_bytes) >
          result.injected_bytes * kLedgerRelTol + kLedgerAbsTolBytes)
        return prop::InvariantResult::fail(
            at + "byte conservation broken (injected " +
            std::to_string(result.injected_bytes) + " vs accounted " +
            std::to_string(ledger) + ")");
      for (std::size_t od = 0; od < result.od_goodput_gbps.size(); ++od) {
        const double goodput = result.od_goodput_gbps[od];
        if (!std::isfinite(goodput) || goodput < 0.0)
          return prop::InvariantResult::fail(
              at + "od " + std::to_string(od) + " goodput " +
              std::to_string(goodput));
      }
      for (std::size_t e = 0; e < result.links.size(); ++e) {
        const double budget = fixture.buffer_budget_bytes(e);
        if (result.links[e].max_queued_bytes >
            budget * (1.0 + kLedgerRelTol) + kLedgerAbsTolBytes)
          return prop::InvariantResult::fail(
              at + "link " + std::to_string(e) + " peaked at " +
              std::to_string(result.links[e].max_queued_bytes) +
              " bytes over its " + std::to_string(budget) +
              "-byte tail-drop budget");
        for (const double bytes :
             {result.links[e].serviced_bytes, result.links[e].dropped_bytes,
              result.links[e].max_queued_bytes})
          if (!std::isfinite(bytes) || bytes < 0.0)
            return prop::InvariantResult::fail(
                at + "link " + std::to_string(e) + " byte counter " +
                std::to_string(bytes));
      }
    }
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropDataplane, LedgerAndBuffersSurviveRandomFaultPlans) {
  // Vacuity guard: the generated plans must actually fire, otherwise the
  // invariants above were tested against a clean dataplane.
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  for (const std::uint64_t seed : kSeeds) {
    DataplaneFixture fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 911);
    for (int trial = 0; trial < 2; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(dataplane_sites(), fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return invariants_hold(fixture, candidate);
                            });
    }
  }
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

/// Runs the fixture's plan for kRounds on a fresh simulator and returns
/// the per-round state signatures.
std::vector<std::uint64_t> signature_chain(DataplaneFixture& fixture,
                                           const fault::FaultPlan& plan) {
  dataplane::DataplaneSim sim(fixture.topology, fixture.demands.size(),
                              fixture.config);
  fault::ScopedPlan armed(plan);
  std::vector<std::uint64_t> signatures;
  for (std::uint64_t round = 0; round < kRounds; ++round)
    signatures.push_back(
        sim.run_round(fixture.assignment, fixture.timeline).signature);
  return signatures;
}

prop::InvariantResult replay_is_bit_identical(DataplaneFixture& fixture,
                                              const fault::FaultPlan& plan) {
  try {
    const std::vector<std::uint64_t> first = signature_chain(fixture, plan);
    const std::vector<std::uint64_t> second = signature_chain(fixture, plan);
    for (std::uint64_t round = 0; round < kRounds; ++round)
      if (first[round] != second[round])
        return prop::InvariantResult::fail(
            "round " + std::to_string(round) +
            " signatures diverged across identical faulted runs under "
            "plan \"" + plan.to_string() + "\"");
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropDataplane, FaultedRunsReplayBitIdentically) {
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  for (const std::uint64_t seed : kSeeds) {
    DataplaneFixture fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 912);
    for (int trial = 0; trial < 2; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(dataplane_sites(), fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return replay_is_bit_identical(fixture,
                                                             candidate);
                            });
    }
  }
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

}  // namespace
}  // namespace rwc
