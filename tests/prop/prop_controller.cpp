// Controller-round properties under fault injection (tests/prop/).
//
// Three fixed seeds (the `ctest -L prop` CI contract) drive randomized
// topologies, demand matrices, SNR vectors and fault schedules. Violations
// report the seed plus the halving-minimized plan spec (prop/shrink.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "exec/thread_pool.hpp"
#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "optical/modulation.hpp"
#include "prop/generators.hpp"
#include "prop/seeds.hpp"
#include "prop/invariants.hpp"
#include "prop/shrink.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"

namespace rwc {
namespace {

// Default seed triple; the nightly sweep widens this via RWC_PROP_SEEDS
// (tests/prop/seeds.hpp).
const std::vector<std::uint64_t> kSeeds = prop::sweep_seeds({17, 29, 47});

struct RoundFixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  std::vector<util::Db> snr;
};

RoundFixture make_fixture(std::uint64_t seed) {
  util::Rng rng = util::Rng::stream(seed, 100);
  RoundFixture fixture;
  fixture.topology = prop::random_topology(rng);
  fixture.demands = prop::random_demands(fixture.topology, rng);
  fixture.snr = prop::random_snr(fixture.topology.edge_count(), rng);
  return fixture;
}

/// One controller round with `plan` armed; checks the capacity bound, flow
/// conservation and non-negative residuals of the accepted plan. A
/// CheckError escaping the round is itself a violation (faults must degrade
/// gracefully, never throw through run_round).
prop::InvariantResult round_invariants(const RoundFixture& fixture,
                                       const fault::FaultPlan& plan) {
  fault::ScopedPlan armed(plan);
  try {
    const te::McfTe engine;
    core::DynamicCapacityController controller(
        fixture.topology, optical::ModulationTable::standard(), engine,
        core::ControllerOptions{});
    const auto report = controller.run_round(fixture.snr, fixture.demands);
    std::vector<util::Gbps> configured;
    configured.reserve(fixture.topology.edge_count());
    for (const graph::EdgeId edge : fixture.topology.edge_ids())
      configured.push_back(controller.configured_capacity(edge));
    return prop::all_of({
        prop::check_capacity_bound(controller.table(), fixture.snr,
                                   controller.options().snr_margin,
                                   configured),
        prop::check_flow_conservation(controller.current_topology(),
                                      report.plan.physical_assignment),
    });
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropController, CapacityBoundAndConservationUnderDegradingFaults) {
  // Vacuity guard: across all seeds and trials, injections must actually
  // fire — a harness whose plans never match their sites tests nothing.
  const std::uint64_t injected_before =
      obs::Registry::global().counter("fault.injected").value();
  for (const std::uint64_t seed : kSeeds) {
    const RoundFixture fixture = make_fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 200);
    // Degrading faults (corrupt SNR, clamped solver budgets) AND
    // timing-only faults, together, for several schedules per seed.
    std::vector<prop::SiteProfile> profiles = prop::degrading_sites();
    const auto& timing = prop::timing_sites();
    profiles.insert(profiles.end(), timing.begin(), timing.end());
    for (int trial = 0; trial < 3; ++trial) {
      const fault::FaultPlan plan =
          prop::random_fault_plan(profiles, fault_rng, seed);
      prop::expect_property(seed, plan,
                            [&](const fault::FaultPlan& candidate) {
                              return round_invariants(fixture, candidate);
                            });
    }
  }
  EXPECT_GT(obs::Registry::global().counter("fault.injected").value(),
            injected_before)
      << "no generated injection ever fired — the property is vacuous";
}

/// Serial-pool round vs pools {1, 2, 8}, all under the same armed plan:
/// the bit-identical signature contract must survive active faults.
prop::InvariantResult pool_invariance(const RoundFixture& fixture,
                                      const fault::FaultPlan& plan) {
  fault::ScopedPlan armed(plan);
  try {
    const auto run = [&](exec::ThreadPool& pool) {
      const te::McfTe engine;  // fresh per arm: every run starts cold
      core::ControllerOptions options;
      options.pool = &pool;
      core::DynamicCapacityController controller(
          fixture.topology, optical::ModulationTable::standard(), engine,
          options);
      return prop::signature_of(
          controller.run_round(fixture.snr, fixture.demands));
    };
    exec::ThreadPool serial(0);
    const prop::RoundSignature expected = run(serial);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      exec::ThreadPool pool(threads);
      const prop::InvariantResult check = prop::check_signatures_equal(
          expected, run(pool), "pool size " + std::to_string(threads));
      if (!check.ok) return check;
    }
    return prop::InvariantResult::pass();
  } catch (const util::CheckError& error) {
    return prop::InvariantResult::fail(std::string("CheckError escaped: ") +
                                       error.what());
  }
}

TEST(PropController, RoundsArePoolSizeInvariantWithFaultsActive) {
  for (const std::uint64_t seed : kSeeds) {
    const RoundFixture fixture = make_fixture(seed);
    util::Rng fault_rng = util::Rng::stream(seed, 300);
    std::vector<prop::SiteProfile> profiles = prop::degrading_sites();
    const auto& timing = prop::timing_sites();
    profiles.insert(profiles.end(), timing.begin(), timing.end());
    const fault::FaultPlan plan =
        prop::random_fault_plan(profiles, fault_rng, seed);
    prop::expect_property(seed, plan,
                          [&](const fault::FaultPlan& candidate) {
                            return pool_invariance(fixture, candidate);
                          });
  }
}

TEST(PropController, HysteresisNeverOscillatesFasterThanDwell) {
  const optical::ModulationTable table = optical::ModulationTable::standard();
  const util::Db margin{0.5};
  for (const std::uint64_t seed : kSeeds) {
    util::Rng rng = util::Rng::stream(seed, 400);
    core::HysteresisParams params;
    params.up_hold_rounds = static_cast<int>(rng.uniform_int(1, 5));
    params.extra_up_margin = util::Db{rng.uniform(0.0, 1.5)};
    core::HysteresisFilter filter(1, params);
    std::vector<prop::HysteresisRound> rounds;
    util::Gbps configured{100.0};
    double snr_db = rng.uniform(5.0, 15.0);
    for (int i = 0; i < 200; ++i) {
      snr_db = std::clamp(snr_db + rng.normal(0.0, 1.2), 0.0, 20.0);
      prop::HysteresisRound round;
      round.raw_feasible = table.feasible_capacity(util::Db{snr_db}, margin);
      round.raw_with_extra = table.feasible_capacity(
          util::Db{snr_db}, margin + params.extra_up_margin);
      round.configured = configured;
      round.output = filter.filter(0, round.raw_feasible,
                                   round.raw_with_extra, configured);
      rounds.push_back(round);
      // The controller always applies reductions; it adopts an exposed
      // increase only when TE asks for it — model that as a coin flip so
      // the oracle sees both the adopting and the lagging caller.
      if (round.output < configured || rng.bernoulli(0.5))
        configured = round.output;
    }
    const prop::InvariantResult result =
        prop::check_hysteresis_dwell(rounds, params);
    EXPECT_TRUE(result.ok) << "seed=" << seed << " " << result.detail;
  }
}

}  // namespace
}  // namespace rwc
