// Property runner with fault-plan shrinking.
//
// A property is a callable FaultPlan -> InvariantResult that arms the plan
// (fault::ScopedPlan), runs the system under test, and reports the first
// violated invariant. On failure the runner minimizes the schedule by
// halving (FaultPlan::first_half / second_half) until neither half still
// reproduces the violation, then emits ONE gtest failure carrying the
// generator seed and the minimized plan spec — everything needed to replay:
//
//   property violated: seed=29 plan="core.snr%2@1:nan" ...
//   (re-run with RWC_FAULTS='core.snr%2@1:nan' or ScopedPlan on the spec)
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "fault/plan.hpp"
#include "prop/invariants.hpp"

namespace rwc::prop {

using Property = std::function<InvariantResult(const fault::FaultPlan&)>;

struct PropertyFailure {
  fault::FaultPlan minimized;
  InvariantResult result;  // the violation the minimized plan reproduces
};

/// Evaluates `property` under `plan`; on violation, bisects the schedule.
/// Each round tries both halves; descent continues into the first half that
/// still fails. A plan is minimal when it is a single injection or neither
/// half reproduces any violation (the failure needs the combination).
inline std::optional<PropertyFailure> minimize_failure(
    const fault::FaultPlan& plan, const Property& property) {
  InvariantResult result = property(plan);
  if (result.ok) return std::nullopt;
  fault::FaultPlan current = plan;
  while (current.injections.size() > 1) {
    bool narrowed = false;
    for (fault::FaultPlan half : {current.first_half(),
                                  current.second_half()}) {
      InvariantResult half_result = property(half);
      if (!half_result.ok) {
        current = std::move(half);
        result = std::move(half_result);
        narrowed = true;
        break;
      }
    }
    if (!narrowed) break;
  }
  return PropertyFailure{std::move(current), std::move(result)};
}

/// The exact command that replays a minimized failure: pins the generator
/// seed through RWC_PROP_SEEDS (tests/prop/seeds.hpp; the trailing comma
/// selects the single seed) and filters gtest down to the failing test.
/// The plan spec is informational — properties re-generate their plan from
/// the seed, so the seed alone reproduces.
inline std::string repro_command(std::uint64_t seed,
                                 const fault::FaultPlan& minimized) {
  std::string name = "*";
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info())
    name = std::string(info->test_suite_name()) + "." + info->name();
  return "RWC_PROP_SEEDS=" + std::to_string(seed) +
         ", ./build/tests/prop/rwc_prop_tests --gtest_filter=" + name +
         "   # minimized plan: " + minimized.to_string();
}

/// gtest entry point: passes silently, or fails once with the seed, the
/// minimized plan, the violated invariant and a paste-ready repro command.
inline void expect_property(std::uint64_t seed, const fault::FaultPlan& plan,
                            const Property& property) {
  const auto failure = minimize_failure(plan, property);
  if (!failure.has_value()) return;
  ADD_FAILURE() << "property violated: seed=" << seed << " plan=\""
                << failure->minimized.to_string() << "\"\n  "
                << failure->result.detail
                << "\n  (full schedule was \"" << plan.to_string() << "\")"
                << "\n  repro: " << repro_command(seed, failure->minimized);
}

}  // namespace rwc::prop
