// Tests for demands, assignment finalization and validation.
#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "sim/topology.hpp"
#include "te/demand.hpp"
#include "util/check.hpp"

namespace rwc::te {
namespace {

using util::Gbps;
using namespace util::literals;

TEST(Demand, TotalDemandSums) {
  TrafficMatrix demands;
  demands.push_back({graph::NodeId{0}, graph::NodeId{1}, 10_Gbps, 0});
  demands.push_back({graph::NodeId{1}, graph::NodeId{0}, 5.5_Gbps, 1});
  EXPECT_EQ(total_demand(demands), 15.5_Gbps);
  EXPECT_EQ(total_demand({}), 0_Gbps);
}

FlowAssignment one_path_assignment(const graph::Graph& g, Gbps volume) {
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  FlowAssignment assignment;
  FlowAssignment::DemandRouting routing;
  routing.demand = Demand{a, b, volume, 0};
  routing.paths.emplace_back(graph::shortest_path(g, a, b), volume);
  assignment.routings.push_back(std::move(routing));
  return assignment;
}

TEST(Assignment, FinalizeComputesLoadsAndTotals) {
  graph::Graph g = sim::fig7_square();
  auto assignment = one_path_assignment(g, 60_Gbps);
  finalize_assignment(g, assignment);
  EXPECT_EQ(assignment.total_routed, 60_Gbps);
  EXPECT_EQ(assignment.routings[0].routed, 60_Gbps);
  double loaded = 0.0;
  for (double l : assignment.edge_load_gbps) loaded += l;
  EXPECT_NEAR(loaded, 60.0, 1e-9);  // single-hop path
  EXPECT_DOUBLE_EQ(assignment.total_cost, 0.0);
}

TEST(Assignment, FinalizeAccumulatesCost) {
  graph::Graph g = sim::fig7_square();
  for (graph::EdgeId e : g.edge_ids()) g.edge(e).cost = 2.0;
  auto assignment = one_path_assignment(g, 10_Gbps);
  finalize_assignment(g, assignment);
  EXPECT_NEAR(assignment.total_cost, 20.0, 1e-9);
}

TEST(Assignment, ValidatePassesForLegalAssignment) {
  graph::Graph g = sim::fig7_square();
  auto assignment = one_path_assignment(g, 100_Gbps);
  finalize_assignment(g, assignment);
  EXPECT_NO_THROW(validate_assignment(g, assignment));
}

TEST(Assignment, ValidateCatchesOverload) {
  graph::Graph g = sim::fig7_square();
  auto assignment = one_path_assignment(g, 150_Gbps);  // over the 100 G link
  finalize_assignment(g, assignment);
  EXPECT_THROW(validate_assignment(g, assignment), util::CheckError);
}

TEST(Assignment, ValidateCatchesOverservedDemand) {
  graph::Graph g = sim::fig7_square();
  auto assignment = one_path_assignment(g, 50_Gbps);
  assignment.routings[0].demand.volume = 30_Gbps;  // less than routed
  finalize_assignment(g, assignment);
  EXPECT_THROW(validate_assignment(g, assignment), util::CheckError);
}

TEST(Assignment, ValidateCatchesWrongEndpoints) {
  graph::Graph g = sim::fig7_square();
  auto assignment = one_path_assignment(g, 10_Gbps);
  assignment.routings[0].demand.dst = *g.find_node("C");  // path goes to B
  finalize_assignment(g, assignment);
  EXPECT_THROW(validate_assignment(g, assignment), util::CheckError);
}

TEST(Assignment, ValidateCatchesTamperedLoads) {
  graph::Graph g = sim::fig7_square();
  auto assignment = one_path_assignment(g, 10_Gbps);
  finalize_assignment(g, assignment);
  assignment.edge_load_gbps[0] += 5.0;
  EXPECT_THROW(validate_assignment(g, assignment), util::CheckError);
}

}  // namespace
}  // namespace rwc::te
