// Pool-size invariance: the parallel hot paths (speculative-wave
// consolidation, scenario sweeps) must produce bit-identical results at
// every pool size, including the serial pool that runs the original
// pre-parallel code path. The signature extraction and comparison live in
// tests/prop/invariants.hpp, shared with the property harness (which
// re-checks the same contract under active fault plans).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/controller.hpp"
#include "exec/thread_pool.hpp"
#include "optical/modulation.hpp"
#include "prop/invariants.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

struct RoundOutcome {
  prop::RoundSignature signature;
  std::uint64_t evaluations = 0;
};

/// One controller round on a loaded WAN with SNR headroom everywhere, so
/// the consolidation pass has real candidates to try.
RoundOutcome run_controller_round(const te::TeAlgorithm& engine,
                                  exec::ThreadPool& pool) {
  util::Rng topo_rng = util::Rng::stream(21, 0);
  const graph::Graph g = sim::waxman(16, topo_rng);
  util::Rng demand_rng = util::Rng::stream(21, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 2.0};
  gravity.sparsity = 0.9;
  const auto demands = sim::gravity_matrix(g, gravity, demand_rng);
  const std::vector<util::Db> snr(g.edge_count(), util::Db{20.0});

  core::ControllerOptions options;
  options.pool = &pool;
  core::DynamicCapacityController controller(
      g, optical::ModulationTable::standard(), engine, options);
  const auto report = controller.run_round(snr, demands);
  return {prop::signature_of(report), report.stats.evaluations};
}

void expect_same_outcome(const RoundOutcome& expected,
                         const RoundOutcome& got, std::size_t threads) {
  const prop::InvariantResult check = prop::check_signatures_equal(
      expected.signature, got.signature,
      std::to_string(threads) + " threads");
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST(Determinism, ControllerRoundIsPoolSizeInvariantWithMcf) {
  // Cold engine: isolates the consolidation waves from the warm cache.
  te::McfTe::Options engine_options;
  engine_options.warm_start = false;
  const te::McfTe engine(engine_options);
  exec::ThreadPool serial(0);  // exact pre-parallel serial loop
  const RoundOutcome expected = run_controller_round(engine, serial);
  // The fixture must actually exercise consolidation, or this test proves
  // nothing about the speculative waves.
  ASSERT_GT(expected.evaluations, 1u);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    expect_same_outcome(expected, run_controller_round(engine, pool),
                        threads);
  }
}

TEST(Determinism, ControllerRoundIsPoolSizeInvariantWithWarmMcf) {
  // Warm engine: fingerprint replay and the concurrent WarmStartCache must
  // not perturb results either. A fresh engine per pool size keeps every
  // arm starting from a cold cache.
  exec::ThreadPool serial(0);
  const te::McfTe serial_engine;
  const RoundOutcome expected = run_controller_round(serial_engine, serial);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    const te::McfTe engine;
    expect_same_outcome(expected, run_controller_round(engine, pool),
                        threads);
  }
}

TEST(Determinism, ControllerRoundIsPoolSizeInvariantWithSwan) {
  // LP engine with the shared tunnel path cache: concurrent solves during
  // waves exercise the cache's double-compute path.
  exec::ThreadPool serial(0);
  const te::SwanTe serial_engine;
  const RoundOutcome expected = run_controller_round(serial_engine, serial);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    const te::SwanTe engine;
    expect_same_outcome(expected, run_controller_round(engine, pool),
                        threads);
  }
}

void expect_same_metrics(const sim::SimulationMetrics& a,
                         const sim::SimulationMetrics& b) {
  EXPECT_EQ(a.offered_gbps_hours, b.offered_gbps_hours);
  EXPECT_EQ(a.delivered_gbps_hours, b.delivered_gbps_hours);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.link_flaps, b.link_flaps);
  EXPECT_EQ(a.upgrades, b.upgrades);
  EXPECT_EQ(a.restorations, b.restorations);
  EXPECT_EQ(a.lock_failures, b.lock_failures);
  EXPECT_EQ(a.reconfig_downtime_hours, b.reconfig_downtime_hours);
  EXPECT_EQ(a.te_rounds, b.te_rounds);
}

TEST(Determinism, ScenarioSweepIsPoolSizeInvariant) {
  // The sim_throughput_gain shape at test scale: three policy arms over
  // Abilene. run_scenarios at any pool size must reproduce the direct
  // serial WanSimulator runs bit for bit, in order.
  const graph::Graph topology = sim::abilene();
  util::Rng rng = util::Rng::stream(42, 0);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{topology.total_capacity().value};
  const auto demands = sim::gravity_matrix(topology, gravity, rng);
  const te::McfTe engine;

  std::vector<sim::Scenario> scenarios;
  for (sim::CapacityPolicy policy :
       {sim::CapacityPolicy::kStatic, sim::CapacityPolicy::kDynamic,
        sim::CapacityPolicy::kDynamicHitless}) {
    sim::SimulationConfig config;
    config.horizon = 4.0 * util::kHour;
    config.te_interval = 30.0 * util::kMinute;
    config.policy = policy;
    config.seed = 1701;
    scenarios.push_back({sim::to_string(policy), config});
  }

  // Baseline: the pre-run_scenarios serial path, one simulator per arm.
  std::vector<sim::SimulationMetrics> serial;
  for (const sim::Scenario& scenario : scenarios) {
    sim::WanSimulator simulator(topology, engine, scenario.config);
    serial.push_back(simulator.run(demands));
  }
  ASSERT_GT(serial.front().te_rounds, 0u);

  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    const auto results =
        sim::run_scenarios(topology, engine, demands, scenarios, &pool);
    ASSERT_EQ(results.size(), scenarios.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].name, scenarios[i].name);
      expect_same_metrics(serial[i], results[i].metrics);
    }
  }
}

}  // namespace
}  // namespace rwc
