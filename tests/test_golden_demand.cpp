// Golden-trace regression tests for the estimated-demand loop (ISSUE 9
// satellite): a scenario sweep over demand sources — oracle, zero-noise
// estimated, noisy estimated, lossy estimated — is pinned bit-for-bit
// against committed fixtures for two seeds, in its own fixture files so
// the pre-existing GoldenTrace sweep stays byte-stable. Doubles are
// compared as IEEE-754 bit patterns; any drift in the counter synthesis
// streams, the estimator arithmetic or the honest delivered accounting
// shows up here first, with a field-level diff naming what moved.
//
// The zero-noise arm also carries a live assertion (not just the pin): on
// grid-snapped demands without diurnal scaling its delivered/availability
// metrics must equal the oracle arm's bit-for-bit — the exact-recovery
// certificate at simulator scale (docs/DEMAND.md §4).
//
// Regenerating after an INTENDED behavior change:
//   RWC_GOLDEN_REGEN=1 ./build/tests/rwc_tests --gtest_filter='GoldenDemand.*'
// then commit the rewritten tests/golden/demand-scenarios-*.golden files
// alongside the change that explains them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "demand/estimator.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

#ifndef RWC_GOLDEN_DIR
#error "RWC_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace rwc {
namespace {

std::string bits_of(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << bits;
  return out.str();
}

double double_of(const std::string& hex) {
  const std::uint64_t bits = std::stoull(hex, nullptr, 16);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// One fixture line per scenario — same field order as the GoldenTrace
/// fixtures (doubles as 16-digit hex bit patterns, counters in decimal).
std::string serialize(const sim::ScenarioResult& result) {
  const sim::SimulationMetrics& m = result.metrics;
  std::ostringstream out;
  out << result.name << ' ' << bits_of(m.offered_gbps_hours) << ' '
      << bits_of(m.delivered_gbps_hours) << ' ' << bits_of(m.availability)
      << ' ' << bits_of(m.reconfig_downtime_hours) << ' ' << m.link_failures
      << ' ' << m.link_flaps << ' ' << m.upgrades << ' ' << m.restorations
      << ' ' << m.lock_failures << ' ' << m.te_rounds;
  return out.str();
}

struct GoldenField {
  std::string name;
  std::string expected;
  std::string got;
};

std::vector<GoldenField> diff_line(const std::string& expected,
                                   const std::string& got) {
  static const char* kFields[] = {
      "name",          "offered_gbps_hours", "delivered_gbps_hours",
      "availability",  "reconfig_downtime_hours", "link_failures",
      "link_flaps",    "upgrades",           "restorations",
      "lock_failures", "te_rounds"};
  std::istringstream expected_in(expected), got_in(got);
  std::vector<GoldenField> diffs;
  for (const char* field : kFields) {
    std::string expected_token, got_token;
    expected_in >> expected_token;
    got_in >> got_token;
    if (expected_token == got_token) continue;
    GoldenField diff{field, expected_token, got_token};
    if (expected_token.size() == 16 && got_token.size() == 16 &&
        std::string(field) != "name") {
      diff.expected += " (" + std::to_string(double_of(expected_token)) + ")";
      diff.got += " (" + std::to_string(double_of(got_token)) + ")";
    }
    diffs.push_back(diff);
  }
  return diffs;
}

std::vector<sim::ScenarioResult> run_demand_sweep(std::uint64_t seed) {
  util::Rng topo_rng = util::Rng::stream(seed, 0);
  const graph::Graph topology = sim::waxman(8, topo_rng);
  util::Rng demand_rng = util::Rng::stream(seed, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{topology.total_capacity().value * 0.4};
  te::TrafficMatrix demands =
      sim::gravity_matrix(topology, gravity, demand_rng);
  // On-grid volumes + no diurnal scaling: the preconditions of the exact-
  // recovery certificate, so the zero-noise arm equals the oracle arm.
  for (te::Demand& demand : demands)
    demand.volume = util::Gbps{demand::snap_to_grid(demand.volume.value)};

  sim::SimulationConfig base;
  base.horizon = 12.0 * util::kHour;
  base.te_interval = 15.0 * util::kMinute;
  base.seed = seed;
  base.diurnal = false;
  base.policy = sim::CapacityPolicy::kDynamic;
  std::vector<sim::Scenario> scenarios;
  {
    sim::SimulationConfig config = base;
    scenarios.push_back({"oracle", config});
  }
  {
    sim::SimulationConfig config = base;
    config.demand.source = demand::DemandSource::kEstimated;
    scenarios.push_back({"estimated-clean", config});
  }
  {
    sim::SimulationConfig config = base;
    config.demand.source = demand::DemandSource::kEstimated;
    config.demand.noise = 0.05;
    scenarios.push_back({"estimated-noisy", config});
  }
  {
    sim::SimulationConfig config = base;
    config.demand.source = demand::DemandSource::kEstimated;
    config.demand.loss_rate = 0.02;
    scenarios.push_back({"estimated-lossy", config});
  }

  const te::McfTe engine;
  return sim::run_scenarios(topology, engine, demands, scenarios);
}

void check_against_golden(std::uint64_t seed) {
  const std::filesystem::path path =
      std::filesystem::path(RWC_GOLDEN_DIR) /
      ("demand-scenarios-" + std::to_string(seed) + ".golden");
  const std::vector<sim::ScenarioResult> results = run_demand_sweep(seed);

  // Live zero-noise equivalence, independent of the committed fixture:
  // scenario 0 is the oracle arm, scenario 1 the clean estimated arm.
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(bits_of(results[0].metrics.delivered_gbps_hours),
            bits_of(results[1].metrics.delivered_gbps_hours))
      << "zero-noise estimated delivered traffic diverged from oracle";
  EXPECT_EQ(bits_of(results[0].metrics.availability),
            bits_of(results[1].metrics.availability));
  EXPECT_EQ(results[0].metrics.upgrades, results[1].metrics.upgrades);
  EXPECT_EQ(results[0].metrics.link_flaps, results[1].metrics.link_flaps);

  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (const sim::ScenarioResult& result : results)
    lines.push_back(serialize(result));

  if (std::getenv("RWC_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : lines) out << line << '\n';
    GTEST_SKIP() << "regenerated " << path << " — commit it";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path << "; generate it with\n  RWC_GOLDEN_REGEN=1 "
      << "./build/tests/rwc_tests --gtest_filter='GoldenDemand.*'";
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) expected.push_back(line);

  ASSERT_EQ(expected.size(), lines.size())
      << "fixture " << path << " has " << expected.size()
      << " scenarios, the sweep produced " << lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (expected[i] == lines[i]) continue;
    std::ostringstream message;
    message << "scenario " << i << " drifted from " << path << ":\n";
    for (const GoldenField& diff : diff_line(expected[i], lines[i]))
      message << "  " << diff.name << ": expected " << diff.expected
              << ", got " << diff.got << '\n';
    message << "If this change is intended, regenerate with\n"
            << "  RWC_GOLDEN_REGEN=1 ./build/tests/rwc_tests "
            << "--gtest_filter='GoldenDemand.*'\nand commit the new fixture.";
    ADD_FAILURE() << message.str();
  }
}

TEST(GoldenDemand, DemandSweepSeed20170701) { check_against_golden(20170701); }

TEST(GoldenDemand, DemandSweepSeed20250807) { check_against_golden(20250807); }

}  // namespace
}  // namespace rwc
