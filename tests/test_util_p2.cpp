// Tests for the P-square streaming quantile estimator and Welford summary.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/p2_quantile.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rwc::util {
namespace {

TEST(P2Quantile, ExactOnSmallPrefix) {
  P2Quantile median(0.5);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
  median.add(5.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile q(0.9);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), CheckError);
  EXPECT_THROW(P2Quantile(1.0), CheckError);
}

class P2AccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracySweep, TracksExactQuantileOnNormalData) {
  const double p = GetParam();
  Rng rng(42);
  P2Quantile estimator(p);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.normal(10.0, 2.0);
    estimator.add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  const double exact = percentile_sorted(samples, p);
  EXPECT_NEAR(estimator.value(), exact, 0.1) << "quantile " << p;
  EXPECT_EQ(estimator.count(), samples.size());
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2AccuracySweep,
                         ::testing::Values(0.025, 0.1, 0.5, 0.9, 0.975));

TEST(P2Quantile, HandlesSkewedData) {
  Rng rng(7);
  P2Quantile q95(0.95);
  std::vector<double> samples;
  for (int i = 0; i < 30000; ++i) {
    const double v = rng.lognormal(0.0, 1.0);
    q95.add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  const double exact = percentile_sorted(samples, 0.95);
  EXPECT_NEAR(q95.value() / exact, 1.0, 0.08);
}

TEST(P2Quantile, MonotoneQuantilesStayOrdered) {
  Rng rng(9);
  P2Quantile lo(0.1);
  P2Quantile mid(0.5);
  P2Quantile hi(0.9);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    lo.add(v);
    mid.add(v);
    hi.add(v);
  }
  EXPECT_LT(lo.value(), mid.value());
  EXPECT_LT(mid.value(), hi.value());
}

TEST(StreamingSummary, MatchesBatchSummary) {
  Rng rng(11);
  StreamingSummary streaming;
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.normal(-3.0, 7.0);
    streaming.add(v);
    samples.push_back(v);
  }
  const Summary batch = summarize(samples);
  EXPECT_EQ(streaming.count(), batch.count);
  EXPECT_NEAR(streaming.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(streaming.stddev(), batch.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(streaming.min(), batch.min);
  EXPECT_DOUBLE_EQ(streaming.max(), batch.max);
}

TEST(StreamingSummary, EmptyAndSingle) {
  StreamingSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace rwc::util
