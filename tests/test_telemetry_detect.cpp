// Tests for the CUSUM SNR anomaly detector, including recall against the
// generator's ground-truth event plan.
#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/detect.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::telemetry {
namespace {

using util::Db;

SnrTrace synthetic(double baseline, double jitter_sigma, std::size_t n,
                   std::uint64_t seed = 1) {
  util::Rng rng(seed);
  SnrTrace trace;
  trace.samples_db.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    trace.samples_db.push_back(
        static_cast<float>(baseline + rng.normal(0.0, jitter_sigma)));
  return trace;
}

void inject_dip(SnrTrace& trace, std::size_t start, std::size_t length,
                double depth) {
  for (std::size_t i = start; i < start + length && i < trace.size(); ++i)
    trace.samples_db[i] -= static_cast<float>(depth);
}

TEST(Detector, QuietTraceFiresNothing) {
  const SnrTrace trace = synthetic(14.0, 0.2, 4000);
  const auto events = detect_events(trace);
  EXPECT_TRUE(events.empty());
}

TEST(Detector, CatchesASingleDeepDip) {
  SnrTrace trace = synthetic(14.0, 0.2, 2000);
  inject_dip(trace, 800, 40, 6.0);
  const auto events = detect_events(trace);
  ASSERT_EQ(events.size(), 1u);
  const DetectedEvent& event = events[0];
  EXPECT_TRUE(event.downward);
  // Located within a few samples of the injection.
  EXPECT_NEAR(static_cast<double>(event.start_index), 800.0, 5.0);
  EXPECT_NEAR(static_cast<double>(event.end_index), 840.0, 5.0);
  EXPECT_NEAR(event.deepest.value, 8.0, 1.0);
}

TEST(Detector, CatchesMultipleSeparatedDips) {
  SnrTrace trace = synthetic(13.0, 0.25, 6000, 3);
  inject_dip(trace, 1000, 30, 4.0);
  inject_dip(trace, 3000, 60, 8.0);
  inject_dip(trace, 5000, 20, 5.0);
  const auto events = detect_events(trace);
  EXPECT_EQ(events.size(), 3u);
}

TEST(Detector, IgnoresJitterButCatchesShallowSustainedShift) {
  // A 1.5 dB sustained drop is invisible per sample at sigma 0.3 but must
  // accumulate into a detection.
  SnrTrace trace = synthetic(12.0, 0.3, 3000, 7);
  inject_dip(trace, 1500, 200, 1.5);
  const auto events = detect_events(trace);
  ASSERT_GE(events.size(), 1u);
  EXPECT_TRUE(events[0].downward);
  EXPECT_NEAR(static_cast<double>(events[0].start_index), 1500.0, 30.0);
}

TEST(Detector, UpwardShiftDetectedAsNonDip) {
  SnrTrace trace = synthetic(10.0, 0.2, 2000, 9);
  for (std::size_t i = 1000; i < 1100; ++i)
    trace.samples_db[i] += 4.0f;
  const auto events = detect_events(trace);
  ASSERT_GE(events.size(), 1u);
  EXPECT_FALSE(events[0].downward);
}

TEST(Detector, OpenEpisodeFlushedAtTraceEnd) {
  SnrTrace trace = synthetic(14.0, 0.2, 1000, 11);
  inject_dip(trace, 900, 100, 6.0);  // dip runs to the end
  const auto events = detect_events(trace);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].end_index, trace.size());
}

TEST(Detector, BaselineAdaptsToSlowDrift) {
  // A 3 dB drift over 4000 samples is slow enough for the EWMA baseline:
  // no anomaly should fire.
  util::Rng rng(13);
  SnrTrace trace;
  for (std::size_t i = 0; i < 4000; ++i)
    trace.samples_db.push_back(static_cast<float>(
        14.0 - 3.0 * static_cast<double>(i) / 4000.0 +
        rng.normal(0.0, 0.2)));
  const auto events = detect_events(trace);
  EXPECT_TRUE(events.empty());
}

TEST(Detector, RecallAgainstGroundTruthFiberEvents) {
  // Generate a fleet trace and check every long deep ground-truth event is
  // matched by a detection overlapping it.
  SnrFleetGenerator::FleetParams params;
  params.fiber_count = 1;
  params.wavelengths_per_fiber = 1;
  params.duration = 365.0 * util::kDay;
  params.model.fiber_deep_rate_per_year = 10.0;
  params.model.fiber_shallow_rate_per_year = 0.0;
  params.model.lambda_shallow_rate_per_year = 0.0;
  params.model.lambda_deep_rate_per_year = 0.0;
  params.model.fiber_cut_rate_per_year = 0.0;
  params.model.noisy_lambda_fraction = 0.0;
  const SnrFleetGenerator fleet(params, 99);
  const FiberPlan plan = fleet.fiber_plan(0);
  const SnrTrace trace = fleet.generate_trace(0, 0);
  const auto events = detect_events(trace);

  std::size_t matched = 0;
  std::size_t eligible = 0;
  for (const SnrEvent& truth : plan.events) {
    if (truth.duration < 4.0 * trace.interval) continue;  // sub-resolution
    ++eligible;
    const auto start =
        static_cast<std::size_t>(truth.start / trace.interval);
    const auto end = static_cast<std::size_t>(
        (truth.start + truth.duration) / trace.interval);
    for (const DetectedEvent& detection : events) {
      if (detection.start_index <= end + 2 &&
          detection.end_index + 2 >= start) {
        ++matched;
        break;
      }
    }
  }
  ASSERT_GT(eligible, 3u);
  EXPECT_EQ(matched, eligible) << "missed ground-truth deep dips";
}

TEST(Detector, StreamingInterfaceStateIsConsistent) {
  SnrAnomalyDetector detector;
  EXPECT_FALSE(detector.in_anomaly());
  for (int i = 0; i < 100; ++i) detector.add(Db{14.0});
  EXPECT_FALSE(detector.in_anomaly());
  EXPECT_NEAR(detector.baseline().value, 14.0, 1e-9);
  for (int i = 0; i < 10; ++i) detector.add(Db{6.0});
  EXPECT_TRUE(detector.in_anomaly());
  // Recovery ends the episode.
  std::optional<DetectedEvent> completed;
  for (int i = 0; i < 5 && !completed; ++i) completed = detector.add(Db{14.0});
  ASSERT_TRUE(completed.has_value());
  EXPECT_FALSE(detector.in_anomaly());
  EXPECT_NEAR(completed->deepest.value, 6.0, 1e-6);
}

TEST(Detector, ValidatesParams) {
  EXPECT_THROW(SnrAnomalyDetector(DetectorParams{-1.0, 3.0, 0.1}),
               util::CheckError);
  EXPECT_THROW(SnrAnomalyDetector(DetectorParams{0.5, 0.0, 0.1}),
               util::CheckError);
  EXPECT_THROW(SnrAnomalyDetector(DetectorParams{0.5, 3.0, 0.0}),
               util::CheckError);
}

}  // namespace
}  // namespace rwc::telemetry
