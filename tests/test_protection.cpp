// Tests for edge-disjoint path pairs and the 1+1 protection planner.
#include <gtest/gtest.h>

#include <set>

#include "flow/disjoint.hpp"
#include "sim/topology.hpp"
#include "te/protection.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Gbps;
using namespace util::literals;

TEST(DisjointPair, FindsTwoDisjointPathsOnTheSquare) {
  const graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  const auto pair = flow::edge_disjoint_pair(g, a, b);
  ASSERT_TRUE(pair.has_value());
  EXPECT_LE(pair->first.weight, pair->second.weight);
  // Disjoint edge sets.
  std::set<EdgeId> first(pair->first.edges.begin(), pair->first.edges.end());
  for (EdgeId e : pair->second.edges) EXPECT_FALSE(first.contains(e));
  // Valid endpoints.
  EXPECT_EQ(graph::path_nodes(g, pair->first).front(), a);
  EXPECT_EQ(graph::path_nodes(g, pair->first).back(), b);
  EXPECT_EQ(graph::path_nodes(g, pair->second).back(), b);
}

TEST(DisjointPair, NoneWhenOnlyOnePathExists) {
  graph::Graph g;
  const auto a = g.add_node("a");
  const auto m = g.add_node("m");
  const auto b = g.add_node("b");
  g.add_edge(a, m, 100_Gbps);
  g.add_edge(m, b, 100_Gbps);
  EXPECT_FALSE(flow::edge_disjoint_pair(g, a, b).has_value());
}

TEST(DisjointPair, MinimizesTotalWeight) {
  // The classic Suurballe trap: the shortest path greedily blocks the only
  // disjoint partner; the min-cost-flow formulation avoids it.
  graph::Graph g;
  const auto s = g.add_node("s");
  const auto u = g.add_node("u");
  const auto v = g.add_node("v");
  const auto t = g.add_node("t");
  g.add_edge(s, u, 1_Gbps, 0.0, 1.0);
  g.add_edge(u, t, 1_Gbps, 0.0, 1.0);
  g.add_edge(s, v, 1_Gbps, 0.0, 4.0);
  g.add_edge(v, t, 1_Gbps, 0.0, 4.0);
  g.add_edge(u, v, 1_Gbps, 0.0, 1.0);
  const auto pair = flow::edge_disjoint_pair(g, s, t);
  ASSERT_TRUE(pair.has_value());
  // Optimal total = (s-u-t) + (s-v-t) = 2 + 8 = 10.
  EXPECT_NEAR(pair->first.weight + pair->second.weight, 10.0, 1e-9);
}

TEST(DisjointPair, RandomGraphsAlwaysDisjointAndValid) {
  for (int seed = 1; seed <= 10; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 71);
    const graph::Graph g = sim::waxman(12, rng);
    const auto pair =
        flow::edge_disjoint_pair(g, NodeId{0}, NodeId{11});
    if (!pair.has_value()) continue;  // sparse instance: fine
    std::set<EdgeId> first(pair->first.edges.begin(),
                           pair->first.edges.end());
    for (EdgeId e : pair->second.edges) EXPECT_FALSE(first.contains(e));
    // Both are contiguous s->t paths (path_nodes throws otherwise).
    EXPECT_EQ(graph::path_nodes(g, pair->first).back(), (NodeId{11}));
    EXPECT_EQ(graph::path_nodes(g, pair->second).back(), (NodeId{11}));
  }
}

TEST(Protection, PlansDisjointServicesWithinCapacity) {
  const graph::Graph g = sim::abilene();
  const te::TrafficMatrix demands = {
      {*g.find_node("SEA"), *g.find_node("NYC"), 40_Gbps, 1},
      {*g.find_node("LAX"), *g.find_node("ATL"), 30_Gbps, 0},
  };
  const auto plan = te::plan_protection(g, demands);
  EXPECT_EQ(plan.services.size(), 2u);
  EXPECT_TRUE(plan.unprotected.empty());
  EXPECT_TRUE(te::survives_any_single_failure(plan));
  // Reservations: volume on every edge of both paths, never over capacity.
  for (graph::EdgeId e : g.edge_ids())
    EXPECT_LE(plan.reserved_gbps[static_cast<std::size_t>(e.value)],
              g.edge(e).capacity.value + 1e-9);
}

TEST(Protection, ReservationsAccumulateAcrossServices) {
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  const te::TrafficMatrix demands = {{a, b, 30_Gbps, 0}, {a, b, 20_Gbps, 0}};
  const auto plan = te::plan_protection(g, demands);
  EXPECT_EQ(plan.services.size(), 2u);
  double reserved = 0.0;
  for (double r : plan.reserved_gbps) reserved += r;
  // Each service reserves volume on primary + backup (>= 2 edges each).
  EXPECT_GE(reserved, 2.0 * (30.0 + 20.0) - 1e-9);
}

TEST(Protection, RefusesWhenNoCapacityRemains) {
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  // First service eats most of every path; second cannot fit disjointly.
  const te::TrafficMatrix demands = {{a, b, 90_Gbps, 1}, {a, b, 50_Gbps, 0}};
  const auto plan = te::plan_protection(g, demands);
  EXPECT_EQ(plan.services.size(), 1u);
  ASSERT_EQ(plan.unprotected.size(), 1u);
  EXPECT_EQ(plan.unprotected[0].volume, 50_Gbps);
}

TEST(Protection, PriorityOrderDecidesWhoGetsProtected) {
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  // Low priority listed first; high priority must still win the capacity.
  const te::TrafficMatrix demands = {{a, b, 90_Gbps, 0}, {a, b, 90_Gbps, 7}};
  const auto plan = te::plan_protection(g, demands);
  ASSERT_EQ(plan.services.size(), 1u);
  EXPECT_EQ(plan.services[0].demand.priority, 7);
}

TEST(Protection, BackupSurvivesPrimaryLinkFailure) {
  const graph::Graph g = sim::abilene();
  const te::TrafficMatrix demands = {
      {*g.find_node("SEA"), *g.find_node("NYC"), 50_Gbps, 0}};
  const auto plan = te::plan_protection(g, demands);
  ASSERT_EQ(plan.services.size(), 1u);
  const auto& service = plan.services[0];
  // Remove each primary edge in turn; the backup never uses it.
  for (graph::EdgeId failed : service.primary.edges)
    for (graph::EdgeId e : service.backup.edges) EXPECT_NE(e, failed);
}

}  // namespace
}  // namespace rwc
