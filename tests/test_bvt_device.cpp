// Tests for the BVT register file and reconfiguration state machine.
#include <gtest/gtest.h>

#include "bvt/device.hpp"
#include "util/check.hpp"

namespace rwc::bvt {
namespace {

using util::Db;
using util::Gbps;
using namespace util::literals;

BvtDevice make_device(Db snr = 15.0_dB) {
  BvtDevice device(optical::ModulationTable::standard(), 7);
  device.mdio_write(Register::kControl,
                    control::kLaserEnable | control::kTxEnable);
  device.set_link_snr(snr);
  return device;
}

TEST(BvtDevice, IdentifiesItself) {
  BvtDevice device(optical::ModulationTable::standard(), 1);
  EXPECT_EQ(device.mdio_read(Register::kDeviceId), kBvtDeviceId);
}

TEST(BvtDevice, DefaultsTo100G) {
  BvtDevice device(optical::ModulationTable::standard(), 1);
  EXPECT_EQ(device.mdio_read(Register::kActiveRateGbps), 100);
  EXPECT_EQ(device.active_format().capacity, 100_Gbps);
}

TEST(BvtDevice, LaserOffMeansNoCarrier) {
  BvtDevice device(optical::ModulationTable::standard(), 1);
  device.set_link_snr(15.0_dB);
  EXPECT_FALSE(device.laser_on());
  EXPECT_FALSE(device.carrier_locked());
  EXPECT_EQ(device.active_capacity(), 0_Gbps);
}

TEST(BvtDevice, LocksWhenLaserOnAndSnrSufficient) {
  BvtDevice device = make_device(15.0_dB);
  EXPECT_TRUE(device.laser_on());
  EXPECT_TRUE(device.carrier_locked());
  EXPECT_EQ(device.active_capacity(), 100_Gbps);
  const auto status = device.mdio_read(Register::kStatus);
  EXPECT_TRUE(status & status::kLaserOn);
  EXPECT_TRUE(status & status::kCarrierLocked);
  EXPECT_FALSE(status & status::kFault);
}

TEST(BvtDevice, SnrRegisterReportsCentiDb) {
  BvtDevice device = make_device(Db{12.34});
  EXPECT_EQ(device.mdio_read(Register::kSnrCentiDb), 1234);
}

TEST(BvtDevice, RawRegisterReconfiguration) {
  BvtDevice device = make_device(20.0_dB);
  // Select the 200 G entry (index 5 on the standard ladder) and apply.
  device.mdio_write(Register::kModulationSelect, 5);
  EXPECT_EQ(device.mdio_read(Register::kModulationActive), 1);  // 100 G yet
  device.mdio_write(Register::kControl,
                    control::kLaserEnable | control::kTxEnable |
                        control::kApplyConfig);
  EXPECT_EQ(device.mdio_read(Register::kModulationActive), 5);
  EXPECT_EQ(device.mdio_read(Register::kActiveRateGbps), 200);
  EXPECT_TRUE(device.carrier_locked());
  EXPECT_EQ(device.reconfig_count(), 1u);
}

TEST(BvtDevice, SelectRejectsBadIndex) {
  BvtDevice device = make_device();
  EXPECT_THROW(device.mdio_write(Register::kModulationSelect, 17),
               util::CheckError);
}

TEST(BvtDevice, ChangeModulationSuccessAndReport) {
  BvtDevice device = make_device(20.0_dB);
  const auto report =
      device.change_modulation(200_Gbps, Procedure::kEfficient);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.from, 100_Gbps);
  EXPECT_EQ(report.to, 200_Gbps);
  EXPECT_GT(report.downtime, 0.0);
  EXPECT_LT(report.downtime, 1.0);  // efficient: tens of milliseconds
  EXPECT_EQ(device.active_capacity(), 200_Gbps);
}

TEST(BvtDevice, StandardProcedureTakesMuchLonger) {
  BvtDevice device = make_device(20.0_dB);
  const auto report =
      device.change_modulation(150_Gbps, Procedure::kStandard);
  EXPECT_TRUE(report.success);
  EXPECT_GT(report.downtime, 10.0);  // laser warm-up dominates
  EXPECT_TRUE(device.laser_on());    // back on after the cycle
}

TEST(BvtDevice, ChangeToInfeasibleRateFails) {
  BvtDevice device = make_device(8.0_dB);  // supports <= 100 G
  const auto report =
      device.change_modulation(200_Gbps, Procedure::kEfficient);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(device.carrier_locked());
  EXPECT_EQ(device.active_capacity(), 0_Gbps);
  EXPECT_TRUE(device.mdio_read(Register::kStatus) & status::kFault);
  // Recovering: drop back to a feasible rate.
  const auto recovery =
      device.change_modulation(100_Gbps, Procedure::kEfficient);
  EXPECT_TRUE(recovery.success);
  EXPECT_EQ(device.active_capacity(), 100_Gbps);
}

TEST(BvtDevice, SnrDropBreaksLock) {
  BvtDevice device = make_device(20.0_dB);
  ASSERT_TRUE(device.change_modulation(200_Gbps, Procedure::kEfficient)
                  .success);
  device.set_link_snr(9.0_dB);  // below the 200 G threshold
  EXPECT_FALSE(device.carrier_locked());
  EXPECT_EQ(device.active_capacity(), 0_Gbps);
  device.set_link_snr(20.0_dB);
  EXPECT_TRUE(device.carrier_locked());
}

TEST(BvtDevice, ChangeRejectsOffLadderRate) {
  BvtDevice device = make_device();
  EXPECT_THROW(device.change_modulation(Gbps{42.0}, Procedure::kEfficient),
               util::CheckError);
}

TEST(BvtDevice, PowerOnWarmupSemantics) {
  BvtDevice device = make_device(15.0_dB);
  device.power_off();
  const auto warmup = device.power_on();
  EXPECT_GT(warmup, 1.0);
  EXPECT_TRUE(device.laser_on());
  EXPECT_EQ(device.power_on(), 0.0);
}

TEST(BvtDevice, ReconfigCounterAndLastDuration) {
  BvtDevice device = make_device(20.0_dB);
  EXPECT_EQ(device.mdio_read(Register::kReconfigCount), 0);
  device.change_modulation(150_Gbps, Procedure::kEfficient);
  device.change_modulation(200_Gbps, Procedure::kEfficient);
  EXPECT_EQ(device.mdio_read(Register::kReconfigCount), 2);
  // Efficient changes are tens of ms -> register reads a small ms value.
  const auto ms = device.mdio_read(Register::kLastReconfigMs);
  EXPECT_GT(ms, 0);
  EXPECT_LT(ms, 1000);
}

TEST(BvtDevice, WritesToReadOnlyRegistersIgnored) {
  BvtDevice device = make_device();
  const auto before = device.mdio_read(Register::kSnrCentiDb);
  device.mdio_write(Register::kSnrCentiDb, 9999);
  EXPECT_EQ(device.mdio_read(Register::kSnrCentiDb), before);
}

}  // namespace
}  // namespace rwc::bvt
