// Tests for the end-to-end DynamicCapacityController: upgrades on demand,
// SNR-driven flaps (run/walk/crawl), recovery, consolidation (Fig. 7) and
// consistent transitions.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/check.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Db;
using util::Gbps;
using namespace util::literals;

std::vector<Db> uniform_snr(const graph::Graph& g, double db) {
  return std::vector<Db>(g.edge_count(), Db{db});
}

ControllerOptions no_margin_options() {
  ControllerOptions options;
  options.snr_margin = 0.0_dB;
  return options;
}

TEST(Controller, NoChangeWhenDemandFits) {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("B"), 80_Gbps, 0}};
  const auto report = controller.run_round(uniform_snr(base, 20.0), demands);
  EXPECT_TRUE(report.reductions.empty());
  EXPECT_TRUE(report.plan.upgrades.empty());
  EXPECT_NEAR(report.total_routed.value, 80.0, 1e-6);
  EXPECT_TRUE(report.transition_valid);
}

TEST(Controller, UpgradesWhenDemandNeedsIt) {
  graph::Graph base;
  const NodeId a = base.add_node("A");
  const NodeId b = base.add_node("B");
  const EdgeId ab = base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {{a, b, 150_Gbps, 0}};
  const auto report = controller.run_round(uniform_snr(base, 20.0), demands);
  ASSERT_EQ(report.plan.upgrades.size(), 1u);
  EXPECT_EQ(report.plan.upgrades[0].edge, ab);
  EXPECT_EQ(report.plan.upgrades[0].to, 200_Gbps);
  EXPECT_NEAR(report.total_routed.value, 150.0, 1e-6);
  EXPECT_EQ(controller.configured_capacity(ab), 200_Gbps);
}

TEST(Controller, SnrLimitsTheUpgradeTarget) {
  graph::Graph base;
  const NodeId a = base.add_node("A");
  const NodeId b = base.add_node("B");
  const EdgeId ab = base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {{a, b, 190_Gbps, 0}};
  // 12 dB supports 175 G but not 200 G.
  const auto report = controller.run_round(uniform_snr(base, 12.0), demands);
  ASSERT_EQ(report.plan.upgrades.size(), 1u);
  EXPECT_EQ(report.plan.upgrades[0].to, 175_Gbps);
  EXPECT_NEAR(report.total_routed.value, 175.0, 1e-6);
  EXPECT_EQ(controller.configured_capacity(ab), 175_Gbps);
}

TEST(Controller, WalkDontFail_FlapsTo50OnDegradedSnr) {
  // The paper's availability story: SNR drops below the 100 G threshold but
  // stays above 3 dB -> the link walks down to 50 G instead of failing.
  graph::Graph base;
  const NodeId a = base.add_node("A");
  const NodeId b = base.add_node("B");
  const EdgeId ab = base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {{a, b, 100_Gbps, 0}};
  const auto report = controller.run_round(uniform_snr(base, 4.2), demands);
  ASSERT_EQ(report.reductions.size(), 1u);
  EXPECT_EQ(report.reductions[0].from, 100_Gbps);
  EXPECT_EQ(report.reductions[0].to, 50_Gbps);
  EXPECT_EQ(controller.configured_capacity(ab), 50_Gbps);
  // Half the demand still flows: a flap, not a failure.
  EXPECT_NEAR(report.total_routed.value, 50.0, 1e-6);
}

TEST(Controller, CrawlToZeroOnLossOfLight) {
  graph::Graph base;
  const NodeId a = base.add_node("A");
  const NodeId b = base.add_node("B");
  const EdgeId ab = base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {{a, b, 100_Gbps, 0}};
  const auto report = controller.run_round(uniform_snr(base, 0.3), demands);
  ASSERT_EQ(report.reductions.size(), 1u);
  EXPECT_EQ(report.reductions[0].to, 0_Gbps);
  EXPECT_EQ(controller.configured_capacity(ab), 0_Gbps);
  EXPECT_NEAR(report.total_routed.value, 0.0, 1e-9);
}

TEST(Controller, RecoversAfterSnrRestores) {
  graph::Graph base;
  const NodeId a = base.add_node("A");
  const NodeId b = base.add_node("B");
  const EdgeId ab = base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {{a, b, 90_Gbps, 0}};
  controller.run_round(uniform_snr(base, 4.2), demands);  // flap to 50
  EXPECT_EQ(controller.configured_capacity(ab), 50_Gbps);
  const auto report = controller.run_round(uniform_snr(base, 8.0), demands);
  // SNR supports 100 G again; the demand needs it, so TE upgrades back.
  EXPECT_EQ(controller.configured_capacity(ab), 100_Gbps);
  EXPECT_NEAR(report.total_routed.value, 90.0, 1e-6);
}

TEST(Controller, Fig7ConsolidationUpgradesOnlyOneLink) {
  // The paper's Fig. 7 walk-through end-to-end: both (A,B) and (C,D) could
  // double, both demands grew to 125 G, and the controller must end up
  // changing the capacity of only ONE link.
  graph::Graph base = sim::fig7_square();
  const NodeId a = *base.find_node("A");
  const NodeId b = *base.find_node("B");
  const NodeId c = *base.find_node("C");
  const NodeId d = *base.find_node("D");
  te::McfTe engine;
  ControllerOptions options = no_margin_options();
  options.penalty = std::make_shared<FixedPenalty>(100.0);
  options.consolidate = true;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine, options);

  // Only the A-B and C-D fibers have upgrade-grade SNR; the cross links sit
  // just under the 125 G threshold.
  std::vector<Db> snr(base.edge_count(), Db{7.5});
  const EdgeId ab = *base.find_edge(a, b);
  const EdgeId ba = *base.find_edge(b, a);
  const EdgeId cd = *base.find_edge(c, d);
  const EdgeId dc = *base.find_edge(d, c);
  for (EdgeId e : {ab, ba, cd, dc}) snr[static_cast<std::size_t>(e.value)] =
      Db{20.0};

  const te::TrafficMatrix demands = {{a, b, 125_Gbps, 0},
                                     {c, d, 125_Gbps, 0}};
  const auto report = controller.run_round(snr, demands);
  EXPECT_NEAR(report.total_routed.value, 250.0, 1e-5);
  EXPECT_EQ(report.plan.upgrades.size(), 1u);
}

TEST(Controller, PenaltyReflectsDisruptedTraffic) {
  // Second round: the link already carries traffic, so upgrading it costs
  // (traffic-proportional policy), and the engine avoids it when a free
  // alternative exists.
  graph::Graph base = sim::fig7_square();
  const NodeId a = *base.find_node("A");
  const NodeId b = *base.find_node("B");
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix round1 = {{a, b, 100_Gbps, 0}};
  controller.run_round(uniform_snr(base, 20.0), round1);
  // Round 2 asks for 150: the loaded direct link could upgrade, but the
  // A-C-D-B detour is free of both penalty and disruption — the engine must
  // take it and leave every capacity unchanged.
  const te::TrafficMatrix round2 = {{a, b, 150_Gbps, 0}};
  const auto report = controller.run_round(uniform_snr(base, 20.0), round2);
  EXPECT_NEAR(report.total_routed.value, 150.0, 1e-5);
  EXPECT_TRUE(report.plan.upgrades.empty());
  EXPECT_NEAR(report.total_penalty, 0.0, 1e-9);
}

TEST(Controller, TransitionPlansAreValidAcrossRounds) {
  graph::Graph base = sim::abilene();
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const NodeId sea = *base.find_node("SEA");
  const NodeId nyc = *base.find_node("NYC");
  for (double volume : {80.0, 150.0, 220.0, 60.0}) {
    const te::TrafficMatrix demands = {{sea, nyc, Gbps{volume}, 0}};
    const auto report =
        controller.run_round(uniform_snr(base, 20.0), demands);
    EXPECT_TRUE(report.transition_valid) << "at volume " << volume;
    te::validate_assignment(controller.current_topology(),
                            report.plan.physical_assignment);
  }
}

TEST(Controller, WorksWithSwanEngineUnmodified) {
  // Theorem 1's claim: a different, unmodified TE engine plugs in.
  graph::Graph base;
  const NodeId a = base.add_node("A");
  const NodeId b = base.add_node("B");
  base.add_edge(a, b, 100_Gbps);
  te::SwanTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      no_margin_options());
  const te::TrafficMatrix demands = {{a, b, 180_Gbps, 0}};
  const auto report = controller.run_round(uniform_snr(base, 20.0), demands);
  EXPECT_NEAR(report.total_routed.value, 180.0, 1e-4);
  EXPECT_EQ(report.plan.upgrades.size(), 1u);
}

TEST(Controller, SnrMarginIsRespected) {
  graph::Graph base;
  const NodeId a = base.add_node("A");
  const NodeId b = base.add_node("B");
  const EdgeId ab = base.add_edge(a, b, 100_Gbps);
  te::McfTe engine;
  ControllerOptions options;
  options.snr_margin = 1.0_dB;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine, options);
  const te::TrafficMatrix demands = {{a, b, 200_Gbps, 0}};
  // 13.5 dB minus 1 dB margin = 12.5 dB -> only 175 G feasible.
  const auto report =
      controller.run_round(uniform_snr(base, 13.5), demands);
  ASSERT_EQ(report.plan.upgrades.size(), 1u);
  EXPECT_EQ(report.plan.upgrades[0].to, 175_Gbps);
  EXPECT_EQ(controller.configured_capacity(ab), 175_Gbps);
}

TEST(Controller, RejectsWrongSnrVectorSize) {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine,
      ControllerOptions{});
  const std::vector<Db> snr(3, Db{15.0});
  EXPECT_THROW(controller.run_round(snr, {}), util::CheckError);
}

}  // namespace
}  // namespace rwc::core
