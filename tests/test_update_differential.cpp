// Differential layer for the consistent-update stage (docs/UPDATE.md):
// planning a transition schedule must never perturb what the controller
// decides (atomic-apply vs scheduled-apply produce bitwise-identical
// round signatures at pool sizes {1, 2, 8}), the schedules themselves
// must be pool-size invariant, and EXECUTING a schedule — including a
// mid-schedule save/restore — must converge to the same final dataplane
// bit for bit. Signatures come from tests/support/round_signature.hpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "exec/thread_pool.hpp"
#include "optical/modulation.hpp"
#include "prop/invariants.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "update/executor.hpp"
#include "update/schedule.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

/// Multi-round fixture whose SNR trace dips and recovers, so rounds carry
/// flaps, restorations AND TE upgrades — real material for transition
/// schedules.
struct Fixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  std::vector<std::vector<util::Db>> snr_rounds;
};

Fixture make_fixture(std::uint64_t seed, std::size_t rounds) {
  Fixture fixture;
  util::Rng topo_rng = util::Rng::stream(seed, 700);
  fixture.topology = sim::waxman(10, topo_rng);
  util::Rng demand_rng = util::Rng::stream(seed, 701);
  sim::GravityParams gravity;
  gravity.total =
      util::Gbps{fixture.topology.total_capacity().value * 0.45};
  fixture.demands =
      sim::gravity_matrix(fixture.topology, gravity, demand_rng);
  util::Rng snr_rng = util::Rng::stream(seed, 702);
  const std::size_t edges = fixture.topology.edge_count();
  std::vector<util::Db> snr(edges, util::Db{20.0});
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t e = 0; e < edges; ++e) {
      // Random walk between deep fade and strong headroom.
      double db = snr[e].value + snr_rng.uniform(-3.0, 3.0);
      if (db < 8.0) db = 8.0;
      if (db > 24.0) db = 24.0;
      snr[e] = util::Db{db};
    }
    fixture.snr_rounds.push_back(snr);
  }
  return fixture;
}

update::SchedulerConfig stage_config() {
  update::SchedulerConfig config;
  config.headroom = 0.1;
  config.seed = 9;
  return config;  // sampled durations on — the production path
}

struct ArmResult {
  std::vector<prop::RoundSignature> signatures;
  std::vector<std::optional<update::UpdateSchedule>> schedules;
  std::size_t feasible_schedules = 0;
  std::size_t validated_schedules = 0;
};

ArmResult run_arm(const Fixture& fixture, bool scheduled,
                  std::size_t threads) {
  exec::ThreadPool pool(threads);
  core::ControllerOptions options;
  options.pool = &pool;
  if (scheduled) options.update = stage_config();
  const te::McfTe engine;  // fresh per arm: cold warm-start cache
  core::DynamicCapacityController controller(
      fixture.topology, optical::ModulationTable::standard(), engine,
      options);
  ArmResult result;
  for (const auto& snr : fixture.snr_rounds) {
    const auto report = controller.run_round(snr, fixture.demands);
    result.signatures.push_back(prop::signature_of(report));
    result.schedules.push_back(report.update);
    if (report.update.has_value() && report.update->feasible) {
      ++result.feasible_schedules;
      if (report.update_valid) ++result.validated_schedules;
    }
  }
  return result;
}

void expect_signatures_equal(const ArmResult& expected, const ArmResult& got,
                             const std::string& context) {
  ASSERT_EQ(expected.signatures.size(), got.signatures.size()) << context;
  for (std::size_t r = 0; r < expected.signatures.size(); ++r) {
    const prop::InvariantResult check = prop::check_signatures_equal(
        expected.signatures[r], got.signatures[r],
        context + ", round " + std::to_string(r));
    ASSERT_TRUE(check.ok) << check.detail;
  }
}

/// Schedules must be pool-size invariant: same rounds, same moves, same
/// makespan bits.
void expect_schedules_equal(const ArmResult& a, const ArmResult& b,
                            const std::string& context) {
  ASSERT_EQ(a.schedules.size(), b.schedules.size()) << context;
  for (std::size_t r = 0; r < a.schedules.size(); ++r) {
    const auto& lhs = a.schedules[r];
    const auto& rhs = b.schedules[r];
    ASSERT_EQ(lhs.has_value(), rhs.has_value()) << context << " round " << r;
    if (!lhs.has_value()) continue;
    EXPECT_EQ(lhs->feasible, rhs->feasible) << context << " round " << r;
    EXPECT_EQ(lhs->makespan_seconds, rhs->makespan_seconds)  // bitwise
        << context << " round " << r;
    EXPECT_TRUE(lhs->initial == rhs->initial) << context << " round " << r;
    ASSERT_EQ(lhs->rounds.size(), rhs->rounds.size())
        << context << " round " << r;
    for (std::size_t u = 0; u < lhs->rounds.size(); ++u) {
      const auto& lr = lhs->rounds[u];
      const auto& rr = rhs->rounds[u];
      EXPECT_EQ(lr.duration_seconds, rr.duration_seconds);
      ASSERT_EQ(lr.moves.size(), rr.moves.size());
      for (std::size_t m = 0; m < lr.moves.size(); ++m) {
        EXPECT_EQ(lr.moves[m].kind, rr.moves[m].kind);
        EXPECT_EQ(lr.moves[m].demand_index, rr.moves[m].demand_index);
        EXPECT_EQ(lr.moves[m].volume.value, rr.moves[m].volume.value);
        EXPECT_EQ(lr.moves[m].path.edges, rr.moves[m].path.edges);
        EXPECT_EQ(lr.moves[m].edge.value, rr.moves[m].edge.value);
        EXPECT_EQ(lr.moves[m].duration_seconds, rr.moves[m].duration_seconds);
      }
    }
  }
}

constexpr std::uint64_t kSeed = 31;
constexpr std::size_t kRounds = 14;

TEST(UpdateDifferential, ScheduledApplyMatchesAtomicApplyAtEveryPoolSize) {
  const Fixture fixture = make_fixture(kSeed, kRounds);
  const ArmResult atomic = run_arm(fixture, false, 1);
  const ArmResult scheduled_serial = run_arm(fixture, true, 1);
  // The comparison only means something if the stage actually planned
  // non-trivial schedules.
  ASSERT_GT(scheduled_serial.feasible_schedules, 0u);
  EXPECT_EQ(scheduled_serial.validated_schedules,
            scheduled_serial.feasible_schedules);
  expect_signatures_equal(atomic, scheduled_serial, "pool 1 scheduled");
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const std::string context = "pool " + std::to_string(threads);
    expect_signatures_equal(atomic, run_arm(fixture, false, threads),
                            context + " atomic");
    const ArmResult scheduled = run_arm(fixture, true, threads);
    expect_signatures_equal(atomic, scheduled, context + " scheduled");
    expect_schedules_equal(scheduled_serial, scheduled, context);
  }
}

TEST(UpdateDifferential, ExecutedSchedulesConvergeIncludingMidRestore) {
  const Fixture fixture = make_fixture(kSeed, kRounds);
  const ArmResult scheduled = run_arm(fixture, true, 1);
  std::size_t executed = 0;
  std::size_t restored = 0;
  for (std::size_t r = 0; r < scheduled.schedules.size(); ++r) {
    const auto& maybe = scheduled.schedules[r];
    if (!maybe.has_value() || !maybe->feasible || maybe->rounds.empty())
      continue;
    const update::UpdateSchedule& schedule = *maybe;
    // Uninterrupted execution: commits everything, every transient clean.
    update::ScheduleExecutor reference(fixture.topology, schedule);
    reference.run([&](const update::DataplaneState& state) {
      std::string violation;
      EXPECT_TRUE(update::check_dataplane(fixture.topology, schedule, state,
                                          &violation))
          << "controller round " << r << ": " << violation;
    });
    ASSERT_TRUE(reference.result().completed) << "controller round " << r;
    ++executed;

    // Interrupted twin: run one round, checkpoint, restore into a fresh
    // executor, finish — bit-identical dataplane and timing.
    if (schedule.rounds.size() < 2) continue;
    update::ScheduleExecutor head(fixture.topology, schedule);
    head.run_rounds(1);
    const std::vector<std::byte> cursor = head.save_state();
    update::ScheduleExecutor tail(fixture.topology, schedule);
    ASSERT_TRUE(tail.restore_state(cursor)) << "controller round " << r;
    tail.run();
    ASSERT_TRUE(tail.result().completed) << "controller round " << r;
    EXPECT_TRUE(tail.state() == reference.state())
        << "controller round " << r;
    EXPECT_EQ(tail.result().makespan_seconds,
              reference.result().makespan_seconds)
        << "controller round " << r;
    ++restored;
  }
  // Vacuity guards: the fixture must exercise both legs.
  EXPECT_GT(executed, 0u);
  EXPECT_GT(restored, 0u);
}

}  // namespace
}  // namespace rwc
