// Tests for SNR trace generation and the Section 2 analyses (deterministic
// structural cases; fleet-level calibration lives in
// test_telemetry_calibration.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/analysis.hpp"
#include "telemetry/snr_model.hpp"
#include "util/check.hpp"

namespace rwc::telemetry {
namespace {

using util::Db;
using util::Gbps;
using namespace util::literals;

SnrFleetGenerator::FleetParams small_params() {
  SnrFleetGenerator::FleetParams params;
  params.fiber_count = 3;
  params.wavelengths_per_fiber = 4;
  params.duration = 30.0 * util::kDay;
  params.interval = 15.0 * util::kMinute;
  return params;
}

TEST(SnrFleet, TraceShapeMatchesParams) {
  SnrFleetGenerator fleet(small_params(), 42);
  EXPECT_EQ(fleet.link_count(), 12);
  const SnrTrace trace = fleet.generate_trace(0, 0);
  EXPECT_EQ(trace.size(),
            static_cast<std::size_t>(30.0 * util::kDay /
                                     (15.0 * util::kMinute)));
  EXPECT_EQ(trace.interval, 15.0 * util::kMinute);
  EXPECT_NEAR(trace.duration(), 30.0 * util::kDay, 1.0);
}

TEST(SnrFleet, DeterministicPerLinkAndSeed) {
  SnrFleetGenerator a(small_params(), 42);
  SnrFleetGenerator b(small_params(), 42);
  const SnrTrace ta = a.generate_trace(1, 2);
  const SnrTrace tb = b.generate_trace(1, 2);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_EQ(ta.samples_db[i], tb.samples_db[i]);

  SnrFleetGenerator c(small_params(), 43);
  const SnrTrace tc = c.generate_trace(1, 2);
  int equal = 0;
  for (std::size_t i = 0; i < ta.size(); ++i)
    if (ta.samples_db[i] == tc.samples_db[i]) ++equal;
  EXPECT_LT(static_cast<double>(equal), 0.1 * static_cast<double>(ta.size()));
}

TEST(SnrFleet, FlatIndexMatchesFiberLambda) {
  SnrFleetGenerator fleet(small_params(), 7);
  const SnrTrace direct = fleet.generate_trace(2, 3);
  const SnrTrace flat = fleet.generate_trace(2 * 4 + 3);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(direct.samples_db[i], flat.samples_db[i]);
}

TEST(SnrFleet, SamplesRespectNoiseFloor) {
  auto params = small_params();
  params.model.fiber_cut_rate_per_year = 50.0;  // force cuts
  SnrFleetGenerator fleet(params, 11);
  for (int link = 0; link < fleet.link_count(); ++link) {
    const SnrTrace trace = fleet.generate_trace(link);
    for (float s : trace.samples_db)
      EXPECT_GE(s, static_cast<float>(params.model.noise_floor.value) - 1e-4f);
  }
}

TEST(SnrFleet, FiberPlanSharedAcrossWavelengths) {
  // A deep fiber-level event must appear in every wavelength of the fiber.
  auto params = small_params();
  params.model.fiber_deep_rate_per_year = 20.0;
  params.model.fiber_shallow_rate_per_year = 0.0;
  params.model.lambda_shallow_rate_per_year = 0.0;
  params.model.lambda_deep_rate_per_year = 0.0;
  params.model.fiber_cut_rate_per_year = 0.0;
  SnrFleetGenerator fleet(params, 5);
  const FiberPlan plan = fleet.fiber_plan(0);
  ASSERT_FALSE(plan.events.empty());
  // Pick a mid-event sample index for the first long-enough event.
  const SnrEvent* event = nullptr;
  for (const SnrEvent& e : plan.events)
    if (e.duration >= 2.0 * params.interval) {
      event = &e;
      break;
    }
  ASSERT_NE(event, nullptr);
  const auto index = static_cast<std::size_t>(
      (event->start + event->duration / 2) / params.interval);
  for (int lambda = 0; lambda < params.wavelengths_per_fiber; ++lambda) {
    const SnrTrace trace = fleet.generate_trace(0, lambda);
    ASSERT_GT(trace.size(), index);
    // During a deep dip the SNR must be well below the clear-sky baseline.
    EXPECT_LT(trace.at(index).value, plan.baseline.value - 3.0);
  }
}

TEST(SnrFleet, RejectsOutOfRangeIndices) {
  SnrFleetGenerator fleet(small_params(), 1);
  EXPECT_THROW(fleet.generate_trace(3, 0), util::CheckError);
  EXPECT_THROW(fleet.generate_trace(0, 4), util::CheckError);
  EXPECT_THROW(fleet.generate_trace(12), util::CheckError);
  EXPECT_THROW(fleet.fiber_plan(-1), util::CheckError);
}

TEST(EventKind, Names) {
  EXPECT_STREQ(to_string(EventKind::kShallowDip), "shallow-dip");
  EXPECT_STREQ(to_string(EventKind::kDeepDip), "deep-dip");
  EXPECT_STREQ(to_string(EventKind::kFiberCut), "fiber-cut");
}

// ---- Analyses on hand-constructed traces --------------------------------

SnrTrace constant_trace(double db, std::size_t n) {
  SnrTrace trace;
  trace.samples_db.assign(n, static_cast<float>(db));
  return trace;
}

TEST(Analysis, ConstantTraceStats) {
  const auto table = optical::ModulationTable::standard();
  const SnrTrace trace = constant_trace(14.0, 1000);
  const LinkSnrStats stats = analyze_link(trace, table);
  EXPECT_NEAR(stats.range_db, 0.0, 1e-6);
  EXPECT_NEAR(stats.hdr_width_db, 0.0, 1e-6);
  EXPECT_EQ(stats.feasible_capacity, 200_Gbps);
}

TEST(Analysis, DipWidensRangeNotHdr) {
  // 2% of samples dip by 10 dB: range sees it, the 95% HDR does not.
  SnrTrace trace = constant_trace(14.0, 1000);
  for (std::size_t i = 0; i < 20; ++i) trace.samples_db[i * 50] = 4.0f;
  const auto table = optical::ModulationTable::standard();
  const LinkSnrStats stats = analyze_link(trace, table);
  EXPECT_NEAR(stats.range_db, 10.0, 1e-6);
  EXPECT_LT(stats.hdr_width_db, 0.5);
  EXPECT_EQ(stats.feasible_capacity, 200_Gbps);
}

TEST(Analysis, HdrLowerBoundDrivesFeasibleCapacity) {
  // Half the samples at 12 dB, half at 14 dB: HDR spans both, so the
  // feasible capacity must use the 12 dB lower edge -> 175 G (not 200 G).
  SnrTrace trace;
  for (int i = 0; i < 500; ++i) {
    trace.samples_db.push_back(12.0f);
    trace.samples_db.push_back(14.0f);
  }
  const auto table = optical::ModulationTable::standard();
  const LinkSnrStats stats = analyze_link(trace, table);
  EXPECT_NEAR(stats.hdr_lower.value, 12.0, 1e-6);
  EXPECT_EQ(stats.feasible_capacity, 175_Gbps);
}

TEST(Analysis, FailureEpisodesAreMaximalRuns) {
  SnrTrace trace = constant_trace(10.0, 100);
  // Two below-threshold runs: [10,12) and [50,55).
  for (std::size_t i = 10; i < 12; ++i) trace.samples_db[i] = 5.0f;
  for (std::size_t i = 50; i < 55; ++i) trace.samples_db[i] = 2.0f;
  const auto episodes = failure_episodes(trace, 6.5_dB);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].start_index, 10u);
  EXPECT_EQ(episodes[0].length, 2u);
  EXPECT_NEAR(episodes[0].lowest_snr.value, 5.0, 1e-6);
  EXPECT_EQ(episodes[1].start_index, 50u);
  EXPECT_EQ(episodes[1].length, 5u);
  EXPECT_NEAR(episodes[1].lowest_snr.value, 2.0, 1e-6);
  EXPECT_NEAR(episodes[1].duration(trace), 5.0 * 15.0 * util::kMinute, 1e-6);
}

TEST(Analysis, EpisodeAtTraceEndIsClosed) {
  SnrTrace trace = constant_trace(10.0, 20);
  trace.samples_db[19] = 1.0f;
  const auto episodes = failure_episodes(trace, 6.5_dB);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].start_index, 19u);
  EXPECT_EQ(episodes[0].length, 1u);
}

TEST(Analysis, DowntimeGrowsWithConfiguredCapacity) {
  // Episode COUNTS are not monotone in the threshold (adjacent dips merge
  // into one long episode at a higher threshold), but total time below
  // threshold is.
  SnrFleetGenerator fleet(small_params(), 21);
  const auto table = optical::ModulationTable::standard();
  for (int link = 0; link < fleet.link_count(); ++link) {
    const SnrTrace trace = fleet.generate_trace(link);
    std::size_t previous_samples = 0;
    for (const auto& format : table.formats()) {
      std::size_t below = 0;
      for (const auto& episode : failure_episodes(trace, format.min_snr))
        below += episode.length;
      EXPECT_GE(below, previous_samples)
          << "at " << format.name << " on link " << link;
      previous_samples = below;
    }
    const auto counts = failures_per_capacity(trace, table);
    ASSERT_EQ(counts.size(), table.formats().size());
  }
}

TEST(Analysis, FleetReportAggregates) {
  SnrFleetGenerator fleet(small_params(), 33);
  const auto table = optical::ModulationTable::standard();
  const auto report = analyze_fleet(fleet, table, 100_Gbps);
  ASSERT_EQ(report.range_db.size(), 12u);
  ASSERT_EQ(report.feasible_gbps.size(), 12u);
  double expected_total = 0.0;
  double expected_gain = 0.0;
  for (double f : report.feasible_gbps) {
    expected_total += f;
    expected_gain += std::max(0.0, f - 100.0);
  }
  EXPECT_NEAR(report.total_feasible.value, expected_total, 1e-6);
  EXPECT_NEAR(report.total_gain.value, expected_gain, 1e-6);
}

}  // namespace
}  // namespace rwc::telemetry
