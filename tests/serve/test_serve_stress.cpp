// Reader/writer stress over the serve epoch path (tier2; the TSan CI job
// runs this executable to prove the RCU protocol race-free): many reader
// threads snapshot PlanEpochs wait-free while the serving thread publishes
// at full speed, at controller pool sizes {1, 2, 8}; plus the
// restore-then-continue bit-identity drill under concurrent readers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/rcu.hpp"
#include "exec/thread_pool.hpp"
#include "serve/service.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc::serve {
namespace {

struct Fixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  te::McfTe engine;

  Fixture() {
    util::Rng topo_rng = util::Rng::stream(4242, 0);
    topology = sim::waxman(10, topo_rng);
    util::Rng demand_rng = util::Rng::stream(4242, 1);
    sim::GravityParams gravity;
    gravity.total = util::Gbps{topology.total_capacity().value * 0.35};
    demands = sim::gravity_matrix(topology, gravity, demand_rng);
  }
};

/// Deterministic per-round telemetry (pure in round), so every pool size
/// sees the same ingest log without any producer-thread raciness.
std::vector<IngestEvent> batch_for(std::uint64_t round, std::size_t edges) {
  util::Rng rng = util::Rng::stream(4242, 0x500 + round);
  std::vector<IngestEvent> batch;
  const int events = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < events; ++i)
    batch.push_back(
        {IngestType::kSnr,
         static_cast<std::uint32_t>(rng.uniform_int(
             0, static_cast<std::int64_t>(edges) - 1)),
         rng.uniform(4.0, 20.0)});
  return batch;
}

struct ReaderTally {
  std::uint64_t reads = 0;
  std::uint64_t torn = 0;
  std::uint64_t backwards = 0;
};

void hammer_reads(ServeService& service, std::atomic<bool>& stop,
                  ReaderTally& tally) {
  exec::RcuReader reader(service.rcu_domain());
  std::uint64_t last = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    exec::RcuGuard<PlanEpoch> epoch(service.epoch_cell(), reader);
    if (epoch) {
      if (!epoch->consistent()) ++tally.torn;
      if (epoch->epoch < last) ++tally.backwards;
      last = epoch->epoch;
    }
    ++tally.reads;
  }
}

TEST(ServeStress, RacingReadersNeverObserveTornEpochsAtAnyPoolSize) {
  const Fixture fixture;
  std::uint64_t reference_chain = 0;

  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    exec::ThreadPool pool(pool_size);
    ServeConfig config;
    config.pool = &pool;
    ServeService service(fixture.topology, fixture.engine, fixture.demands,
                         config);

    constexpr std::size_t kReaders = 6;
    std::atomic<bool> stop{false};
    std::vector<ReaderTally> tallies(kReaders);
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (std::size_t r = 0; r < kReaders; ++r)
      readers.emplace_back(hammer_reads, std::ref(service), std::ref(stop),
                           std::ref(tallies[r]));

    constexpr std::uint64_t kRounds = 20;
    for (std::uint64_t round = 0; round < kRounds; ++round)
      service.step(batch_for(round, fixture.topology.edge_count()));

    stop.store(true, std::memory_order_relaxed);
    for (std::thread& thread : readers) thread.join();

    std::uint64_t reads = 0;
    for (const ReaderTally& tally : tallies) {
      reads += tally.reads;
      EXPECT_EQ(tally.torn, 0u) << "pool=" << pool_size;
      EXPECT_EQ(tally.backwards, 0u) << "pool=" << pool_size;
    }
    EXPECT_GT(reads, 0u);
    EXPECT_EQ(service.round(), kRounds);

    // Pool-size determinism: every pool size chains identically.
    if (reference_chain == 0) {
      reference_chain = service.signature_chain();
    } else {
      EXPECT_EQ(service.signature_chain(), reference_chain)
          << "pool=" << pool_size;
    }
  }
}

TEST(ServeStress, RestoreThenContinueIsBitIdenticalUnderConcurrentReaders) {
  const Fixture fixture;
  const std::size_t edges = fixture.topology.edge_count();

  ServeService reference(fixture.topology, fixture.engine, fixture.demands);
  for (std::uint64_t round = 0; round < 12; ++round)
    reference.step(batch_for(round, edges));
  const std::uint64_t reference_chain = reference.signature_chain();

  ServeService halves(fixture.topology, fixture.engine, fixture.demands);
  for (std::uint64_t round = 0; round < 6; ++round)
    halves.step(batch_for(round, edges));
  const replay::Checkpoint checkpoint = halves.checkpoint();

  ServeService restored(fixture.topology, fixture.engine, fixture.demands);
  ASSERT_EQ(restored.restore(checkpoint), replay::Error::kNone);

  // Finish the horizon with readers hammering the whole time: restore must
  // be bit-identical AND the read path must stay torn-free across it.
  std::atomic<bool> stop{false};
  ReaderTally tally;
  std::thread reader(hammer_reads, std::ref(restored), std::ref(stop),
                     std::ref(tally));
  for (std::uint64_t round = 6; round < 12; ++round)
    restored.step(batch_for(round, edges));
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(restored.signature_chain(), reference_chain);
  EXPECT_EQ(tally.torn, 0u);
  EXPECT_EQ(tally.backwards, 0u);
}

TEST(ServeStress, ConcurrentProducersNeverCorruptTheQueue) {
  const Fixture fixture;
  // kDropNewest with a tight bound: rejected offers never enter the queue,
  // so the producer-side conservation law below is exact even while the
  // shed path fires constantly.
  ServeConfig config;
  config.queue_capacity = 64;
  config.shed = ShedPolicy::kDropNewest;
  ServeService service(fixture.topology, fixture.engine, fixture.demands,
                       config);
  const std::size_t edges = fixture.topology.edge_count();

  constexpr std::size_t kProducers = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&service, &stop, edges, p] {
      util::Rng rng = util::Rng::stream(4242, 0x900 + p);
      while (!stop.load(std::memory_order_relaxed)) {
        service.queue().offer(
            {IngestType::kSnr,
             static_cast<std::uint32_t>(rng.uniform_int(
                 0, static_cast<std::int64_t>(edges) - 1)),
             rng.uniform(4.0, 20.0)});
        std::this_thread::yield();
      }
    });

  for (int round = 0; round < 10; ++round) service.step();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : producers) thread.join();
  service.step();  // drain the tail

  // Conservation: everything offered was either accepted or shed.
  EXPECT_EQ(service.queue().offered(),
            service.queue().accepted() + service.queue().dropped());
  // And the log replays to the same chain (the racy arrivals are recorded).
  ServeService replayed(fixture.topology, fixture.engine, fixture.demands);
  for (std::size_t round = 0; round < service.log().rounds(); ++round)
    replayed.step(service.log().batch(round));
  EXPECT_EQ(replayed.signature_chain(), service.signature_chain());
}

}  // namespace
}  // namespace rwc::serve
