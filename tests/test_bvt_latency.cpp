// Calibration tests for the reconfiguration latency model (Fig. 6b):
// ~68 s mean with laser power-cycling, ~35 ms without.
#include <gtest/gtest.h>

#include <vector>

#include "bvt/latency.hpp"
#include "util/stats.hpp"

namespace rwc::bvt {
namespace {

std::vector<double> sample(Procedure procedure, int n, std::uint64_t seed) {
  const LatencyModel model;
  util::Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    samples.push_back(model.sample_downtime(procedure, rng));
  return samples;
}

TEST(Latency, StandardMeanNear68Seconds) {
  const auto samples = sample(Procedure::kStandard, 5000, 42);
  const auto summary = util::summarize(samples);
  EXPECT_NEAR(summary.mean, 68.0, 6.0);
  EXPECT_GT(summary.min, 1.0);
}

TEST(Latency, EfficientMeanNear35Milliseconds) {
  const auto samples = sample(Procedure::kEfficient, 5000, 42);
  const auto summary = util::summarize(samples);
  EXPECT_NEAR(summary.mean, 0.035, 0.008);
  EXPECT_GT(summary.min, 0.0);
}

TEST(Latency, EfficientIsOrdersOfMagnitudeFaster) {
  const auto standard = util::summarize(sample(Procedure::kStandard, 2000, 1));
  const auto efficient =
      util::summarize(sample(Procedure::kEfficient, 2000, 1));
  EXPECT_GT(standard.mean / efficient.mean, 500.0);
  // Even the best standard change is slower than the worst efficient one.
  EXPECT_GT(standard.min, efficient.max);
}

TEST(Latency, SamplesAreAlwaysPositive) {
  for (Procedure procedure :
       {Procedure::kStandard, Procedure::kEfficient})
    for (double s : sample(procedure, 1000, 3)) EXPECT_GT(s, 0.0);
}

TEST(Latency, DistributionHasSpreadNotConstant) {
  const auto samples = sample(Procedure::kStandard, 2000, 9);
  const auto summary = util::summarize(samples);
  EXPECT_GT(summary.stddev, 5.0);
  EXPECT_LT(summary.stddev, 50.0);
}

TEST(Latency, ProcedureNames) {
  EXPECT_STREQ(to_string(Procedure::kStandard), "standard");
  EXPECT_STREQ(to_string(Procedure::kEfficient), "efficient");
}

// ---- Edge regimes feeding the update scheduler (docs/UPDATE.md) -------

TEST(Latency, ExpectedDowntimeIsTheSumOfComponentMeans) {
  const LatencyModelParams p;
  const LatencyModel model(p);
  EXPECT_DOUBLE_EQ(model.expected_downtime(Procedure::kStandard),
                   p.laser_shutdown_mean + p.register_program_mean +
                       p.laser_warmup_mean + p.dsp_relock_mean);
  EXPECT_DOUBLE_EQ(model.expected_downtime(Procedure::kEfficient),
                   p.fast_program_mean + p.dsp_relock_mean);
}

TEST(Latency, ExpectedDowntimeMatchesTheSampleMean) {
  // The lognormal components are parameterized by their moments, so the
  // analytic expectation must agree with the empirical mean.
  const LatencyModel model;
  for (Procedure procedure : {Procedure::kStandard, Procedure::kEfficient}) {
    const auto samples = sample(procedure, 5000, 42);
    const double expected = model.expected_downtime(procedure);
    EXPECT_NEAR(util::summarize(samples).mean, expected, 0.15 * expected);
  }
}

TEST(Latency, NoOpTransitionIsFreeInBothProcedures) {
  // from == to is the hitless boundary case: no laser cycling, no DSP
  // relock — exactly zero, sampled or expected.
  const LatencyModel model;
  util::Rng rng(7);
  for (Procedure procedure : {Procedure::kStandard, Procedure::kEfficient}) {
    EXPECT_DOUBLE_EQ(
        model.transition_downtime(procedure, util::Gbps{100.0},
                                  util::Gbps{100.0}),
        0.0);
    EXPECT_DOUBLE_EQ(
        model.transition_downtime(procedure, util::Gbps{0.0},
                                  util::Gbps{0.0}, &rng),
        0.0);
  }
  // And the zero-duration path must not have consumed randomness.
  util::Rng untouched(7);
  EXPECT_DOUBLE_EQ(model.sample_downtime(Procedure::kStandard, rng),
                   model.sample_downtime(Procedure::kStandard, untouched));
}

TEST(Latency, AnyRateChangePaysTheFullProcedureCost) {
  // Every 25G step is a modulation-format change (Fig. 6b), so the cost is
  // flat in |from - to|: a one-step and an eight-step change charge the
  // same expected downtime.
  const LatencyModel model;
  for (Procedure procedure : {Procedure::kStandard, Procedure::kEfficient}) {
    const double one_step = model.transition_downtime(
        procedure, util::Gbps{100.0}, util::Gbps{125.0});
    const double eight_steps = model.transition_downtime(
        procedure, util::Gbps{100.0}, util::Gbps{300.0});
    const double downgrade = model.transition_downtime(
        procedure, util::Gbps{300.0}, util::Gbps{100.0});
    EXPECT_DOUBLE_EQ(one_step, model.expected_downtime(procedure));
    EXPECT_DOUBLE_EQ(one_step, eight_steps);
    EXPECT_DOUBLE_EQ(one_step, downgrade);
  }
}

TEST(Latency, HitlessVersusLaserCyclingBoundary) {
  // The two procedures sit on opposite sides of the drain decision the
  // update scheduler makes: seconds of dark link vs milliseconds hitless.
  const LatencyModel model;
  const double standard = model.transition_downtime(
      Procedure::kStandard, util::Gbps{100.0}, util::Gbps{200.0});
  const double efficient = model.transition_downtime(
      Procedure::kEfficient, util::Gbps{100.0}, util::Gbps{200.0});
  EXPECT_GT(standard, 60.0);
  EXPECT_LT(efficient, 0.1);
  EXPECT_GT(standard / efficient, 500.0);
}

TEST(Latency, SampledTransitionsFollowTheRngStream) {
  // With an rng attached the transition draws from the same stream as
  // sample_downtime — deterministic given the seed.
  const LatencyModel model;
  util::Rng a(11);
  util::Rng b(11);
  const double via_transition = model.transition_downtime(
      Procedure::kEfficient, util::Gbps{100.0}, util::Gbps{200.0}, &a);
  const double via_sample = model.sample_downtime(Procedure::kEfficient, b);
  EXPECT_DOUBLE_EQ(via_transition, via_sample);
  EXPECT_GT(via_transition, 0.0);
}

class LatencySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencySeedSweep, MeansStableAcrossSeeds) {
  const auto standard =
      util::summarize(sample(Procedure::kStandard, 3000, GetParam()));
  const auto efficient =
      util::summarize(sample(Procedure::kEfficient, 3000, GetParam()));
  EXPECT_NEAR(standard.mean, 68.0, 8.0);
  EXPECT_NEAR(efficient.mean, 0.035, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencySeedSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace rwc::bvt
