// Calibration tests for the reconfiguration latency model (Fig. 6b):
// ~68 s mean with laser power-cycling, ~35 ms without.
#include <gtest/gtest.h>

#include <vector>

#include "bvt/latency.hpp"
#include "util/stats.hpp"

namespace rwc::bvt {
namespace {

std::vector<double> sample(Procedure procedure, int n, std::uint64_t seed) {
  const LatencyModel model;
  util::Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    samples.push_back(model.sample_downtime(procedure, rng));
  return samples;
}

TEST(Latency, StandardMeanNear68Seconds) {
  const auto samples = sample(Procedure::kStandard, 5000, 42);
  const auto summary = util::summarize(samples);
  EXPECT_NEAR(summary.mean, 68.0, 6.0);
  EXPECT_GT(summary.min, 1.0);
}

TEST(Latency, EfficientMeanNear35Milliseconds) {
  const auto samples = sample(Procedure::kEfficient, 5000, 42);
  const auto summary = util::summarize(samples);
  EXPECT_NEAR(summary.mean, 0.035, 0.008);
  EXPECT_GT(summary.min, 0.0);
}

TEST(Latency, EfficientIsOrdersOfMagnitudeFaster) {
  const auto standard = util::summarize(sample(Procedure::kStandard, 2000, 1));
  const auto efficient =
      util::summarize(sample(Procedure::kEfficient, 2000, 1));
  EXPECT_GT(standard.mean / efficient.mean, 500.0);
  // Even the best standard change is slower than the worst efficient one.
  EXPECT_GT(standard.min, efficient.max);
}

TEST(Latency, SamplesAreAlwaysPositive) {
  for (Procedure procedure :
       {Procedure::kStandard, Procedure::kEfficient})
    for (double s : sample(procedure, 1000, 3)) EXPECT_GT(s, 0.0);
}

TEST(Latency, DistributionHasSpreadNotConstant) {
  const auto samples = sample(Procedure::kStandard, 2000, 9);
  const auto summary = util::summarize(samples);
  EXPECT_GT(summary.stddev, 5.0);
  EXPECT_LT(summary.stddev, 50.0);
}

TEST(Latency, ProcedureNames) {
  EXPECT_STREQ(to_string(Procedure::kStandard), "standard");
  EXPECT_STREQ(to_string(Procedure::kEfficient), "efficient");
}

class LatencySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencySeedSweep, MeansStableAcrossSeeds) {
  const auto standard =
      util::summarize(sample(Procedure::kStandard, 3000, GetParam()));
  const auto efficient =
      util::summarize(sample(Procedure::kEfficient, 3000, GetParam()));
  EXPECT_NEAR(standard.mean, 68.0, 8.0);
  EXPECT_NEAR(efficient.mean, 0.035, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencySeedSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace rwc::bvt
