// Tests for the management-plane data model and the SNMP-lite MIB view.
#include <gtest/gtest.h>

#include "mgmt/config_model.hpp"
#include "mgmt/mib.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"

namespace rwc::mgmt {
namespace {

using util::Db;
using util::Gbps;
using namespace util::literals;

struct Fixture {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  core::ControllerOptions options;

  core::DynamicCapacityController make_controller() {
    return core::DynamicCapacityController(
        base, optical::ModulationTable::standard(), engine, options);
  }
};

TEST(ConfigModel, SnapshotReflectsControllerState) {
  Fixture fx;
  fx.options.snr_margin = 0.75_dB;
  fx.options.hysteresis = core::HysteresisParams{0.5_dB, 4};
  auto controller = fx.make_controller();
  const auto config = snapshot(controller, "mcf");
  EXPECT_EQ(config.engine, "mcf");
  EXPECT_DOUBLE_EQ(config.snr_margin_db, 0.75);
  EXPECT_TRUE(config.hysteresis_enabled);
  EXPECT_EQ(config.hysteresis_hold_rounds, 4);
  ASSERT_EQ(config.links.size(), fx.base.edge_count());
  EXPECT_EQ(config.links[0].name, "A->B");
  EXPECT_DOUBLE_EQ(config.links[0].nominal_gbps, 100.0);
  EXPECT_DOUBLE_EQ(config.links[0].configured_gbps, 100.0);
}

TEST(ConfigModel, SnapshotTracksRuntimeCapacityChanges) {
  Fixture fx;
  fx.options.snr_margin = 0.0_dB;
  auto controller = fx.make_controller();
  // Flap one fiber down to 50 G.
  std::vector<Db> snr(fx.base.edge_count(), 20.0_dB);
  snr[0] = 4.0_dB;
  controller.run_round(snr, {});
  const auto config = snapshot(controller, "mcf");
  EXPECT_DOUBLE_EQ(config.links[0].configured_gbps, 50.0);
  EXPECT_DOUBLE_EQ(config.links[0].nominal_gbps, 100.0);
}

TEST(ConfigModel, TextRoundTrip) {
  Fixture fx;
  fx.options.hysteresis = core::HysteresisParams{0.25_dB, 2};
  auto controller = fx.make_controller();
  const auto config = snapshot(controller, "swan");
  const std::string text = to_text(config);
  const auto parsed = from_text(text);
  EXPECT_EQ(parsed.engine, config.engine);
  EXPECT_DOUBLE_EQ(parsed.snr_margin_db, config.snr_margin_db);
  EXPECT_EQ(parsed.consolidate, config.consolidate);
  EXPECT_EQ(parsed.hysteresis_enabled, config.hysteresis_enabled);
  EXPECT_DOUBLE_EQ(parsed.hysteresis_extra_margin_db,
                   config.hysteresis_extra_margin_db);
  ASSERT_EQ(parsed.links.size(), config.links.size());
  for (std::size_t i = 0; i < config.links.size(); ++i) {
    EXPECT_EQ(parsed.links[i].name, config.links[i].name);
    EXPECT_DOUBLE_EQ(parsed.links[i].configured_gbps,
                     config.links[i].configured_gbps);
  }
}

TEST(ConfigModel, TextEncodingIsDeterministicAndPathShaped) {
  Fixture fx;
  auto controller = fx.make_controller();
  const auto config = snapshot(controller, "mcf");
  const std::string a = to_text(config);
  const std::string b = to_text(config);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("controller/engine mcf"), std::string::npos);
  EXPECT_NE(a.find("links/0/configured-gbps"), std::string::npos);
}

TEST(ConfigModel, FromTextRejectsMalformedInput) {
  EXPECT_THROW(from_text("no-value-line\n"), util::CheckError);
  EXPECT_THROW(from_text("controller/engine mcf\n"), util::CheckError);
}

TEST(Mib, OidToString) {
  EXPECT_EQ(to_string({1, 3, 6}), "1.3.6");
  EXPECT_EQ(to_string(kRwcEnterpriseArc), "1.3.6.1.4.1.53535");
}

TEST(Mib, GetScalarsAndTable) {
  Fixture fx;
  auto controller = fx.make_controller();
  const MibView mib(controller);

  Oid count_oid = kRwcEnterpriseArc;
  count_oid.insert(count_oid.end(), {1, 1, 0});
  const auto count = mib.get(count_oid);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(count->integer,
            static_cast<long long>(fx.base.edge_count()));

  Oid name_oid = kRwcEnterpriseArc;
  name_oid.insert(name_oid.end(), {1, 2, 0, 1});
  const auto name = mib.get(name_oid);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->kind, MibValue::Kind::kString);
  EXPECT_EQ(name->text, "A->B");

  Oid bogus = kRwcEnterpriseArc;
  bogus.insert(bogus.end(), {9, 9, 9});
  EXPECT_FALSE(mib.get(bogus).has_value());
}

TEST(Mib, WalkIsSortedAndPrefixScoped) {
  Fixture fx;
  auto controller = fx.make_controller();
  const MibView mib(controller);
  const auto everything = mib.walk(kRwcEnterpriseArc);
  // 1 scalar + 3 columns per link (no devices attached).
  EXPECT_EQ(everything.size(), 1 + 3 * fx.base.edge_count());
  for (std::size_t i = 1; i < everything.size(); ++i)
    EXPECT_LT(everything[i - 1].first, everything[i].first);

  Oid link0 = kRwcEnterpriseArc;
  link0.insert(link0.end(), {1, 2, 0});
  EXPECT_EQ(mib.walk(link0).size(), 3u);
}

TEST(Mib, DeviceColumnsAppearWithDeviceArray) {
  Fixture fx;
  auto controller = fx.make_controller();
  auto devices = core::make_device_array(
      fx.base, optical::ModulationTable::standard(), 3, 14.3_dB);
  const MibView mib(controller, &devices);
  Oid snr_oid = kRwcEnterpriseArc;
  snr_oid.insert(snr_oid.end(), {1, 2, 2, 4});
  const auto snr = mib.get(snr_oid);
  ASSERT_TRUE(snr.has_value());
  EXPECT_EQ(snr->integer, 1430);  // centi-dB
  Oid status_oid = kRwcEnterpriseArc;
  status_oid.insert(status_oid.end(), {1, 2, 2, 5});
  const auto status = mib.get(status_oid);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->integer & bvt::status::kLaserOn);
  EXPECT_EQ(mib.walk(kRwcEnterpriseArc).size(),
            1 + 6 * fx.base.edge_count());
}

TEST(Mib, RejectsMismatchedDeviceArray) {
  Fixture fx;
  auto controller = fx.make_controller();
  core::DeviceArray devices;  // wrong size
  EXPECT_THROW(MibView(controller, &devices), util::CheckError);
}

}  // namespace
}  // namespace rwc::mgmt
