// Tests for the WAN simulator: policy comparisons on short horizons.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc::sim {
namespace {

using util::Gbps;
using namespace util::literals;

SimulationConfig short_config(CapacityPolicy policy, std::uint64_t seed = 3) {
  SimulationConfig config;
  config.horizon = 12.0 * util::kHour;
  config.te_interval = 30.0 * util::kMinute;
  config.policy = policy;
  config.seed = seed;
  config.diurnal = false;
  return config;
}

te::TrafficMatrix demands_for(const graph::Graph& g, double total,
                              std::uint64_t seed = 11) {
  util::Rng rng(seed);
  GravityParams params;
  params.total = Gbps{total};
  return gravity_matrix(g, params, rng);
}

TEST(Simulator, MetricsAreInternallyConsistent) {
  const graph::Graph g = abilene();
  te::McfTe engine;
  WanSimulator simulator(g, engine,
                         short_config(CapacityPolicy::kDynamicHitless));
  const auto metrics = simulator.run(demands_for(g, 400.0));
  EXPECT_EQ(metrics.te_rounds, 24u);
  EXPECT_GT(metrics.offered_gbps_hours, 0.0);
  EXPECT_GT(metrics.delivered_gbps_hours, 0.0);
  EXPECT_LE(metrics.delivered_gbps_hours,
            metrics.offered_gbps_hours + 1e-6);
  EXPECT_GE(metrics.availability, 0.0);
  EXPECT_LE(metrics.availability, 1.0);
  EXPECT_GT(metrics.delivered_fraction(), 0.5);
}

TEST(Simulator, DeterministicForSeed) {
  const graph::Graph g = abilene();
  te::McfTe engine;
  const auto demands = demands_for(g, 500.0);
  WanSimulator a(g, engine, short_config(CapacityPolicy::kDynamic, 7));
  WanSimulator b(g, engine, short_config(CapacityPolicy::kDynamic, 7));
  const auto ma = a.run(demands);
  const auto mb = b.run(demands);
  EXPECT_EQ(ma.delivered_gbps_hours, mb.delivered_gbps_hours);
  EXPECT_EQ(ma.upgrades, mb.upgrades);
  EXPECT_EQ(ma.link_failures, mb.link_failures);
}

TEST(Simulator, DynamicBeatsStaticUnderOverload) {
  // Offered load far above the static 100 G fabric: dynamic capacity must
  // deliver more.
  const graph::Graph g = abilene();
  te::McfTe engine;
  const auto demands = demands_for(g, 2500.0);
  WanSimulator dynamic_sim(
      g, engine, short_config(CapacityPolicy::kDynamicHitless, 5));
  WanSimulator static_sim(g, engine,
                          short_config(CapacityPolicy::kStatic, 5));
  const auto dynamic_metrics = dynamic_sim.run(demands);
  const auto static_metrics = static_sim.run(demands);
  EXPECT_GT(dynamic_metrics.delivered_gbps_hours,
            1.1 * static_metrics.delivered_gbps_hours);
  EXPECT_GT(dynamic_metrics.upgrades, 0u);
}

TEST(Simulator, HitlessDeliversAtLeastAsMuchAsLaserCycling) {
  const graph::Graph g = abilene();
  te::McfTe engine;
  const auto demands = demands_for(g, 2000.0);
  WanSimulator hitless(g, engine,
                       short_config(CapacityPolicy::kDynamicHitless, 9));
  WanSimulator standard(g, engine,
                        short_config(CapacityPolicy::kDynamic, 9));
  const auto hitless_metrics = hitless.run(demands);
  const auto standard_metrics = standard.run(demands);
  EXPECT_GE(hitless_metrics.delivered_gbps_hours,
            standard_metrics.delivered_gbps_hours - 1e-6);
  // Same seed, same reconfiguration schedule, but hitless downtime is
  // orders of magnitude smaller.
  EXPECT_LT(hitless_metrics.reconfig_downtime_hours,
            standard_metrics.reconfig_downtime_hours + 1e-9);
}

TEST(Simulator, AggressiveStaticFailsMoreThanConservative) {
  // Fig. 3a's lesson: statically provisioning 200 G costs failures. Use a
  // degraded SNR population so thresholds actually bite.
  const graph::Graph g = abilene();
  te::McfTe engine;
  auto config200 = short_config(CapacityPolicy::kStaticAggressive, 13);
  config200.static_capacity = 200_Gbps;
  config200.horizon = 2.0 * util::kDay;
  config200.snr_model.fiber_baseline_mean = util::Db{13.5};
  auto config100 = config200;
  config100.policy = CapacityPolicy::kStatic;
  config100.static_capacity = 100_Gbps;

  const auto demands = demands_for(g, 500.0);
  WanSimulator aggressive(g, engine, config200);
  WanSimulator conservative(g, engine, config100);
  const auto aggressive_metrics = aggressive.run(demands);
  const auto conservative_metrics = conservative.run(demands);
  EXPECT_GE(aggressive_metrics.link_failures,
            conservative_metrics.link_failures);
  EXPECT_LE(aggressive_metrics.availability,
            conservative_metrics.availability + 1e-9);
}

TEST(Simulator, DynamicAvailabilityBeatsStaticWhenSnrDegrades) {
  // Links that dip below 6.5 dB but stay above 3 dB stay alive (at 50 G)
  // under the dynamic policy.
  const graph::Graph g = abilene();
  te::McfTe engine;
  auto config = short_config(CapacityPolicy::kDynamicHitless, 17);
  config.horizon = 2.0 * util::kDay;
  config.snr_model.fiber_baseline_mean = util::Db{11.0};
  config.snr_model.fiber_deep_rate_per_year = 30.0;  // frequent deep dips
  auto static_config = config;
  static_config.policy = CapacityPolicy::kStatic;

  const auto demands = demands_for(g, 300.0);
  WanSimulator dynamic_sim(g, engine, config);
  WanSimulator static_sim(g, engine, static_config);
  const auto dynamic_metrics = dynamic_sim.run(demands);
  const auto static_metrics = static_sim.run(demands);
  EXPECT_GE(dynamic_metrics.availability, static_metrics.availability);
}

TEST(Simulator, PolicyNames) {
  EXPECT_STREQ(to_string(CapacityPolicy::kStatic), "static-100");
  EXPECT_STREQ(to_string(CapacityPolicy::kStaticAggressive),
               "static-aggressive");
  EXPECT_STREQ(to_string(CapacityPolicy::kDynamic), "dynamic");
  EXPECT_STREQ(to_string(CapacityPolicy::kDynamicHitless),
               "dynamic-hitless");
}

}  // namespace
}  // namespace rwc::sim
