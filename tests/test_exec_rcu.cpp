// Tests for the RCU epoch-publication primitive (exec/rcu.hpp): wait-free
// snapshot safety, grace-period reclamation, and reader-capacity limits.
// The concurrent stress lives in tests/serve/ (tier2, run under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "exec/rcu.hpp"
#include "util/check.hpp"

namespace rwc::exec {
namespace {

/// Payload whose destructor records into a shared counter, so tests can
/// observe exactly when reclamation happens.
struct Tracked {
  explicit Tracked(int value, std::atomic<int>& frees)
      : value(value), frees(&frees) {}
  ~Tracked() { frees->fetch_add(1); }
  int value;
  std::atomic<int>* frees;
};

TEST(Rcu, AcquireBeforeFirstPublishReturnsNull) {
  RcuDomain domain(4);
  RcuCell<int> cell(domain);
  RcuReader reader(domain);
  RcuGuard<int> guard(cell, reader);
  EXPECT_FALSE(guard);
  EXPECT_EQ(guard.get(), nullptr);
}

TEST(Rcu, ReadersSeePublishedValues) {
  RcuDomain domain(4);
  RcuCell<int> cell(domain);
  RcuReader reader(domain);
  cell.publish(std::make_unique<int>(42));
  {
    RcuGuard<int> guard(cell, reader);
    ASSERT_TRUE(guard);
    EXPECT_EQ(*guard, 42);
  }
  cell.publish(std::make_unique<int>(7));
  {
    RcuGuard<int> guard(cell, reader);
    EXPECT_EQ(*guard, 7);
  }
}

TEST(Rcu, VersionAdvancesOnEveryPublish) {
  RcuDomain domain(2);
  RcuCell<int> cell(domain);
  const std::uint64_t before = domain.version();
  cell.publish(std::make_unique<int>(1));
  cell.publish(std::make_unique<int>(2));
  EXPECT_EQ(domain.version(), before + 2);
}

TEST(Rcu, SupersededObjectSurvivesWhileAReaderHoldsIt) {
  std::atomic<int> frees{0};
  RcuDomain domain(4);
  {
    RcuCell<Tracked> cell(domain);
    RcuReader reader(domain);
    cell.publish(std::make_unique<Tracked>(1, frees));

    const Tracked* held = cell.acquire(reader);
    ASSERT_NE(held, nullptr);
    cell.publish(std::make_unique<Tracked>(2, frees));
    // The old object is retired but must stay alive: this reader's
    // announcement predates its retirement.
    EXPECT_EQ(frees.load(), 0);
    EXPECT_EQ(held->value, 1);
    EXPECT_GE(domain.deferred(), 1u);

    cell.release(reader);
    // The next publication reclaims: no active announcement pins the tag.
    cell.publish(std::make_unique<Tracked>(3, frees));
    EXPECT_EQ(frees.load(), 2);  // objects 1 and 2
  }
  // Cell destruction retires the final object; no reader is active, so the
  // domain frees it immediately.
  EXPECT_EQ(frees.load(), 3);
}

TEST(Rcu, SynchronizeWaitsForActiveReaders) {
  std::atomic<int> frees{0};
  RcuDomain domain(4);
  RcuCell<Tracked> cell(domain);
  cell.publish(std::make_unique<Tracked>(1, frees));

  RcuReader reader(domain);
  const Tracked* held = cell.acquire(reader);
  ASSERT_EQ(held->value, 1);
  cell.publish(std::make_unique<Tracked>(2, frees));

  std::atomic<bool> synchronized{false};
  std::thread writer([&] {
    domain.synchronize();
    synchronized.store(true);
  });
  // The writer must block while the snapshot is held...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(synchronized.load());
  EXPECT_EQ(frees.load(), 0);
  // ...and complete (freeing the superseded object) once it is released.
  cell.release(reader);
  writer.join();
  EXPECT_TRUE(synchronized.load());
  EXPECT_EQ(frees.load(), 1);
}

TEST(Rcu, RegistrationBeyondCapacityThrows) {
  RcuDomain domain(2);
  RcuReader first(domain);
  {
    RcuReader second(domain);
    EXPECT_EQ(domain.registered_readers(), 2u);
    EXPECT_THROW({ RcuReader third(domain); }, util::CheckError);
  }
  // Slots are reusable after a reader departs.
  RcuReader replacement(domain);
  EXPECT_EQ(domain.registered_readers(), 2u);
}

TEST(Rcu, DepartingReaderUnpinsReclamation) {
  std::atomic<int> frees{0};
  RcuDomain domain(4);
  RcuCell<Tracked> cell(domain);
  cell.publish(std::make_unique<Tracked>(1, frees));
  {
    RcuReader reader(domain);
    const Tracked* held = cell.acquire(reader);
    ASSERT_NE(held, nullptr);
    cell.publish(std::make_unique<Tracked>(2, frees));
    EXPECT_EQ(frees.load(), 0);
    cell.release(reader);
    // Reader departs here; its unregistration reclaims the retired object.
  }
  EXPECT_EQ(frees.load(), 1);
}

}  // namespace
}  // namespace rwc::exec
