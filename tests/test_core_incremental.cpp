// Tests for the controller's incremental re-solve hot path (docs/FLEET.md):
// the memo fast path, the AugmentCache dirty-link diff, and the contract
// that the hot path changes work counters and timings only — every round's
// result is bit-identical to a full re-solve on the same inputs. A
// non-incremental twin controller is driven with the same per-round inputs
// and the round signatures (tests/support/round_signature.hpp) must match.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "sim/topology.hpp"
#include "support/round_signature.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Db;
using util::Gbps;
using namespace util::literals;

std::vector<Db> uniform_snr(const graph::Graph& g, double db) {
  return std::vector<Db>(g.edge_count(), Db{db});
}

ControllerOptions incremental_options() {
  ControllerOptions options;
  options.snr_margin = 0.0_dB;
  options.incremental = true;
  return options;
}

ControllerOptions full_options() {
  ControllerOptions options;
  options.snr_margin = 0.0_dB;
  return options;
}

/// Both controllers see the same round inputs; the incremental one must
/// produce the same signature. Returns the incremental round's report.
DynamicCapacityController::RoundReport step_pair(
    DynamicCapacityController& incremental, DynamicCapacityController& full,
    std::span<const Db> snr, const te::TrafficMatrix& demands,
    const std::string& context) {
  auto inc_report = incremental.run_round(snr, demands);
  const auto full_report = full.run_round(snr, demands);
  const prop::InvariantResult check = prop::check_signatures_equal(
      prop::signature_of(full_report), prop::signature_of(inc_report),
      context);
  EXPECT_TRUE(check.ok) << check.detail;
  EXPECT_FALSE(full_report.stats.incremental_hit);
  return inc_report;
}

TEST(CoreIncremental, MemoHitsOnceInputsStabilize) {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("B"), 150_Gbps, 0}};
  const std::vector<Db> snr = uniform_snr(base, 20.0);

  // Round 0: cold — a full solve with every base link dirty.
  auto report = step_pair(incremental, full, snr, demands, "round 0");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_links, base.edge_count());

  // The first round may reconfigure links (upgrades change the next
  // round's solve inputs); with constant SNR and demands the inputs reach
  // a fixed point and the memo must serve every subsequent round.
  report = step_pair(incremental, full, snr, demands, "round 1");
  for (int round = 2; round < 6; ++round) {
    report = step_pair(incremental, full, snr, demands,
                       "round " + std::to_string(round));
    EXPECT_TRUE(report.stats.incremental_hit) << "round " << round;
    EXPECT_EQ(report.stats.dirty_links, 0u) << "round " << round;
    EXPECT_EQ(report.stats.evaluations, 0u) << "round " << round;
  }
}

TEST(CoreIncremental, SnrShiftOnEveryLinkMakesAllLinksDirty) {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("B"), 150_Gbps, 0}};

  auto report =
      step_pair(incremental, full, uniform_snr(base, 20.0), demands, "warm 0");
  report =
      step_pair(incremental, full, uniform_snr(base, 20.0), demands, "warm 1");
  report =
      step_pair(incremental, full, uniform_snr(base, 20.0), demands, "warm 2");
  ASSERT_TRUE(report.stats.incremental_hit);

  // Every link's SNR now supports only 175 G: every configured capacity
  // changes, so the memo misses and the augment diff marks every link.
  report =
      step_pair(incremental, full, uniform_snr(base, 12.0), demands, "shift");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_links, base.edge_count());
  EXPECT_GE(report.stats.evaluations, 1u);
}

TEST(CoreIncremental, DemandOnlyChangeReusesAugmentedTopology) {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const NodeId a = *base.find_node("A");
  const NodeId b = *base.find_node("B");
  const std::vector<Db> snr = uniform_snr(base, 20.0);

  te::TrafficMatrix demands = {{a, b, 150_Gbps, 0}};
  step_pair(incremental, full, snr, demands, "warm 0");
  step_pair(incremental, full, snr, demands, "warm 1");
  auto report = step_pair(incremental, full, snr, demands, "warm 2");
  ASSERT_TRUE(report.stats.incremental_hit);

  // Changing only the demand volume invalidates the memo (the solve must
  // rerun) but no base link's inputs moved, so the augmented topology is
  // served from the AugmentCache: zero dirty links on a non-hit round.
  demands[0].volume = 160_Gbps;
  report = step_pair(incremental, full, snr, demands, "demand change");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_links, 0u);
  EXPECT_GE(report.stats.evaluations, 1u);
}

TEST(CoreIncremental, RestoreStateInvalidatesMemoButNotResults) {
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("B"), 150_Gbps, 0}};
  const std::vector<Db> snr = uniform_snr(base, 20.0);

  step_pair(incremental, full, snr, demands, "warm 0");
  step_pair(incremental, full, snr, demands, "warm 1");
  auto report = step_pair(incremental, full, snr, demands, "warm 2");
  ASSERT_TRUE(report.stats.incremental_hit);

  // Round-tripping through PersistentState drops the memo (it is
  // deliberately not checkpointed): the next round costs one full solve
  // with an all-dirty augment, then the memo re-forms.
  incremental.restore_state(incremental.save_state());
  report = step_pair(incremental, full, snr, demands, "post-restore");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_links, base.edge_count());
  report = step_pair(incremental, full, snr, demands, "post-restore + 1");
  EXPECT_TRUE(report.stats.incremental_hit);
}

TEST(CoreIncremental, ZeroHeadroomRoundsHitImmediately) {
  // SNR pinned exactly at the nominal rate's threshold: no link has
  // headroom, so no variable links exist and the solve inputs are stable
  // from round 0 — the memo serves every round after the first.
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("B"), 90_Gbps, 0}};
  // 6.5 dB is the 100 G threshold (zero margin): feasible == nominal.
  const std::vector<Db> snr = uniform_snr(base, 6.5);

  auto report = step_pair(incremental, full, snr, demands, "round 0");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_TRUE(report.plan.upgrades.empty());
  for (int round = 1; round < 4; ++round) {
    report = step_pair(incremental, full, snr, demands,
                       "round " + std::to_string(round));
    EXPECT_TRUE(report.stats.incremental_hit) << "round " << round;
    EXPECT_TRUE(report.plan.upgrades.empty()) << "round " << round;
  }
}

TEST(CoreIncremental, SingleLinkSnrShiftDirtiesExactlyThatLink) {
  // The finest-grained perturbation the paper's traces produce: one link's
  // SNR crosses a modulation threshold. The augment diff must mark exactly
  // that link and RoundStats must report the matching dirty fraction.
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const te::TrafficMatrix demands = {
      {*base.find_node("A"), *base.find_node("B"), 150_Gbps, 0}};

  std::vector<Db> snr = uniform_snr(base, 20.0);
  step_pair(incremental, full, snr, demands, "warm 0");
  step_pair(incremental, full, snr, demands, "warm 1");
  auto report = step_pair(incremental, full, snr, demands, "warm 2");
  ASSERT_TRUE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_fraction, 0.0);

  // Drop one link below the 200 G threshold: its feasible rate (and only
  // its) changes, so the memo misses with a single dirty link.
  snr[0] = Db{12.0};
  report = step_pair(incremental, full, snr, demands, "single-link shift");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_links, 1u);
  EXPECT_EQ(report.stats.dirty_fraction,
            1.0 / static_cast<double>(base.edge_count()));

  // Every link shifted (including the already-degraded one): the
  // fraction saturates at 1.
  report = step_pair(incremental, full, uniform_snr(base, 6.5), demands,
                     "all-links shift");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_fraction, 1.0);
}

TEST(CoreIncremental, PartialResolveFlagTracksSolverTierOnDemandShift) {
  // Two overlapping demands: changing the first demand's volume leaves the
  // topology (and so every arc cost) untouched, but shifts the residuals
  // the SECOND demand's solve starts from — exactly the dirty-subgraph
  // case the solver's partial tier serves. The round must stay
  // bit-identical to the full twin and report partial_resolve.
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const NodeId a = *base.find_node("A");
  const NodeId b = *base.find_node("B");
  const std::vector<Db> snr = uniform_snr(base, 20.0);

  te::TrafficMatrix demands = {{a, b, 150_Gbps, 1}, {a, b, 120_Gbps, 0}};
  // Two overlapping demands take a few rounds to reach the fixed point
  // (upgrades feed the traffic-proportional penalty feeds the augment).
  DynamicCapacityController::RoundReport report;
  for (int round = 0; round < 8 && !report.stats.incremental_hit; ++round)
    report = step_pair(incremental, full, snr, demands,
                       "warm " + std::to_string(round));
  ASSERT_TRUE(report.stats.incremental_hit);
  EXPECT_FALSE(report.stats.partial_resolve);

  demands[0].volume = 140_Gbps;
  report = step_pair(incremental, full, snr, demands, "demand shift");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_EQ(report.stats.dirty_links, 0u);
  EXPECT_TRUE(report.stats.partial_resolve);
}

TEST(CoreIncremental, RestoreThenPartialRoundStaysBitIdentical) {
  // Warm caches are observational and never checkpointed: after a
  // save/restore round-trip the first round runs fully cold, and the
  // partial tier must re-form from the fresh recordings — with every
  // round still bit-identical to the always-full twin.
  graph::Graph base = sim::fig7_square();
  te::McfTe::Options cold_after_restore;
  te::McfTe engine(cold_after_restore);
  DynamicCapacityController incremental(
      base, optical::ModulationTable::standard(), engine,
      incremental_options());
  DynamicCapacityController full(base, optical::ModulationTable::standard(),
                                 engine, full_options());
  const NodeId a = *base.find_node("A");
  const NodeId b = *base.find_node("B");
  const NodeId c = *base.find_node("C");
  const std::vector<Db> snr = uniform_snr(base, 20.0);

  // Distinct terminals: the two demands' per-demand networks never share a
  // structural fingerprint, so a cold-cache round has nothing to repair
  // (same-terminal demands would partially reuse each other within one
  // round — also sound, but not what this test isolates).
  te::TrafficMatrix demands = {{a, b, 150_Gbps, 1}, {c, b, 120_Gbps, 0}};
  DynamicCapacityController::RoundReport report;
  for (int round = 0; round < 8 && !report.stats.incremental_hit; ++round)
    report = step_pair(incremental, full, snr, demands,
                       "warm " + std::to_string(round));
  ASSERT_TRUE(report.stats.incremental_hit);

  // Restore drops the controller memo; the engine's warm cache is reset
  // the way rwc::replay does on restore (docs/REPLAY.md).
  incremental.restore_state(incremental.save_state());
  engine.warm_cache().restore({});
  report = step_pair(incremental, full, snr, demands, "post-restore");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_FALSE(report.stats.partial_resolve);

  step_pair(incremental, full, snr, demands, "re-warm");
  demands[0].volume = 140_Gbps;
  report = step_pair(incremental, full, snr, demands, "partial after restore");
  EXPECT_FALSE(report.stats.incremental_hit);
  EXPECT_TRUE(report.stats.partial_resolve);
}

TEST(CoreIncremental, AugmentRejectsZeroHeadroomVariableLink) {
  // Algorithm 1's precondition: a variable link must offer strictly more
  // than its current capacity. A zero-headroom "upgrade" is a contract
  // violation, not a no-op.
  graph::Graph base = sim::fig7_square();
  const std::vector<VariableLink> zero_headroom = {
      {EdgeId{0}, base.edge(EdgeId{0}).capacity}};
  EXPECT_THROW(augment_topology(base, zero_headroom,
                                TrafficProportionalPenalty{}, {}),
               util::CheckError);
}

TEST(CoreIncremental, AugmentCachePenaltyIdentityAndTrafficKeying) {
  // The cache keys on the penalty policy's identity and the traffic on
  // VARIABLE links only: swapping the policy object or moving variable-link
  // traffic must miss; moving traffic on a non-variable link must hit.
  graph::Graph base = sim::fig7_square();
  const std::vector<VariableLink> variable = {{EdgeId{0}, 200_Gbps}};
  const TrafficProportionalPenalty penalty_a;
  const TrafficProportionalPenalty penalty_b;
  std::vector<double> traffic(base.edge_count(), 0.0);

  AugmentCache cache;
  cache.get(base, variable, penalty_a, traffic, {});
  EXPECT_FALSE(cache.last_was_hit());
  EXPECT_EQ(cache.last_dirty().size(), base.edge_count());

  cache.get(base, variable, penalty_a, traffic, {});
  EXPECT_TRUE(cache.last_was_hit());

  // Traffic on a NON-variable link is irrelevant to the augmentation.
  traffic[1] = 40.0;
  cache.get(base, variable, penalty_a, traffic, {});
  EXPECT_TRUE(cache.last_was_hit());

  // Traffic on the variable link feeds the penalty policy: dirty.
  traffic[0] = 40.0;
  cache.get(base, variable, penalty_a, traffic, {});
  EXPECT_FALSE(cache.last_was_hit());
  ASSERT_EQ(cache.last_dirty().size(), 1u);
  EXPECT_EQ(cache.last_dirty()[0], EdgeId{0});

  // Same parameters, different policy object: identity keying must miss.
  cache.get(base, variable, penalty_b, traffic, {});
  EXPECT_FALSE(cache.last_was_hit());

  cache.invalidate();
  cache.get(base, variable, penalty_b, traffic, {});
  EXPECT_FALSE(cache.last_was_hit());
  EXPECT_EQ(cache.last_dirty().size(), base.edge_count());
}

}  // namespace
}  // namespace rwc::core
