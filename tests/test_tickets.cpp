// Tests for the failure-ticket generator and the Fig. 4 analyses.
#include <gtest/gtest.h>

#include <algorithm>

#include "tickets/analysis.hpp"
#include "tickets/generator.hpp"
#include "util/stats.hpp"

namespace rwc::tickets {
namespace {

using util::Db;
using namespace util::literals;

const std::vector<FailureTicket>& default_tickets() {
  static const std::vector<FailureTicket> tickets =
      generate_tickets(TicketModelParams{}, 20171130);
  return tickets;
}

TEST(Tickets, GeneratesRequestedCountSorted) {
  const auto& tickets = default_tickets();
  EXPECT_EQ(tickets.size(), 250u);
  for (std::size_t i = 1; i < tickets.size(); ++i)
    EXPECT_LE(tickets[i - 1].opened_at, tickets[i].opened_at);
  for (const auto& t : tickets) {
    EXPECT_GE(t.opened_at, 0.0);
    EXPECT_LE(t.opened_at, TicketModelParams{}.observation_window);
    EXPECT_GT(t.outage_duration, 0.0);
    EXPECT_GE(t.lowest_snr.value, 0.0);
    EXPECT_FALSE(t.affected_link.empty());
  }
}

TEST(Tickets, DeterministicForSeed) {
  const auto a = generate_tickets(TicketModelParams{}, 7);
  const auto b = generate_tickets(TicketModelParams{}, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cause, b[i].cause);
    EXPECT_EQ(a[i].outage_duration, b[i].outage_duration);
    EXPECT_EQ(a[i].lowest_snr, b[i].lowest_snr);
  }
}

TEST(Tickets, EventSharesMatchPaperFig4b) {
  // Use a larger population for tighter statistics.
  TicketModelParams params;
  params.event_count = 5000;
  const auto tickets = generate_tickets(params, 99);
  const auto breakdown = breakdown_by_cause(tickets);
  EXPECT_NEAR(breakdown.event_share(RootCause::kMaintenanceCoincident), 0.25,
              0.03);
  EXPECT_NEAR(breakdown.event_share(RootCause::kFiberCut), 0.05, 0.015);
  EXPECT_NEAR(breakdown.event_share(RootCause::kHardwareFailure), 0.30, 0.03);
  EXPECT_NEAR(breakdown.event_share(RootCause::kHumanError), 0.15, 0.03);
  EXPECT_NEAR(breakdown.event_share(RootCause::kUndocumented), 0.25, 0.03);
}

TEST(Tickets, DurationSharesMatchPaperFig4a) {
  TicketModelParams params;
  params.event_count = 5000;
  const auto tickets = generate_tickets(params, 99);
  const auto breakdown = breakdown_by_cause(tickets);
  // Paper: ~20% of outage time from maintenance-coincident events, ~10%
  // from fiber cuts (cuts are few but long).
  EXPECT_NEAR(breakdown.duration_share(RootCause::kMaintenanceCoincident),
              0.20, 0.05);
  EXPECT_NEAR(breakdown.duration_share(RootCause::kFiberCut), 0.10, 0.04);
  // Cut events are disproportionately long.
  EXPECT_GT(breakdown.duration_share(RootCause::kFiberCut),
            breakdown.event_share(RootCause::kFiberCut));
}

TEST(Tickets, BreakdownTotalsConsistent) {
  const auto& tickets = default_tickets();
  const auto breakdown = breakdown_by_cause(tickets);
  std::size_t events = 0;
  double hours = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    events += breakdown.event_count[i];
    hours += breakdown.total_duration_hours[i];
  }
  EXPECT_EQ(events, tickets.size());
  EXPECT_NEAR(hours, breakdown.total_duration, 1e-9);
  double share = 0.0;
  for (RootCause cause : kAllRootCauses) share += breakdown.event_share(cause);
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(Tickets, OpportunityMatchesPaperSection22) {
  TicketModelParams params;
  params.event_count = 5000;
  const auto tickets = generate_tickets(params, 1234);
  const auto report =
      opportunity_report(tickets, optical::ModulationTable::standard());
  // Paper: over 90% of failure events are not fiber cuts.
  EXPECT_GT(report.non_cut_event_fraction, 0.90);
  // Paper: ~25% of failures keep SNR >= 3 dB (recoverable at 50 Gbps).
  EXPECT_NEAR(report.recoverable_event_fraction, 0.25, 0.05);
  EXPECT_GT(report.recoverable_outage_hours, 0.0);
  EXPECT_EQ(report.lowest_snr_db.size(), tickets.size());
}

TEST(Tickets, FiberCutsReadNoiseFloor) {
  const auto& tickets = default_tickets();
  for (const auto& t : tickets) {
    if (t.cause == RootCause::kFiberCut) {
      EXPECT_LT(t.lowest_snr.value, 1.0);
    }
  }
}

TEST(Tickets, RecoverableSnrStaysBelow100GThreshold) {
  // Every ticket is a *failure* at 100 G, so the lowest SNR must be below
  // the 6.5 dB threshold.
  for (const auto& t : default_tickets())
    EXPECT_LT(t.lowest_snr.value, 6.5);
}

TEST(Analysis, HandBuiltTicketsExactShares) {
  std::vector<FailureTicket> tickets(4);
  tickets[0].cause = RootCause::kFiberCut;
  tickets[0].outage_duration = 10.0 * util::kHour;
  tickets[1].cause = RootCause::kHumanError;
  tickets[1].outage_duration = 5.0 * util::kHour;
  tickets[2].cause = RootCause::kHumanError;
  tickets[2].outage_duration = 3.0 * util::kHour;
  tickets[3].cause = RootCause::kUndocumented;
  tickets[3].outage_duration = 2.0 * util::kHour;
  const auto breakdown = breakdown_by_cause(tickets);
  EXPECT_DOUBLE_EQ(breakdown.event_share(RootCause::kHumanError), 0.5);
  EXPECT_DOUBLE_EQ(breakdown.duration_share(RootCause::kFiberCut), 0.5);
  EXPECT_DOUBLE_EQ(breakdown.event_share(RootCause::kHardwareFailure), 0.0);
}

TEST(Analysis, EmptyTicketLog) {
  const auto breakdown = breakdown_by_cause({});
  EXPECT_EQ(breakdown.total_events, 0u);
  EXPECT_DOUBLE_EQ(breakdown.event_share(RootCause::kFiberCut), 0.0);
  const auto report =
      opportunity_report({}, optical::ModulationTable::standard());
  EXPECT_DOUBLE_EQ(report.recoverable_event_fraction, 0.0);
}

TEST(RootCause, Names) {
  EXPECT_STREQ(to_string(RootCause::kMaintenanceCoincident),
               "maintenance-coincident");
  EXPECT_STREQ(to_string(RootCause::kFiberCut), "fiber-cut");
  EXPECT_STREQ(to_string(RootCause::kHardwareFailure), "hardware-failure");
  EXPECT_STREQ(to_string(RootCause::kHumanError), "human-error");
  EXPECT_STREQ(to_string(RootCause::kUndocumented), "undocumented");
}

}  // namespace
}  // namespace rwc::tickets
