// Tests for the fixed-charge activation solver (per-activation costs).
#include <gtest/gtest.h>


#include <cmath>
#include "core/fixed_charge.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Gbps;
using namespace util::literals;

TEST(FixedCharge, EmptyVariableSetJustSolves) {
  graph::Graph g = sim::fig7_square();
  te::McfTe engine;
  const te::TrafficMatrix demands = {
      {*g.find_node("A"), *g.find_node("B"), 80_Gbps, 0}};
  const auto result = solve_fixed_charge(g, {}, {}, engine, demands);
  EXPECT_TRUE(result.exact);
  EXPECT_TRUE(result.activated.empty());
  EXPECT_NEAR(result.routed.value, 80.0, 1e-6);
  EXPECT_EQ(result.activation_cost, 0.0);
}

TEST(FixedCharge, PicksCheapestSufficientSubset) {
  // Two upgradable parallel routes; either one alone serves the demand,
  // so the solver must activate only the cheaper.
  graph::Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const EdgeId top = g.add_edge(a, b, 100_Gbps);
  const EdgeId bottom = g.add_edge(a, b, 100_Gbps);
  const std::vector<VariableLink> variable = {{top, 200_Gbps},
                                              {bottom, 200_Gbps}};
  const std::vector<double> costs = {50.0, 30.0};
  te::McfTe engine;
  const te::TrafficMatrix demands = {{a, b, 300_Gbps, 0}};
  const auto result =
      solve_fixed_charge(g, variable, costs, engine, demands);
  EXPECT_TRUE(result.exact);
  ASSERT_EQ(result.activated.size(), 1u);
  EXPECT_EQ(result.activated[0].edge, bottom);
  EXPECT_EQ(result.activation_cost, 30.0);
  EXPECT_NEAR(result.routed.value, 300.0, 1e-6);
}

TEST(FixedCharge, ActivatesNothingWhenDemandFits) {
  graph::Graph g = sim::fig7_square();
  std::vector<VariableLink> variable;
  std::vector<double> costs;
  for (EdgeId e : g.edge_ids()) {
    variable.push_back({e, 200_Gbps});
    costs.push_back(10.0);
  }
  te::McfTe engine;
  const te::TrafficMatrix demands = {
      {*g.find_node("A"), *g.find_node("B"), 90_Gbps, 0}};
  const auto result =
      solve_fixed_charge(g, variable, costs, engine, demands);
  EXPECT_TRUE(result.activated.empty());
  EXPECT_EQ(result.activation_cost, 0.0);
}

TEST(FixedCharge, FixedVsPerUnitSemanticsDiffer) {
  // One big cheap-flat link vs two small ones: fixed-charge prefers the
  // single activation even though per-unit costs would tie.
  graph::Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const EdgeId big = g.add_edge(a, b, 50_Gbps);
  const EdgeId small1 = g.add_edge(a, b, 50_Gbps);
  const EdgeId small2 = g.add_edge(a, b, 50_Gbps);
  const std::vector<VariableLink> variable = {
      {big, 200_Gbps}, {small1, 125_Gbps}, {small2, 125_Gbps}};
  const std::vector<double> costs = {40.0, 25.0, 25.0};
  te::McfTe engine;
  const te::TrafficMatrix demands = {{a, b, 300_Gbps, 0}};
  const auto result =
      solve_fixed_charge(g, variable, costs, engine, demands);
  // Max throughput 300 needs big (200+50+50); activating only `big`
  // achieves it at cost 40 — better than 25+25 (which only reaches 250+50).
  ASSERT_EQ(result.activated.size(), 1u);
  EXPECT_EQ(result.activated[0].edge, big);
  EXPECT_EQ(result.activation_cost, 40.0);
  EXPECT_NEAR(result.routed.value, 300.0, 1e-6);
}

TEST(FixedCharge, GreedyMatchesExactOnSmallInstances) {
  for (int seed = 1; seed <= 8; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 37);
    graph::Graph g = sim::waxman(7, rng);
    std::vector<VariableLink> variable;
    std::vector<double> costs;
    for (EdgeId e : g.edge_ids()) {
      if (!rng.bernoulli(0.3) || variable.size() >= 8) continue;
      variable.push_back({e, g.edge(e).capacity + Gbps{100.0}});
      costs.push_back(std::floor(rng.uniform(1.0, 9.0)));
    }
    te::McfTe engine;
    const te::TrafficMatrix demands = {
        {graph::NodeId{0}, graph::NodeId{6}, Gbps{400.0}, 0}};

    FixedChargeOptions exact_options;
    const auto exact = solve_fixed_charge(g, variable, costs, engine,
                                          demands, exact_options);
    FixedChargeOptions greedy_options;
    greedy_options.exact_limit = 0;  // force the heuristic
    const auto greedy = solve_fixed_charge(g, variable, costs, engine,
                                           demands, greedy_options);
    EXPECT_TRUE(exact.exact);
    EXPECT_FALSE(greedy.exact);
    // Greedy must reach the same throughput (it starts from everything
    // activated) and never beat the exact cost.
    EXPECT_NEAR(greedy.routed.value, exact.routed.value, 1e-5)
        << "seed " << seed;
    EXPECT_GE(greedy.activation_cost + 1e-9, exact.activation_cost)
        << "seed " << seed;
  }
}

TEST(FixedCharge, ValidatesInputs) {
  graph::Graph g = sim::fig7_square();
  te::McfTe engine;
  const std::vector<VariableLink> variable = {{EdgeId{0}, 200_Gbps}};
  const std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_THROW(
      solve_fixed_charge(g, variable, wrong_size, engine, {}),
      util::CheckError);
  const std::vector<double> negative = {-1.0};
  EXPECT_THROW(solve_fixed_charge(g, variable, negative, engine, {}),
               util::CheckError);
  // Subset enumeration is bounded to 30 links (2^n masks in a uint32).
  const std::vector<VariableLink> too_many(31, {EdgeId{0}, 200_Gbps});
  const std::vector<double> too_many_costs(31, 1.0);
  EXPECT_THROW(solve_fixed_charge(g, too_many, too_many_costs, engine, {}),
               util::CheckError);
}

TEST(FixedCharge, ZeroHeadroomActivationIsNeverChosen) {
  // Unlike Algorithm 1 (which rejects zero-headroom variable links — they
  // violate its strict-headroom precondition), activation semantics make a
  // zero-headroom "upgrade" a legal no-op: it buys no throughput, so the
  // lexicographic solver must never pay for it.
  graph::Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const EdgeId useless = g.add_edge(a, b, 100_Gbps);
  const EdgeId useful = g.add_edge(a, b, 100_Gbps);
  const std::vector<VariableLink> variable = {
      {useless, 100_Gbps},  // zero headroom
      {useful, 200_Gbps}};
  const std::vector<double> costs = {5.0, 20.0};
  te::McfTe engine;
  const te::TrafficMatrix demands = {{a, b, 300_Gbps, 0}};
  const auto result = solve_fixed_charge(g, variable, costs, engine, demands);
  EXPECT_TRUE(result.exact);
  ASSERT_EQ(result.activated.size(), 1u);
  EXPECT_EQ(result.activated[0].edge, useful);
  EXPECT_EQ(result.activation_cost, 20.0);
  EXPECT_NEAR(result.routed.value, 300.0, 1e-6);
}

TEST(FixedCharge, GreedyDropsZeroHeadroomActivations) {
  graph::Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const EdgeId useless = g.add_edge(a, b, 100_Gbps);
  const EdgeId useful = g.add_edge(a, b, 100_Gbps);
  const std::vector<VariableLink> variable = {
      {useless, 100_Gbps}, {useful, 200_Gbps}};
  const std::vector<double> costs = {5.0, 20.0};
  te::McfTe engine;
  const te::TrafficMatrix demands = {{a, b, 300_Gbps, 0}};
  FixedChargeOptions options;
  options.exact_limit = 0;  // force the heuristic
  const auto result =
      solve_fixed_charge(g, variable, costs, engine, demands, options);
  EXPECT_FALSE(result.exact);
  // The drop pass removes the throughput-free activation despite it being
  // the cheaper of the two.
  ASSERT_EQ(result.activated.size(), 1u);
  EXPECT_EQ(result.activated[0].edge, useful);
  EXPECT_NEAR(result.routed.value, 300.0, 1e-6);
}

TEST(FixedCharge, FreeActivationsAreStillNotChosenWhenUseless) {
  // Cost ties break toward smaller subsets (documented tie-break), so even
  // at zero activation cost the solver returns the empty activation set
  // when the base topology already carries the demand.
  graph::Graph g = sim::fig7_square();
  std::vector<VariableLink> variable;
  std::vector<double> costs;
  for (EdgeId e : g.edge_ids()) {
    variable.push_back({e, 200_Gbps});
    costs.push_back(0.0);
  }
  te::McfTe engine;
  const te::TrafficMatrix demands = {
      {*g.find_node("A"), *g.find_node("B"), 90_Gbps, 0}};
  const auto result = solve_fixed_charge(g, variable, costs, engine, demands);
  EXPECT_TRUE(result.exact);
  EXPECT_TRUE(result.activated.empty());
  EXPECT_EQ(result.activation_cost, 0.0);
}

}  // namespace
}  // namespace rwc::core
