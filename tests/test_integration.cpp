// End-to-end integration: telemetry -> controller -> TE engine over many
// rounds, parameterized over all four unmodified TE engines (the crux of
// Theorem 1's "engines stay unmodified" claim).
#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/b4.hpp"
#include "te/cspf.hpp"
#include "te/ecmp.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "telemetry/snr_model.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using util::Db;
using util::Gbps;

std::shared_ptr<te::TeAlgorithm> make_engine(int index) {
  switch (index) {
    case 0:
      return std::make_shared<te::McfTe>();
    case 1:
      return std::make_shared<te::CspfTe>();
    case 2:
      return std::make_shared<te::SwanTe>();
    case 3:
      return std::make_shared<te::B4Te>();
    default:
      return std::make_shared<te::EcmpTe>();
  }
}

class EndToEndSweep : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndSweep, TelemetryDrivenRoundsKeepInvariants) {
  const auto engine = make_engine(GetParam());
  const graph::Graph base = sim::abilene();

  // Telemetry for every directed edge over a 1-day horizon.
  telemetry::SnrFleetGenerator::FleetParams fleet_params;
  fleet_params.fiber_count = static_cast<int>(base.edge_count() / 2);
  fleet_params.wavelengths_per_fiber = 2;
  fleet_params.duration = 1.0 * util::kDay;
  fleet_params.interval = 1.0 * util::kHour;
  // Make dips frequent enough to exercise flaps within a day.
  fleet_params.model.fiber_deep_rate_per_year = 40.0;
  fleet_params.model.fiber_shallow_rate_per_year = 60.0;
  telemetry::SnrFleetGenerator fleet(fleet_params, 777);

  std::vector<telemetry::SnrTrace> traces;
  for (std::size_t e = 0; e < base.edge_count(); ++e)
    traces.push_back(fleet.generate_trace(static_cast<int>(e / 2),
                                          static_cast<int>(e % 2)));

  core::DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), *engine,
      core::ControllerOptions{});

  util::Rng rng(99);
  sim::GravityParams gravity;
  gravity.total = Gbps{1500.0};
  const te::TrafficMatrix demands = sim::gravity_matrix(base, gravity, rng);

  double best_routed = 0.0;
  std::size_t total_upgrades = 0;
  std::size_t total_reductions = 0;
  for (std::size_t tick = 0; tick < 24; ++tick) {
    std::vector<Db> snr(base.edge_count());
    for (std::size_t e = 0; e < base.edge_count(); ++e)
      snr[e] = traces[e].at(tick);
    const auto report = controller.run_round(snr, demands);

    // Invariants every round, for every engine:
    // 1. The physical assignment is valid on the post-round topology.
    te::validate_assignment(controller.current_topology(),
                            report.plan.physical_assignment);
    // 2. Configured capacities are ladder rates (or zero).
    for (graph::EdgeId e : base.edge_ids()) {
      const Gbps cap = controller.configured_capacity(e);
      EXPECT_TRUE(cap.value == 0.0 ||
                  controller.table().has_rate(cap))
          << "edge " << e.value << " at " << cap.value;
    }
    // 3. Upgrades only to rates the SNR supports (with margin).
    for (const auto& change : report.plan.upgrades) {
      const Gbps feasible = controller.table().feasible_capacity(
          snr[static_cast<std::size_t>(change.edge.value)], Db{0.5});
      EXPECT_LE(change.to.value, feasible.value + 1e-9);
    }
    best_routed = std::max(best_routed, report.total_routed.value);
    total_upgrades += report.plan.upgrades.size();
    total_reductions += report.reductions.size();
  }
  // The run must have exercised the interesting paths. (ECMP is oblivious:
  // it only lands on fake links when they happen to sit on shortest paths,
  // so the upgrade expectation applies to the TE engines only.)
  EXPECT_GT(best_routed, 0.0) << engine->name();
  if (engine->name() != "ecmp") {
    EXPECT_GT(total_upgrades, 0u);
  }
  EXPECT_GT(total_reductions, 0u) << engine->name();
}

INSTANTIATE_TEST_SUITE_P(Engines, EndToEndSweep, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return make_engine(info.param)->name();
                         });

TEST(EndToEnd, DynamicServesMoreThanStaticTopologyAcrossEngines) {
  // Same demands, same SNR: a controller with dynamic capacity must route
  // at least as much as the same engine on the frozen 100 G topology.
  const graph::Graph base = sim::abilene();
  util::Rng rng(5);
  sim::GravityParams gravity;
  gravity.total = Gbps{2500.0};
  const te::TrafficMatrix demands = sim::gravity_matrix(base, gravity, rng);
  const std::vector<Db> snr(base.edge_count(), Db{20.0});

  for (int i = 0; i < 4; ++i) {
    const auto engine = make_engine(i);
    core::DynamicCapacityController controller(
        base, optical::ModulationTable::standard(), *engine,
        core::ControllerOptions{});
    const auto report = controller.run_round(snr, demands);
    const auto static_assignment = engine->solve(base, demands);
    EXPECT_GE(report.total_routed.value,
              static_assignment.total_routed.value - 1e-5)
        << engine->name();
    EXPECT_GT(report.total_routed.value,
              static_assignment.total_routed.value * 1.05)
        << engine->name() << " should gain substantially at 20 dB SNR";
  }
}

}  // namespace
}  // namespace rwc
