// Unit tests of the rwc::demand estimation stages (ISSUE 9): routing-matrix
// construction, counter synthesis, the least-squares estimator's exact /
// damped / degraded paths, loss composition edge cases (100%-loss link,
// zero-packet interval), the EWMA warm-up, Rng-stream determinism, and the
// CapEst-style capacity cross-check. docs/DEMAND.md states the contracts
// these pin.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "demand/capacity.hpp"
#include "demand/counters.hpp"
#include "demand/estimator.hpp"
#include "demand/pipeline.hpp"
#include "demand/routing_matrix.hpp"
#include "fault/plan.hpp"
#include "fault/registry.hpp"
#include "optical/modulation.hpp"
#include "te/demand.hpp"

namespace rwc {
namespace {

using demand::CounterSample;
using demand::CounterSet;
using demand::DemandConfig;
using demand::RoutingMatrix;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Diagonal instance: OD j rides link j alone (fully determined).
RoutingMatrix diagonal_matrix(std::size_t n) {
  RoutingMatrix matrix;
  matrix.links = n;
  matrix.ods = n;
  matrix.rows.resize(n);
  matrix.observable.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i)
    matrix.rows[i].push_back({static_cast<std::uint32_t>(i), 1.0});
  return matrix;
}

DemandConfig estimated_config() {
  DemandConfig config;
  config.source = demand::DemandSource::kEstimated;
  return config;
}

TEST(DemandEstimator, SnapToGridIsIdempotentOnGridValues) {
  for (const double value : {0.0, 12.5, 3.25, 40.0, 173.999999}) {
    const double snapped = demand::snap_to_grid(value);
    EXPECT_TRUE(bits_equal(snapped, demand::snap_to_grid(snapped)));
    EXPECT_NEAR(snapped, value, demand::kVolumeGridGbps);
  }
}

TEST(DemandEstimator, RoutingMatrixBootstrapsAllUnobservable) {
  te::TrafficMatrix ods;
  ods.push_back({graph::NodeId{0}, graph::NodeId{1}, util::Gbps{10.0}, 0});
  const RoutingMatrix matrix =
      demand::build_routing_matrix(4, ods, te::FlowAssignment{});
  EXPECT_EQ(matrix.links, 4u);
  EXPECT_EQ(matrix.ods, 1u);
  EXPECT_EQ(matrix.observable_ods(), 0u);
  for (const auto& row : matrix.rows) EXPECT_TRUE(row.empty());
}

TEST(DemandEstimator, RoutingMatrixFractionsFollowPathSplits) {
  te::TrafficMatrix ods;
  ods.push_back({graph::NodeId{0}, graph::NodeId{1}, util::Gbps{10.0}, 0});

  te::FlowAssignment previous;
  te::FlowAssignment::DemandRouting routing;
  routing.demand = ods[0];
  graph::Path direct;
  direct.edges = {graph::EdgeId{0}};
  graph::Path detour;
  detour.edges = {graph::EdgeId{1}, graph::EdgeId{2}};
  routing.paths.emplace_back(direct, util::Gbps{7.5});
  routing.paths.emplace_back(detour, util::Gbps{2.5});
  routing.routed = util::Gbps{10.0};
  previous.routings.push_back(routing);

  const RoutingMatrix matrix = demand::build_routing_matrix(3, ods, previous);
  ASSERT_EQ(matrix.observable_ods(), 1u);
  ASSERT_EQ(matrix.rows[0].size(), 1u);
  EXPECT_DOUBLE_EQ(matrix.rows[0][0].fraction, 0.75);
  ASSERT_EQ(matrix.rows[1].size(), 1u);
  EXPECT_DOUBLE_EQ(matrix.rows[1][0].fraction, 0.25);
  ASSERT_EQ(matrix.rows[2].size(), 1u);
  EXPECT_DOUBLE_EQ(matrix.rows[2][0].fraction, 0.25);
}

TEST(DemandEstimator, ZeroNoiseFullyDeterminedRecoversExactly) {
  const RoutingMatrix matrix = diagonal_matrix(3);
  const std::vector<double> truth = {12.5, 3.25, 40.0};  // on-grid
  const DemandConfig config = estimated_config();
  const CounterSet counters =
      demand::synthesize_counters(matrix, truth, {}, config, 1);

  const std::vector<double> intent = {1.0, 1.0, 1.0};  // deliberately wrong
  const demand::EstimateResult result =
      demand::estimate_od_volumes(matrix, counters, intent, {}, config);
  EXPECT_TRUE(result.stats.estimated);
  EXPECT_TRUE(result.stats.exact)
      << "zero-noise fully-determined instance must certify exact recovery";
  ASSERT_EQ(result.volumes.size(), truth.size());
  for (std::size_t j = 0; j < truth.size(); ++j)
    EXPECT_TRUE(bits_equal(result.volumes[j], truth[j]))
        << "od " << j << ": " << result.volumes[j] << " vs " << truth[j];
  EXPECT_EQ(result.stats.residual, 0.0);
}

TEST(DemandEstimator, ZeroPacketIntervalIsACleanEmptyLink) {
  // An idle OD exports all-zero counters: 0/0 loss is 0, the link stays
  // usable, and the estimate is exactly zero — not NaN, not excluded.
  const RoutingMatrix matrix = diagonal_matrix(2);
  const std::vector<double> truth = {0.0, 25.0};
  const DemandConfig config = estimated_config();
  const CounterSet counters =
      demand::synthesize_counters(matrix, truth, {}, config, 1);
  EXPECT_EQ(counters.samples[0].tx_bytes, 0.0);
  EXPECT_EQ(counters.samples[0].tx_packets, 0.0);

  const std::vector<double> intent = {5.0, 5.0};
  const demand::EstimateResult result =
      demand::estimate_od_volumes(matrix, counters, intent, {}, config);
  EXPECT_TRUE(result.stats.exact);
  EXPECT_TRUE(bits_equal(result.volumes[0], 0.0));
  EXPECT_TRUE(bits_equal(result.volumes[1], 25.0));
  EXPECT_EQ(result.stats.lossy_unobservable, 0u);
}

TEST(DemandEstimator, RankDeficientInstanceFallsBackDamped) {
  // Two ODs share one link: R = [1 1], A = R^T R is singular, so the
  // undamped Cholesky must refuse and the ridge retry anchors on the
  // intent prior. The estimate stays finite and non-negative.
  RoutingMatrix matrix;
  matrix.links = 1;
  matrix.ods = 2;
  matrix.rows.resize(1);
  matrix.rows[0] = {{0, 1.0}, {1, 1.0}};
  matrix.observable = {1, 1};

  const std::vector<double> truth = {10.0, 20.0};
  const DemandConfig config = estimated_config();
  const CounterSet counters =
      demand::synthesize_counters(matrix, truth, {}, config, 1);

  const std::vector<double> intent = {15.0, 15.0};
  const demand::EstimateResult result =
      demand::estimate_od_volumes(matrix, counters, intent, {}, config);
  EXPECT_TRUE(result.stats.estimated);
  EXPECT_TRUE(result.stats.damped);
  for (const double volume : result.volumes) {
    EXPECT_TRUE(std::isfinite(volume));
    EXPECT_GE(volume, 0.0);
  }
  // The damped solution still explains the observed link load.
  EXPECT_NEAR(result.volumes[0] + result.volumes[1], 30.0, 1e-6);
}

TEST(DemandEstimator, HundredPercentLossLinkIsUnobservable) {
  const RoutingMatrix matrix = diagonal_matrix(2);
  const DemandConfig config = estimated_config();
  CounterSet counters;
  counters.samples.resize(2);
  // Link 0: everything offered was lost — no delivered signal to invert.
  counters.samples[0].tx_bytes = 0.0;
  counters.samples[0].tx_packets = 0.0;
  counters.samples[0].lost_packets = 1e6;
  // Link 1: clean 25 Gbps.
  counters.samples[1].tx_bytes = demand::bytes_of(25.0, config.interval_seconds);
  counters.samples[1].tx_packets =
      counters.samples[1].tx_bytes / demand::kPacketBytes;

  const std::vector<double> intent = {40.0, 5.0};
  const demand::EstimateResult result =
      demand::estimate_od_volumes(matrix, counters, intent, {}, config);
  EXPECT_EQ(result.stats.lossy_unobservable, 1u);
  EXPECT_FALSE(result.stats.exact);  // a lossy round never certifies
  EXPECT_TRUE(result.stats.damped);  // OD 0's column is empty -> singular
  // OD 0's only link is unusable: the ridge anchors it at its intent, and
  // pulls the observed OD slightly toward its prior (relative damping 1e-3).
  EXPECT_NEAR(result.volumes[0], 40.0, 1e-9);
  EXPECT_NEAR(result.volumes[1], 25.0, 0.1);
}

TEST(DemandEstimator, LossCompositionDividesDeliveredBack) {
  const RoutingMatrix matrix = diagonal_matrix(1);
  const DemandConfig config = estimated_config();
  // 10 Gbps offered, 20% loss: delivered bytes shrink, lost packets carry
  // the loss rate, and the estimator multiplies the delivered rate back up.
  const double offered = 10.0;
  const double loss = 0.2;
  CounterSet counters;
  counters.samples.resize(1);
  CounterSample& sample = counters.samples[0];
  sample.tx_bytes = demand::bytes_of(offered * (1.0 - loss),
                                     config.interval_seconds);
  sample.tx_packets = sample.tx_bytes / demand::kPacketBytes;
  sample.lost_packets = sample.tx_packets * loss / (1.0 - loss);

  const std::vector<double> intent = {1.0};
  const demand::EstimateResult result =
      demand::estimate_od_volumes(matrix, counters, intent, {}, config);
  EXPECT_TRUE(result.stats.estimated);
  EXPECT_FALSE(result.stats.exact);
  EXPECT_NEAR(result.volumes[0], offered, 1e-6);
}

TEST(DemandEstimator, MissingAndCorruptSamplesAreSanitized) {
  const RoutingMatrix matrix = diagonal_matrix(3);
  const DemandConfig config = estimated_config();
  CounterSet counters;
  counters.samples.resize(3);
  counters.samples[0].missing = true;
  counters.samples[1].tx_bytes = std::numeric_limits<double>::quiet_NaN();
  counters.samples[2].tx_bytes = -1e18;

  const std::vector<double> intent = {4.0, 5.0, 6.0};
  const demand::EstimateResult result =
      demand::estimate_od_volumes(matrix, counters, intent, {}, config);
  EXPECT_EQ(result.stats.dropped, 1u);
  EXPECT_EQ(result.stats.sanitized, 2u);
  // No usable row survives: the offered intent is the estimate.
  EXPECT_EQ(result.volumes, intent);
  for (const double volume : result.volumes) {
    EXPECT_TRUE(std::isfinite(volume));
    EXPECT_GE(volume, 0.0);
  }
}

TEST(DemandEstimator, SolveBudgetFaultFallsBackToPrior) {
  const RoutingMatrix matrix = diagonal_matrix(3);
  const std::vector<double> truth = {12.5, 3.25, 40.0};
  const DemandConfig config = estimated_config();
  const CounterSet counters =
      demand::synthesize_counters(matrix, truth, {}, config, 1);

  const std::vector<double> intent = {7.0, 8.0, 9.0};
  fault::ScopedPlan armed(fault::FaultPlan::parse("demand.solve@0:budget=1"));
  const demand::EstimateResult result =
      demand::estimate_od_volumes(matrix, counters, intent, {}, config);
  EXPECT_TRUE(result.stats.budget_exhausted);
  EXPECT_FALSE(result.stats.estimated);
  EXPECT_EQ(result.volumes, intent);
}

TEST(DemandEstimator, SynthesisIsPureInConfigAndRound) {
  const RoutingMatrix matrix = diagonal_matrix(4);
  const std::vector<double> truth = {10.0, 20.0, 30.0, 40.0};
  DemandConfig config = estimated_config();
  config.noise = 0.05;
  config.seed = 99;

  const CounterSet first =
      demand::synthesize_counters(matrix, truth, {}, config, 7);
  const CounterSet again =
      demand::synthesize_counters(matrix, truth, {}, config, 7);
  EXPECT_EQ(first, again) << "same (config, round) must be bit-identical";

  const CounterSet other_round =
      demand::synthesize_counters(matrix, truth, {}, config, 8);
  EXPECT_NE(first.samples, other_round.samples)
      << "the noise stream must advance with the round index";
}

TEST(DemandEstimator, DisabledKnobsConsumeNoRngDraws) {
  // noise == loss == staleness == 0 draws nothing: counters are a pure
  // arithmetic function of the routing, independent of seed and round.
  const RoutingMatrix matrix = diagonal_matrix(2);
  const std::vector<double> truth = {12.5, 3.25};
  DemandConfig config = estimated_config();
  config.seed = 1;
  const CounterSet a = demand::synthesize_counters(matrix, truth, {}, config, 0);
  config.seed = 12345;
  const CounterSet b =
      demand::synthesize_counters(matrix, truth, {}, config, 41);
  EXPECT_EQ(a.samples, b.samples)
      << "zero-knob synthesis must not depend on the seed or round";
}

TEST(DemandEstimator, PipelineBootstrapsFromIntentAndWarmsEwma) {
  te::TrafficMatrix intent;
  intent.push_back({graph::NodeId{0}, graph::NodeId{1}, util::Gbps{12.5}, 0});
  demand::DemandPipeline pipeline(2, estimated_config());

  // Round 0: no installed plan — every OD is unobservable and the estimate
  // IS the intent (exact oracle equivalence of the bootstrap round).
  const auto round0 = pipeline.round(intent, te::FlowAssignment{});
  ASSERT_EQ(round0.demands.size(), 1u);
  EXPECT_TRUE(bits_equal(round0.demands[0].volume.value, 12.5));
  EXPECT_EQ(round0.stats.unobservable_ods, 1u);
  EXPECT_EQ(pipeline.rounds(), 1u);

  // The EWMA warmed on round 0's estimate: its state round-trips through
  // save/restore bit-identically.
  const auto state = pipeline.save_state();
  EXPECT_TRUE(state.ewma_warm);
  ASSERT_EQ(state.ewma.size(), 1u);
  EXPECT_TRUE(bits_equal(state.ewma[0], 12.5));

  demand::DemandPipeline restored(2, estimated_config());
  restored.restore_state(state);
  EXPECT_EQ(restored.save_state(), state);
}

TEST(DemandCapacity, MeasuredPeakCrossChecksAgainstSnr) {
  const auto table = optical::ModulationTable::standard();
  const DemandConfig config = estimated_config();
  demand::CapacityEstimator estimator(1);

  CounterSet counters;
  counters.samples.resize(1);
  counters.samples[0].tx_bytes =
      demand::bytes_of(150.0, config.interval_seconds);
  counters.samples[0].tx_packets =
      counters.samples[0].tx_bytes / demand::kPacketBytes;
  estimator.observe(counters, config.interval_seconds);
  ASSERT_EQ(estimator.measured().size(), 1u);
  EXPECT_NEAR(estimator.measured()[0], 150.0, 1e-9);

  // Healthy SNR: the ladder supports more than the link carried — planes
  // agree. Degraded SNR: measured exceeds feasible — mismatch flagged.
  const std::vector<util::Db> healthy = {util::Db{15.0}};
  auto agree = estimator.estimates(table, healthy, util::Db{0.5});
  ASSERT_EQ(agree.size(), 1u);
  EXPECT_TRUE(agree[0].consistent);
  EXPECT_GE(agree[0].snr_gbps, agree[0].measured_gbps);

  const std::vector<util::Db> degraded = {util::Db{4.0}};
  auto disagree = estimator.estimates(table, degraded, util::Db{0.5});
  EXPECT_FALSE(disagree[0].consistent);
}

TEST(DemandCapacity, CorruptSamplesNeverPoisonThePeak) {
  const DemandConfig config = estimated_config();
  demand::CapacityEstimator estimator(2);
  CounterSet counters;
  counters.samples.resize(2);
  counters.samples[0].tx_bytes = std::numeric_limits<double>::quiet_NaN();
  counters.samples[1].missing = true;
  estimator.observe(counters, config.interval_seconds);
  for (const double peak : estimator.measured()) {
    EXPECT_TRUE(std::isfinite(peak));
    EXPECT_GE(peak, 0.0);
  }
}

}  // namespace
}  // namespace rwc
