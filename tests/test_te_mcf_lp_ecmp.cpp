// Tests for the exact edge-based MCF LP engine and the ECMP baseline.
#include <gtest/gtest.h>

#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/b4.hpp"
#include "te/ecmp.hpp"
#include "te/mcf_lp.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc::te {
namespace {

using util::Gbps;
using namespace util::literals;

TEST(McfLp, SingleDemandEqualsMaxFlow) {
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  // Max flow A->B on the square is 200 (direct + around).
  const TrafficMatrix demands = {{a, b, Gbps{1000.0}, 0}};
  const auto assignment = McfLpTe{}.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 200.0, 1e-5);
  validate_assignment(g, assignment);
}

TEST(McfLp, ServesBothCompetingDemandsOptimally) {
  // A->B and C->D at 125 each on the square with upgraded AB/CD: total 250.
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  const auto c = *g.find_node("C");
  const auto d = *g.find_node("D");
  g.edge(*g.find_edge(a, b)).capacity = 200_Gbps;
  const TrafficMatrix demands = {{a, b, 125_Gbps, 0}, {c, d, 125_Gbps, 0}};
  const auto assignment = McfLpTe{}.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 250.0, 1e-5);
  validate_assignment(g, assignment);
}

TEST(McfLp, RespectsPriorityClasses) {
  graph::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 100_Gbps);
  const TrafficMatrix demands = {{a, b, 80_Gbps, 0}, {a, b, 80_Gbps, 5}};
  const auto assignment = McfLpTe{}.solve(g, demands);
  EXPECT_NEAR(assignment.routings[1].routed.value, 80.0, 1e-5);
  EXPECT_NEAR(assignment.routings[0].routed.value, 20.0, 1e-5);
}

TEST(McfLp, MinimizesCostAtFixedThroughput) {
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  g.edge(*g.find_edge(a, b)).cost = 50.0;  // make the direct link pricey
  const TrafficMatrix demands = {{a, b, 60_Gbps, 0}};
  const auto assignment = McfLpTe{}.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 60.0, 1e-5);
  EXPECT_NEAR(assignment.total_cost, 0.0, 1e-3);  // all via A-C-D-B
}

TEST(McfLp, UpperBoundsEveryOtherEngine) {
  // The exact LP is the throughput reference: no engine may beat it.
  for (int seed = 1; seed <= 6; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 53);
    graph::Graph g = sim::waxman(6, rng);
    for (graph::EdgeId e : g.edge_ids())
      g.edge(e).capacity = Gbps{rng.uniform(20.0, 100.0)};
    sim::GravityParams params;
    params.total = Gbps{rng.uniform(150.0, 500.0)};
    params.sparsity = 0.6;
    const TrafficMatrix demands = sim::gravity_matrix(g, params, rng);

    const double exact =
        McfLpTe{}.solve(g, demands).total_routed.value;
    for (const auto* engine :
         std::initializer_list<const TeAlgorithm*>{
             new McfTe{}, new SwanTe{}, new B4Te{}, new EcmpTe{}}) {
      const double routed = engine->solve(g, demands).total_routed.value;
      EXPECT_LE(routed, exact + 1e-4)
          << engine->name() << " beat the exact LP at seed " << seed;
      delete engine;
    }
  }
}

TEST(Ecmp, SplitsEquallyAcrossEqualCostPaths) {
  // Two disjoint equal-weight 2-hop paths: a 100 G demand splits 50/50.
  graph::Graph g;
  const auto s = g.add_node("s");
  const auto m1 = g.add_node("m1");
  const auto m2 = g.add_node("m2");
  const auto t = g.add_node("t");
  g.add_edge(s, m1, 100_Gbps);
  g.add_edge(m1, t, 100_Gbps);
  g.add_edge(s, m2, 100_Gbps);
  g.add_edge(m2, t, 100_Gbps);
  const TrafficMatrix demands = {{s, t, 100_Gbps, 0}};
  const auto assignment = EcmpTe{}.solve(g, demands);
  ASSERT_EQ(assignment.routings[0].paths.size(), 2u);
  EXPECT_NEAR(assignment.routings[0].paths[0].second.value, 50.0, 1e-9);
  EXPECT_NEAR(assignment.routings[0].paths[1].second.value, 50.0, 1e-9);
  validate_assignment(g, assignment);
}

TEST(Ecmp, DoesNotUseLongerPaths) {
  // One short path and one longer path: ECMP only uses the short one and
  // drops the overflow (it is oblivious).
  graph::Graph g;
  const auto s = g.add_node("s");
  const auto m = g.add_node("m");
  const auto t = g.add_node("t");
  g.add_edge(s, t, 100_Gbps, 0.0, 1.0);
  g.add_edge(s, m, 100_Gbps, 0.0, 1.0);
  g.add_edge(m, t, 100_Gbps, 0.0, 1.0);
  const TrafficMatrix demands = {{s, t, 150_Gbps, 0}};
  const auto assignment = EcmpTe{}.solve(g, demands);
  EXPECT_NEAR(assignment.total_routed.value, 100.0, 1e-9);
  EXPECT_EQ(assignment.routings[0].paths.size(), 1u);
}

TEST(Ecmp, ObliviousToCostsUnlikeTheTeEngines) {
  // An expensive direct edge: ECMP still uses it (weight-only decision).
  graph::Graph g = sim::fig7_square();
  const auto a = *g.find_node("A");
  const auto b = *g.find_node("B");
  const auto ab = *g.find_edge(a, b);
  g.edge(ab).cost = 1000.0;
  const TrafficMatrix demands = {{a, b, 50_Gbps, 0}};
  const auto ecmp = EcmpTe{}.solve(g, demands);
  EXPECT_GT(ecmp.edge_load_gbps[static_cast<std::size_t>(ab.value)], 1.0);
  const auto mcf = McfTe{}.solve(g, demands);
  EXPECT_NEAR(mcf.edge_load_gbps[static_cast<std::size_t>(ab.value)], 0.0,
              1e-9);
}

TEST(Ecmp, ValidAssignmentOnRandomInstances) {
  for (int seed = 1; seed <= 6; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    graph::Graph g = sim::waxman(10, rng);
    sim::GravityParams params;
    params.total = Gbps{600.0};
    const TrafficMatrix demands = sim::gravity_matrix(g, params, rng);
    const auto assignment = EcmpTe{}.solve(g, demands);
    validate_assignment(g, assignment);
    EXPECT_GT(assignment.total_routed.value, 0.0);
  }
}

}  // namespace
}  // namespace rwc::te
