// Property tests for Theorem 1: solving min-cost max-flow on the augmented
// topology G' is equivalent to solving max-flow on G with variable
// capacities — the flow value matches the fully-upgraded topology, the cost
// is optimal (no negative residual cycle; LP cross-check), and translation
// reproduces the same value on the physical topology.
#include <gtest/gtest.h>

#include <cmath>

#include "core/augment.hpp"
#include "core/translate.hpp"
#include "flow/cycle_cancel.hpp"
#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/mincost.hpp"
#include "lp/simplex.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using util::Gbps;

struct Instance {
  graph::Graph base;
  std::vector<VariableLink> variable;
  int source = 0;
  int sink = 0;
};

Instance random_instance(std::uint64_t seed, bool integral = true) {
  util::Rng rng(seed);
  Instance instance;
  instance.base = sim::waxman(8, rng);
  for (EdgeId e : instance.base.edge_ids()) {
    const double cap = integral ? std::floor(rng.uniform(1.0, 9.0))
                                : rng.uniform(1.0, 9.0);
    instance.base.edge(e).capacity = Gbps{cap};
  }
  // ~40% of edges can upgrade by a random headroom.
  for (EdgeId e : instance.base.edge_ids()) {
    if (!rng.bernoulli(0.4)) continue;
    const double extra = integral ? std::floor(rng.uniform(1.0, 8.0))
                                  : rng.uniform(1.0, 8.0);
    instance.variable.push_back(
        {e, instance.base.edge(e).capacity + Gbps{extra}});
  }
  instance.source = 0;
  instance.sink = static_cast<int>(instance.base.node_count()) - 1;
  return instance;
}

graph::Graph fully_upgraded(const Instance& instance) {
  graph::Graph upgraded = instance.base;
  for (const VariableLink& link : instance.variable)
    upgraded.edge(link.edge).capacity = link.feasible_capacity;
  return upgraded;
}

class TheoremSweep : public ::testing::TestWithParam<int> {};

TEST_P(TheoremSweep, AugmentedValueEqualsUpgradedMaxFlow) {
  const auto instance =
      random_instance(static_cast<std::uint64_t>(GetParam()) * 11 + 1);
  const auto augmented = augment_topology(instance.base, instance.variable,
                                          FixedPenalty{3.0});

  auto augmented_view = flow::make_network(augmented.graph);
  const auto augmented_result = flow::min_cost_max_flow(
      augmented_view.net, instance.source, instance.sink);

  auto upgraded_view = flow::make_network(fully_upgraded(instance));
  const double upgraded_flow =
      flow::max_flow_dinic(upgraded_view.net, instance.source, instance.sink);

  EXPECT_NEAR(augmented_result.flow, upgraded_flow, 1e-6);
  // Optimality certificate: no negative-cost residual cycle remains.
  EXPECT_FALSE(flow::find_negative_cycle(augmented_view.net).has_value());
}

TEST_P(TheoremSweep, CostIsLpOptimal) {
  const auto instance =
      random_instance(static_cast<std::uint64_t>(GetParam()) * 11 + 1);
  const auto augmented = augment_topology(instance.base, instance.variable,
                                          FixedPenalty{3.0});
  auto view = flow::make_network(augmented.graph);
  const auto result =
      flow::min_cost_max_flow(view.net, instance.source, instance.sink);

  // LP: min cost s.t. conservation + capacity + flow value fixed.
  const graph::Graph& g = augmented.graph;
  lp::LpProblem problem(lp::Sense::kMinimize);
  for (EdgeId e : g.edge_ids())
    problem.add_variable(g.edge(e).cost, g.edge(e).capacity.value);
  for (graph::NodeId node : g.node_ids()) {
    if (node.value == instance.source || node.value == instance.sink)
      continue;
    std::vector<lp::Term> terms;
    for (EdgeId e : g.out_edges(node)) terms.push_back({e.value, 1.0});
    for (EdgeId e : g.in_edges(node)) terms.push_back({e.value, -1.0});
    if (!terms.empty())
      problem.add_constraint(std::move(terms), lp::Relation::kEqual, 0.0);
  }
  std::vector<lp::Term> value_terms;
  for (EdgeId e : g.out_edges(graph::NodeId{instance.source}))
    value_terms.push_back({e.value, 1.0});
  for (EdgeId e : g.in_edges(graph::NodeId{instance.source}))
    value_terms.push_back({e.value, -1.0});
  problem.add_constraint(std::move(value_terms), lp::Relation::kEqual,
                         result.flow);
  const auto lp_solution = problem.solve();
  ASSERT_TRUE(lp_solution.optimal());
  EXPECT_NEAR(lp_solution.objective, result.cost, 1e-5);
}

TEST_P(TheoremSweep, TranslationPreservesValueAndRespectsUpgrades) {
  const auto instance =
      random_instance(static_cast<std::uint64_t>(GetParam()) * 11 + 1);
  const auto augmented = augment_topology(instance.base, instance.variable,
                                          FixedPenalty{3.0});
  // Drive through the TE interface (single demand = pure max-flow).
  auto upgraded_view = flow::make_network(fully_upgraded(instance));
  const double upgraded_flow =
      flow::max_flow_dinic(upgraded_view.net, instance.source, instance.sink);

  const te::TrafficMatrix demands = {
      {graph::NodeId{instance.source}, graph::NodeId{instance.sink},
       Gbps{1e9}, 0}};
  const auto assignment = te::McfTe{}.solve(augmented.graph, demands);
  EXPECT_NEAR(assignment.total_routed.value, upgraded_flow, 1e-6);

  const auto plan = translate_assignment(instance.base, augmented,
                                         instance.variable, assignment);
  EXPECT_NEAR(plan.physical_assignment.total_routed.value, upgraded_flow,
              1e-6);
  // Physical loads never exceed the upgraded capacity of any link, and
  // only links in the variable set get upgraded.
  graph::Graph upgraded = instance.base;
  apply_plan(upgraded, plan);
  for (EdgeId e : instance.base.edge_ids()) {
    EXPECT_LE(
        plan.physical_assignment.edge_load_gbps[static_cast<std::size_t>(
            e.value)],
        upgraded.edge(e).capacity.value + 1e-6);
  }
  for (const CapacityChange& change : plan.upgrades) {
    const bool in_variable_set =
        std::any_of(instance.variable.begin(), instance.variable.end(),
                    [&](const VariableLink& link) {
                      return link.edge == change.edge &&
                             link.feasible_capacity == change.to;
                    });
    EXPECT_TRUE(in_variable_set);
    EXPECT_GT(change.upgrade_traffic.value, 0.0);
  }
}

TEST_P(TheoremSweep, GadgetModePreservesTheoremValue) {
  const auto instance =
      random_instance(static_cast<std::uint64_t>(GetParam()) * 11 + 1);
  AugmentOptions options;
  options.unsplittable_gadget = true;
  const auto augmented = augment_topology(
      instance.base, instance.variable, FixedPenalty{3.0}, {}, options);
  auto augmented_view = flow::make_network(augmented.graph);
  const auto result = flow::min_cost_max_flow(
      augmented_view.net, instance.source, instance.sink);
  auto upgraded_view = flow::make_network(fully_upgraded(instance));
  const double upgraded_flow =
      flow::max_flow_dinic(upgraded_view.net, instance.source, instance.sink);
  EXPECT_NEAR(result.flow, upgraded_flow, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSweep, ::testing::Range(1, 21));

TEST(Theorem, ZeroPenaltyCostIsZero) {
  const auto instance = random_instance(99);
  const auto augmented =
      augment_topology(instance.base, instance.variable, ZeroPenalty{});
  auto view = flow::make_network(augmented.graph);
  const auto result =
      flow::min_cost_max_flow(view.net, instance.source, instance.sink);
  EXPECT_NEAR(result.cost, 0.0, 1e-9);
}

TEST(Theorem, PenaltyNeverExceedsHeadroomTraffic) {
  // With unit penalties the total cost is exactly the traffic carried on
  // fake links, which is bounded by the total added headroom.
  const auto instance = random_instance(123);
  const auto augmented =
      augment_topology(instance.base, instance.variable, FixedPenalty{1.0});
  auto view = flow::make_network(augmented.graph);
  const auto result =
      flow::min_cost_max_flow(view.net, instance.source, instance.sink);
  double total_headroom = 0.0;
  for (const VariableLink& link : instance.variable)
    total_headroom += (link.feasible_capacity -
                       instance.base.edge(link.edge).capacity)
                          .value;
  EXPECT_LE(result.cost, total_headroom + 1e-6);
}

}  // namespace
}  // namespace rwc::core
