// Tests for the device-backed reconfiguration orchestrator.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/orchestrator.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Db;
using util::Gbps;
using namespace util::literals;

/// Controller round on a single upgradable link, returning everything the
/// orchestrator needs.
struct Scenario {
  graph::Graph base;
  graph::Graph after;
  te::FlowAssignment before;
  ReconfigurationPlan plan;
};

Scenario make_upgrade_scenario() {
  Scenario scenario;
  const NodeId a = scenario.base.add_node("A");
  const NodeId b = scenario.base.add_node("B");
  scenario.base.add_edge(a, b, 100_Gbps);

  te::McfTe engine;
  ControllerOptions options;
  options.snr_margin = 0_dB;
  DynamicCapacityController controller(
      scenario.base, optical::ModulationTable::standard(), engine, options);

  // Round 1 establishes "before" traffic; round 2 upgrades.
  const std::vector<Db> snr = {16.0_dB};
  controller.run_round(snr, {{a, b, 90_Gbps, 0}});
  scenario.before = controller.last_assignment();
  const auto report = controller.run_round(snr, {{a, b, 150_Gbps, 0}});
  scenario.plan = report.plan;
  scenario.after = controller.current_topology();
  return scenario;
}

TEST(Orchestrator, DeviceArrayMatchesTopology) {
  const graph::Graph g = sim::fig7_square();
  auto devices = make_device_array(g, optical::ModulationTable::standard(),
                                   7, 15.0_dB);
  ASSERT_EQ(devices.size(), g.edge_count());
  for (auto& device : devices) {
    EXPECT_TRUE(device.laser_on());
    EXPECT_TRUE(device.carrier_locked());
    EXPECT_EQ(device.active_capacity(), 100_Gbps);
  }
}

TEST(Orchestrator, ExecutesUpgradeEndToEnd) {
  Scenario scenario = make_upgrade_scenario();
  ASSERT_EQ(scenario.plan.upgrades.size(), 1u);
  auto devices = make_device_array(
      scenario.base, optical::ModulationTable::standard(), 3, 16.0_dB);

  ReconfigurationOrchestrator::Options options;
  options.procedure = bvt::Procedure::kEfficient;
  const ReconfigurationOrchestrator orchestrator(options);
  const auto report = orchestrator.execute(scenario.after, scenario.before,
                                           scenario.plan, devices);
  EXPECT_TRUE(report.success);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_LT(report.makespan, 1.0);  // hitless: well under a second
  // The device now runs at the upgraded rate.
  EXPECT_EQ(devices[0].active_capacity(), 200_Gbps);
  // 90 G of prior traffic was parked for the downtime.
  EXPECT_GT(report.parked_gbps_seconds, 0.0);
  EXPECT_LT(report.parked_gbps_seconds, 90.0 * 1.0);
}

TEST(Orchestrator, StandardProcedureDominatesMakespan) {
  Scenario scenario = make_upgrade_scenario();
  auto hitless_devices = make_device_array(
      scenario.base, optical::ModulationTable::standard(), 3, 16.0_dB);
  auto standard_devices = make_device_array(
      scenario.base, optical::ModulationTable::standard(), 3, 16.0_dB);

  ReconfigurationOrchestrator::Options hitless_options;
  hitless_options.procedure = bvt::Procedure::kEfficient;
  ReconfigurationOrchestrator::Options standard_options;
  standard_options.procedure = bvt::Procedure::kStandard;
  const auto hitless = ReconfigurationOrchestrator(hitless_options)
                           .execute(scenario.after, scenario.before,
                                    scenario.plan, hitless_devices);
  const auto standard = ReconfigurationOrchestrator(standard_options)
                            .execute(scenario.after, scenario.before,
                                     scenario.plan, standard_devices);
  EXPECT_GT(standard.makespan, 10.0);
  EXPECT_GT(standard.makespan, 50.0 * hitless.makespan);
  EXPECT_GT(standard.parked_gbps_seconds,
            50.0 * hitless.parked_gbps_seconds);
}

TEST(Orchestrator, TimelinePhasesAreOrdered) {
  Scenario scenario = make_upgrade_scenario();
  auto devices = make_device_array(
      scenario.base, optical::ModulationTable::standard(), 3, 16.0_dB);
  const ReconfigurationOrchestrator orchestrator({});
  const auto report = orchestrator.execute(scenario.after, scenario.before,
                                           scenario.plan, devices);
  // Timestamps non-decreasing; every drain precedes every restore.
  double last_drain = -1.0;
  double first_restore = 1e18;
  double previous = -1.0;
  for (const auto& event : report.timeline) {
    EXPECT_GE(event.at, previous);
    previous = event.at;
    if (event.kind == OrchestratorEvent::Kind::kDrainStep)
      last_drain = std::max(last_drain, event.at);
    if (event.kind == OrchestratorEvent::Kind::kRestoreStep)
      first_restore = std::min(first_restore, event.at);
  }
  if (last_drain >= 0.0 && first_restore < 1e18) {
    EXPECT_LE(last_drain, first_restore);
  }
  // Reconfigure start precedes its done event.
  double start_at = -1.0, done_at = -1.0;
  for (const auto& event : report.timeline) {
    if (event.kind == OrchestratorEvent::Kind::kReconfigureStart)
      start_at = event.at;
    if (event.kind == OrchestratorEvent::Kind::kReconfigureDone)
      done_at = event.at;
  }
  ASSERT_GE(start_at, 0.0);
  ASSERT_GE(done_at, 0.0);
  EXPECT_LT(start_at, done_at);
}

TEST(Orchestrator, ReportsLockFailureWhenSnrTooLow) {
  Scenario scenario = make_upgrade_scenario();
  // Devices see much worse SNR than the controller believed.
  auto devices = make_device_array(
      scenario.base, optical::ModulationTable::standard(), 3, 8.0_dB);
  const ReconfigurationOrchestrator orchestrator({});
  const auto report = orchestrator.execute(scenario.after, scenario.before,
                                           scenario.plan, devices);
  EXPECT_FALSE(report.success);
  bool saw_failure = false;
  for (const auto& event : report.timeline)
    if (event.kind == OrchestratorEvent::Kind::kReconfigureFailed)
      saw_failure = true;
  EXPECT_TRUE(saw_failure);
  EXPECT_EQ(devices[0].active_capacity(), 0_Gbps);
}

TEST(Orchestrator, NoUpgradesMeansRoutingOnlyTimeline) {
  // A plan without upgrades: pure consistent-update execution.
  graph::Graph base = sim::fig7_square();
  te::McfTe engine;
  ControllerOptions options;
  options.snr_margin = 0_dB;
  DynamicCapacityController controller(
      base, optical::ModulationTable::standard(), engine, options);
  const std::vector<Db> snr(base.edge_count(), 7.0_dB);  // no headroom
  const auto a = *base.find_node("A");
  const auto b = *base.find_node("B");
  controller.run_round(snr, {{a, b, 60_Gbps, 0}});
  const auto before = controller.last_assignment();
  const auto report2 = controller.run_round(snr, {{a, b, 90_Gbps, 0}});
  ASSERT_TRUE(report2.plan.upgrades.empty());

  auto devices = make_device_array(
      base, optical::ModulationTable::standard(), 3, 7.0_dB);
  const ReconfigurationOrchestrator orchestrator({});
  const auto execution = orchestrator.execute(
      controller.current_topology(), before, report2.plan, devices);
  EXPECT_TRUE(execution.success);
  EXPECT_EQ(execution.parked_gbps_seconds, 0.0);
  for (const auto& event : execution.timeline)
    EXPECT_TRUE(event.kind == OrchestratorEvent::Kind::kDrainStep ||
                event.kind == OrchestratorEvent::Kind::kRestoreStep);
}

TEST(Orchestrator, RejectsMismatchedDeviceArray) {
  Scenario scenario = make_upgrade_scenario();
  DeviceArray devices;  // empty
  const ReconfigurationOrchestrator orchestrator({});
  EXPECT_THROW(orchestrator.execute(scenario.after, scenario.before,
                                    scenario.plan, devices),
               util::CheckError);
}

}  // namespace
}  // namespace rwc::core
