// Tests for Section 4.2 (i) end-to-end: protected flows are invisible to
// the TE run, their capacity is reserved, and their links never change
// capacity.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Db;
using util::Gbps;
using namespace util::literals;

struct Fixture {
  graph::Graph base = sim::fig7_square();
  NodeId a = *base.find_node("A");
  NodeId b = *base.find_node("B");
  NodeId c = *base.find_node("C");
  NodeId d = *base.find_node("D");
  EdgeId ab = *base.find_edge(a, b);
  te::McfTe engine;

  ProtectedFlow protect_ab(double volume) {
    ProtectedFlow flow;
    flow.path.edges = {ab};
    flow.volume = Gbps{volume};
    return flow;
  }
};

TEST(ProtectedFlows, CapacityIsReservedFromTe) {
  Fixture fx;
  ControllerOptions options;
  options.snr_margin = 0_dB;
  options.protected_flows = {fx.protect_ab(60.0)};
  DynamicCapacityController controller(
      fx.base, optical::ModulationTable::standard(), fx.engine, options);
  // No headroom anywhere: TE sees only 40 G on A-B (plus the detour).
  const std::vector<Db> snr(fx.base.edge_count(), 7.0_dB);
  const te::TrafficMatrix demands = {{fx.a, fx.b, 200_Gbps, 0}};
  const auto report = controller.run_round(snr, demands);
  // 40 G direct remainder + 100 G via A-C-D-B = 140 G.
  EXPECT_NEAR(report.total_routed.value, 140.0, 1e-5);
}

TEST(ProtectedFlows, ProtectedLinksNeverUpgrade) {
  Fixture fx;
  ControllerOptions options;
  options.snr_margin = 0_dB;
  options.protected_flows = {fx.protect_ab(50.0)};
  DynamicCapacityController controller(
      fx.base, optical::ModulationTable::standard(), fx.engine, options);
  // Plenty of SNR everywhere: every link except A->B may upgrade.
  const std::vector<Db> snr(fx.base.edge_count(), 20.0_dB);
  const te::TrafficMatrix demands = {{fx.a, fx.b, 250_Gbps, 0}};
  const auto report = controller.run_round(snr, demands);
  for (const auto& change : report.plan.upgrades)
    EXPECT_NE(change.edge, fx.ab)
        << "a protected link changed capacity";
  EXPECT_FALSE(report.plan.upgrades.empty());
  // Demand above the unprotected fabric is only partially served.
  EXPECT_LT(report.total_routed.value, 250.0 + 1e-6);
  EXPECT_GT(report.total_routed.value, 150.0);
}

TEST(ProtectedFlows, UnprotectedRunIsStrictlyLessConstrained) {
  Fixture fx;
  const std::vector<Db> snr(fx.base.edge_count(), 7.0_dB);
  const te::TrafficMatrix demands = {{fx.a, fx.b, 200_Gbps, 0}};

  ControllerOptions plain;
  plain.snr_margin = 0_dB;
  DynamicCapacityController unconstrained(
      fx.base, optical::ModulationTable::standard(), fx.engine, plain);
  ControllerOptions shielded = plain;
  shielded.protected_flows = {fx.protect_ab(60.0)};
  DynamicCapacityController constrained(
      fx.base, optical::ModulationTable::standard(), fx.engine, shielded);

  const double free_routed =
      unconstrained.run_round(snr, demands).total_routed.value;
  const double shielded_routed =
      constrained.run_round(snr, demands).total_routed.value;
  EXPECT_GT(free_routed, shielded_routed);
  EXPECT_NEAR(free_routed - shielded_routed, 60.0, 1e-5);
}

TEST(ProtectedFlows, OverCommittedProtectionIsRejected) {
  Fixture fx;
  ControllerOptions options;
  options.snr_margin = 0_dB;
  options.protected_flows = {fx.protect_ab(150.0)};  // above 100 G
  DynamicCapacityController controller(
      fx.base, optical::ModulationTable::standard(), fx.engine, options);
  const std::vector<Db> snr(fx.base.edge_count(), 7.0_dB);
  EXPECT_THROW(controller.run_round(snr, {}), util::CheckError);
}

TEST(ProtectedFlows, MultiHopProtectionFreezesWholePath) {
  Fixture fx;
  ProtectedFlow detour;
  detour.path.edges = {*fx.base.find_edge(fx.a, fx.c),
                       *fx.base.find_edge(fx.c, fx.d),
                       *fx.base.find_edge(fx.d, fx.b)};
  detour.volume = 30_Gbps;
  ControllerOptions options;
  options.snr_margin = 0_dB;
  options.protected_flows = {detour};
  DynamicCapacityController controller(
      fx.base, optical::ModulationTable::standard(), fx.engine, options);
  const std::vector<Db> snr(fx.base.edge_count(), 20.0_dB);
  const te::TrafficMatrix demands = {{fx.a, fx.b, 300_Gbps, 0}};
  const auto report = controller.run_round(snr, demands);
  for (const auto& change : report.plan.upgrades)
    for (EdgeId frozen : detour.path.edges)
      EXPECT_NE(change.edge, frozen);
}

}  // namespace
}  // namespace rwc::core
