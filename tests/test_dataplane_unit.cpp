// Unit tests of the dataplane building blocks (rwc::dataplane,
// docs/DATAPLANE.md): WCMP rendezvous hashing (split proportions, the
// minimal-migration property, degenerate weights), the capacity-timeline
// builder (no-op rounds, synthetic transient windows, schedule windows
// with drain limits, manual downshift events) and the Hanauer-style
// demand-aware workload generator (totals, elephant structure,
// determinism, rotation).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "bvt/latency.hpp"
#include "dataplane/timeline.hpp"
#include "dataplane/wcmp.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "update/schedule.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using dataplane::CapacityTimeline;
using dataplane::build_timeline;
using dataplane::flowlet_key;
using dataplane::path_identity;
using dataplane::wcmp_pick;

std::vector<std::uint64_t> identities(std::size_t n) {
  std::vector<std::uint64_t> ids;
  for (std::size_t p = 0; p < n; ++p) {
    const graph::EdgeId edge{static_cast<std::int32_t>(100 + p)};
    ids.push_back(path_identity(std::span<const graph::EdgeId>(&edge, 1)));
  }
  return ids;
}

TEST(Wcmp, SplitsProportionallyToWeights) {
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> ids = identities(weights.size());
  constexpr std::size_t kKeys = 8192;
  std::vector<std::size_t> hits(weights.size(), 0);
  for (std::size_t k = 0; k < kKeys; ++k)
    ++hits[wcmp_pick(flowlet_key(7, static_cast<std::uint32_t>(k), 1),
                     weights, ids)];
  for (std::size_t p = 0; p < weights.size(); ++p) {
    const double expected = weights[p] / 7.0;
    const double got = static_cast<double>(hits[p]) / kKeys;
    EXPECT_NEAR(got, expected, 0.03)
        << "path " << p << " expected share " << expected;
  }
}

TEST(Wcmp, IsDeterministic) {
  const std::vector<double> weights = {3.0, 1.0, 2.0};
  const std::vector<std::uint64_t> ids = identities(weights.size());
  for (std::uint32_t k = 0; k < 64; ++k) {
    const std::uint64_t key = flowlet_key(3, k, 42);
    EXPECT_EQ(wcmp_pick(key, weights, ids), wcmp_pick(key, weights, ids));
  }
}

// Rendezvous property: adding a path can only move flowlets ONTO the new
// path — every other flowlet keeps its pick (per-path scores of the
// incumbents are unchanged).
TEST(Wcmp, AddingAPathOnlyMovesFlowletsOntoIt) {
  const std::vector<double> base_weights = {1.0, 1.0, 1.0};
  const std::vector<std::uint64_t> base_ids = identities(3);
  std::vector<double> grown_weights = base_weights;
  grown_weights.push_back(1.0);
  const std::vector<std::uint64_t> grown_ids = identities(4);

  std::size_t moved = 0;
  constexpr std::size_t kKeys = 2048;
  for (std::uint32_t k = 0; k < kKeys; ++k) {
    const std::uint64_t key = flowlet_key(1, k, 9);
    const std::size_t before = wcmp_pick(key, base_weights, base_ids);
    const std::size_t after = wcmp_pick(key, grown_weights, grown_ids);
    if (after != before) {
      EXPECT_EQ(after, 3u) << "flowlet " << k
                           << " moved between incumbent paths";
      ++moved;
    }
  }
  // The new equal-weight path should attract roughly a quarter.
  EXPECT_GT(moved, kKeys / 8);
  EXPECT_LT(moved, kKeys / 2);
}

// Growing one path's weight can only move flowlets onto THAT path.
TEST(Wcmp, GrowingAWeightOnlyAttractsFlowlets) {
  const std::vector<std::uint64_t> ids = identities(3);
  const std::vector<double> before_weights = {1.0, 1.0, 1.0};
  const std::vector<double> after_weights = {1.0, 3.0, 1.0};
  for (std::uint32_t k = 0; k < 2048; ++k) {
    const std::uint64_t key = flowlet_key(2, k, 5);
    const std::size_t before = wcmp_pick(key, before_weights, ids);
    const std::size_t after = wcmp_pick(key, after_weights, ids);
    if (after != before) EXPECT_EQ(after, 1u);
  }
}

TEST(Wcmp, DegenerateWeightsFallBackToFirstPath) {
  const std::vector<std::uint64_t> ids = identities(2);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_EQ(wcmp_pick(flowlet_key(0, 0, 1), zero, ids), 0u);
  // A zero-weight path is never picked while a positive one exists.
  const std::vector<double> mixed = {0.0, 1.0};
  for (std::uint32_t k = 0; k < 256; ++k)
    EXPECT_EQ(wcmp_pick(flowlet_key(0, k, 1), mixed, ids), 1u);
}

TEST(Wcmp, PathIdentityDependsOnEdgeSequence) {
  const graph::EdgeId ab[] = {graph::EdgeId{1}, graph::EdgeId{2}};
  const graph::EdgeId ba[] = {graph::EdgeId{2}, graph::EdgeId{1}};
  EXPECT_NE(path_identity(ab), path_identity(ba));
  EXPECT_EQ(path_identity(ab), path_identity(ab));
}

TEST(Timeline, UnchangedCapacitiesYieldNoWindows) {
  const std::vector<util::Gbps> caps = {util::Gbps{100.0}, util::Gbps{200.0}};
  const CapacityTimeline timeline =
      build_timeline(caps, caps, nullptr, 64, 0.005);
  EXPECT_TRUE(timeline.windows.empty());
  EXPECT_EQ(timeline.last_window_end(), 0u);
  for (std::size_t tick : {std::size_t{0}, std::size_t{31}, std::size_t{63}}) {
    EXPECT_EQ(timeline.capacity_gbps(0, tick), 100.0);
    EXPECT_EQ(timeline.capacity_gbps(1, tick), 200.0);
    EXPECT_FALSE(timeline.in_window(tick));
  }
}

TEST(Timeline, UnscheduledChangeJumpsAtTickZeroWithTransientWindow) {
  const std::vector<util::Gbps> before = {util::Gbps{100.0}};
  const std::vector<util::Gbps> after = {util::Gbps{150.0}};
  const CapacityTimeline timeline =
      build_timeline(before, after, nullptr, 64, 0.005);
  EXPECT_EQ(timeline.capacity_gbps(0, 0), 150.0);
  ASSERT_EQ(timeline.windows.size(), 1u);
  EXPECT_TRUE(timeline.in_window(0));
  EXPECT_TRUE(timeline.in_window(7));
  EXPECT_FALSE(timeline.in_window(8));
  EXPECT_EQ(timeline.last_window_end(), 8u);
}

TEST(Timeline, ScheduleWindowsCarryDrainLimitsThenTargets) {
  const std::vector<util::Gbps> before = {util::Gbps{100.0},
                                          util::Gbps{200.0}};
  const std::vector<util::Gbps> after = {util::Gbps{50.0}, util::Gbps{200.0}};
  update::UpdateSchedule schedule;
  schedule.feasible = true;
  schedule.procedure = bvt::Procedure::kStandard;
  update::UpdateRound round;
  round.duration_seconds = 0.035;
  update::Move move;
  move.kind = update::Move::Kind::kReconfig;
  move.edge = graph::EdgeId{0};
  move.from = util::Gbps{100.0};
  move.to = util::Gbps{50.0};
  round.moves.push_back(move);
  schedule.rounds.push_back(round);

  const CapacityTimeline timeline =
      build_timeline(before, after, &schedule, 64, 0.005);
  ASSERT_FALSE(timeline.windows.empty());
  const std::uint32_t end = timeline.last_window_end();
  ASSERT_GT(end, 0u);
  // kStandard darkens the link for its window, then lands on the target.
  EXPECT_EQ(timeline.capacity_gbps(0, 0), 0.0);
  EXPECT_EQ(timeline.capacity_gbps(0, end), 50.0);
  EXPECT_EQ(timeline.capacity_gbps(0, 63), 50.0);
  // The untouched edge holds its capacity throughout.
  EXPECT_EQ(timeline.capacity_gbps(1, 0), 200.0);
  EXPECT_EQ(timeline.capacity_gbps(1, 63), 200.0);
}

TEST(Timeline, AddEventOverridesAndInserts) {
  const std::vector<util::Gbps> caps = {util::Gbps{100.0}};
  CapacityTimeline timeline = build_timeline(caps, caps, nullptr, 64, 0.005);
  timeline.add_event(0, 32, 25.0);
  EXPECT_EQ(timeline.capacity_gbps(0, 31), 100.0);
  EXPECT_EQ(timeline.capacity_gbps(0, 32), 25.0);
  EXPECT_EQ(timeline.capacity_gbps(0, 63), 25.0);
  timeline.add_event(0, 32, 75.0);  // same tick overwrites
  EXPECT_EQ(timeline.capacity_gbps(0, 32), 75.0);
}

struct WorkloadFixture {
  graph::Graph topology;

  WorkloadFixture() {
    util::Rng rng = util::Rng::stream(7, 0);
    topology = sim::waxman(8, rng);
  }
};

TEST(DemandAwareWorkload, ConservesTotalAndKeepsAllSlots) {
  WorkloadFixture fixture;
  sim::DemandAwareParams params;
  params.total = util::Gbps{1000.0};
  util::Rng rng = util::Rng::stream(7, 1);
  const te::TrafficMatrix demands =
      sim::demand_aware_matrix(fixture.topology, params, rng);
  const std::size_t n = fixture.topology.node_count();
  EXPECT_EQ(demands.size(), n * (n - 1));  // zero-volume ODs kept
  double total = 0.0;
  for (const te::Demand& demand : demands) {
    EXPECT_GE(demand.volume.value, 0.0);
    total += demand.volume.value;
  }
  EXPECT_NEAR(total, 1000.0, 1e-6);
}

TEST(DemandAwareWorkload, ElephantsCarryTheConfiguredShare) {
  WorkloadFixture fixture;
  sim::DemandAwareParams params;
  params.total = util::Gbps{1000.0};
  params.elephants = 6;
  params.elephant_share = 0.7;
  util::Rng rng = util::Rng::stream(7, 2);
  te::TrafficMatrix demands =
      sim::demand_aware_matrix(fixture.topology, params, rng);
  std::vector<double> volumes;
  for (const te::Demand& demand : demands)
    volumes.push_back(demand.volume.value);
  std::sort(volumes.rbegin(), volumes.rend());
  double top = 0.0;
  for (std::size_t k = 0; k < params.elephants; ++k) top += volumes[k];
  EXPECT_NEAR(top, 700.0, 1e-6);
  // Zipf skew: the heaviest elephant strictly dominates the lightest.
  EXPECT_GT(volumes[0], volumes[params.elephants - 1]);
}

TEST(DemandAwareWorkload, IsDeterministicInTheSeed) {
  WorkloadFixture fixture;
  sim::DemandAwareParams params;
  util::Rng rng_a = util::Rng::stream(7, 3);
  util::Rng rng_b = util::Rng::stream(7, 3);
  const te::TrafficMatrix a =
      sim::demand_aware_matrix(fixture.topology, params, rng_a);
  const te::TrafficMatrix b =
      sim::demand_aware_matrix(fixture.topology, params, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_EQ(a[k].volume.value, b[k].volume.value);
}

TEST(DemandAwareWorkload, RotationPermutesVolumesKeepingSlots) {
  WorkloadFixture fixture;
  sim::DemandAwareParams params;
  util::Rng rng = util::Rng::stream(7, 4);
  const te::TrafficMatrix base =
      sim::demand_aware_matrix(fixture.topology, params, rng);
  const te::TrafficMatrix rotated = sim::rotate_elephants(base, 3, 2);
  ASSERT_EQ(rotated.size(), base.size());
  std::multiset<double> base_volumes, rotated_volumes;
  for (std::size_t k = 0; k < base.size(); ++k) {
    // OD endpoints (the slot order) are untouched; volumes permute.
    EXPECT_EQ(rotated[k].src.value, base[k].src.value);
    EXPECT_EQ(rotated[k].dst.value, base[k].dst.value);
    base_volumes.insert(base[k].volume.value);
    rotated_volumes.insert(rotated[k].volume.value);
  }
  EXPECT_EQ(base_volumes, rotated_volumes);
  EXPECT_EQ(rotated[(0 + 3 * 2) % base.size()].volume.value,
            base[0].volume.value);
  // Epoch 0 is the identity.
  const te::TrafficMatrix same = sim::rotate_elephants(base, 0, 2);
  for (std::size_t k = 0; k < base.size(); ++k)
    EXPECT_EQ(same[k].volume.value, base[k].volume.value);
}

}  // namespace
}  // namespace rwc
