// Tests for built-in topologies and workload generation.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace rwc::sim {
namespace {

using util::Gbps;
using namespace util::literals;

TEST(Topology, Fig7SquareShape) {
  const graph::Graph g = fig7_square();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 8u);  // 4 bidirectional links
  EXPECT_EQ(link_count(g), 4u);
  EXPECT_TRUE(g.find_edge(*g.find_node("A"), *g.find_node("B")).has_value());
  EXPECT_TRUE(g.find_edge(*g.find_node("C"), *g.find_node("D")).has_value());
  EXPECT_FALSE(g.find_edge(*g.find_node("A"), *g.find_node("D")).has_value());
}

TEST(Topology, AbileneShape) {
  const graph::Graph g = abilene();
  EXPECT_EQ(g.node_count(), 11u);
  EXPECT_EQ(link_count(g), 14u);
  EXPECT_TRUE(graph::is_strongly_connected(g));
  for (graph::EdgeId e : g.edge_ids())
    EXPECT_EQ(g.edge(e).capacity, 100_Gbps);
}

TEST(Topology, UsWan24Shape) {
  const graph::Graph g = us_wan24();
  EXPECT_EQ(g.node_count(), 24u);
  EXPECT_GE(link_count(g), 38u);
  EXPECT_TRUE(graph::is_strongly_connected(g));
}

TEST(Topology, CustomCapacityPropagates) {
  const graph::Graph g = abilene(150_Gbps);
  for (graph::EdgeId e : g.edge_ids())
    EXPECT_EQ(g.edge(e).capacity, 150_Gbps);
}

class WaxmanSweep : public ::testing::TestWithParam<int> {};

TEST_P(WaxmanSweep, ConnectedAndBidirectional) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const graph::Graph g = waxman(GetParam() * 5 + 5, rng);
  EXPECT_TRUE(graph::is_strongly_connected(g));
  EXPECT_EQ(g.edge_count() % 2, 0u);
  // Every edge has an opposite twin.
  for (graph::EdgeId e : g.edge_ids())
    EXPECT_TRUE(g.find_edge(g.edge(e).dst, g.edge(e).src).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, WaxmanSweep, ::testing::Range(1, 8));

TEST(Workload, GravitySumsToTotal) {
  util::Rng rng(5);
  const graph::Graph g = abilene();
  GravityParams params;
  params.total = 1234_Gbps;
  const auto demands = gravity_matrix(g, params, rng);
  EXPECT_EQ(demands.size(), 11u * 10u);
  double sum = 0.0;
  for (const auto& d : demands) {
    EXPECT_NE(d.src, d.dst);
    EXPECT_GE(d.volume.value, 0.0);
    sum += d.volume.value;
  }
  EXPECT_NEAR(sum, 1234.0, 1e-6);
}

TEST(Workload, SparsityDropsPairs) {
  util::Rng rng(6);
  const graph::Graph g = abilene();
  GravityParams params;
  params.sparsity = 0.5;
  const auto demands = gravity_matrix(g, params, rng);
  EXPECT_LT(demands.size(), 11u * 10u);
  EXPECT_GT(demands.size(), 10u);
  double sum = 0.0;
  for (const auto& d : demands) sum += d.volume.value;
  EXPECT_NEAR(sum, params.total.value, 1e-6);
}

TEST(Workload, UniformMassesGiveEqualDemands) {
  util::Rng rng(7);
  const graph::Graph g = fig7_square();
  GravityParams params;
  params.total = 120_Gbps;
  params.mass_log_sigma = 0.0;
  const auto demands = gravity_matrix(g, params, rng);
  for (const auto& d : demands)
    EXPECT_NEAR(d.volume.value, 10.0, 1e-9);  // 12 pairs, equal split
}

TEST(Workload, ScaleMatrix) {
  util::Rng rng(8);
  const graph::Graph g = fig7_square();
  GravityParams params;
  const auto base = gravity_matrix(g, params, rng);
  const auto doubled = scale_matrix(base, 2.0);
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_NEAR(doubled[i].volume.value, 2.0 * base[i].volume.value, 1e-12);
}

TEST(Workload, DiurnalBoundsAndPeak) {
  for (double t = 0.0; t < 2.0 * util::kDay; t += 600.0) {
    const double f = diurnal_factor(t, 0.4, 20.0);
    EXPECT_GE(f, 0.4 - 1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
  EXPECT_NEAR(diurnal_factor(20.0 * util::kHour, 0.4, 20.0), 1.0, 1e-9);
  EXPECT_NEAR(diurnal_factor(8.0 * util::kHour, 0.4, 20.0), 0.4, 1e-9);
  // 24 h periodicity.
  EXPECT_NEAR(diurnal_factor(5.0 * util::kHour),
              diurnal_factor(29.0 * util::kHour), 1e-9);
}

TEST(Workload, GravityPriorityPropagates) {
  util::Rng rng(9);
  const graph::Graph g = fig7_square();
  GravityParams params;
  params.priority = 3;
  for (const auto& d : gravity_matrix(g, params, rng))
    EXPECT_EQ(d.priority, 3);
}

}  // namespace
}  // namespace rwc::sim
