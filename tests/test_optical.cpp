// Tests for the modulation ladder and the BER/EVM models.
#include <gtest/gtest.h>


#include <cmath>
#include "optical/ber.hpp"
#include "optical/modulation.hpp"
#include "util/check.hpp"

namespace rwc::optical {
namespace {

using util::Db;
using util::Gbps;
using namespace util::literals;

TEST(ModulationTable, PaperAnchorThresholds) {
  const auto table = ModulationTable::standard();
  // The two thresholds the paper states explicitly.
  EXPECT_EQ(table.threshold_for(100_Gbps), 6.5_dB);
  EXPECT_EQ(table.threshold_for(50_Gbps), 3.0_dB);
  EXPECT_EQ(table.min_capacity(), 50_Gbps);
  EXPECT_EQ(table.max_capacity(), 200_Gbps);
  EXPECT_EQ(table.formats().size(), 6u);
}

TEST(ModulationTable, LadderIsMonotone) {
  const auto table = ModulationTable::standard();
  const auto formats = table.formats();
  for (std::size_t i = 1; i < formats.size(); ++i) {
    EXPECT_GT(formats[i].capacity, formats[i - 1].capacity);
    EXPECT_GT(formats[i].min_snr, formats[i - 1].min_snr);
    EXPECT_GT(formats[i].bits_per_symbol, formats[i - 1].bits_per_symbol);
  }
}

TEST(ModulationTable, BestForSnrSelectsHighestFeasible) {
  const auto table = ModulationTable::standard();
  EXPECT_EQ(table.feasible_capacity(20.0_dB), 200_Gbps);
  EXPECT_EQ(table.feasible_capacity(13.0_dB), 200_Gbps);   // exactly at
  EXPECT_EQ(table.feasible_capacity(12.99_dB), 175_Gbps);  // just below
  EXPECT_EQ(table.feasible_capacity(6.5_dB), 100_Gbps);
  EXPECT_EQ(table.feasible_capacity(4.0_dB), 50_Gbps);
  EXPECT_EQ(table.feasible_capacity(2.9_dB), 0_Gbps);  // link unusable
  EXPECT_FALSE(table.best_for_snr(1.0_dB).has_value());
}

TEST(ModulationTable, MarginShiftsTheLookup) {
  const auto table = ModulationTable::standard();
  EXPECT_EQ(table.feasible_capacity(13.4_dB, 0.0_dB), 200_Gbps);
  EXPECT_EQ(table.feasible_capacity(13.4_dB, 0.5_dB), 175_Gbps);
  EXPECT_EQ(table.feasible_capacity(3.4_dB, 0.5_dB), 0_Gbps);
}

TEST(ModulationTable, HasRateAndFormatLookup) {
  const auto table = ModulationTable::standard();
  EXPECT_TRUE(table.has_rate(125_Gbps));
  EXPECT_FALSE(table.has_rate(130_Gbps));
  EXPECT_EQ(table.format_for(150_Gbps).name, "DP-8QAM");
  EXPECT_THROW(table.format_for(130_Gbps), util::CheckError);
  EXPECT_THROW(table.threshold_for(42_Gbps), util::CheckError);
}

TEST(ModulationTable, CustomTableValidation) {
  // Thresholds must increase with capacity.
  EXPECT_THROW(ModulationTable({
                   {"a", 100_Gbps, 6.0_dB, 2.0},
                   {"b", 200_Gbps, 5.0_dB, 4.0},
               }),
               util::CheckError);
  EXPECT_THROW(ModulationTable({}), util::CheckError);
}

TEST(Ber, QFunctionAnchors) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(q_function(3.0), 0.001350, 1e-5);
  EXPECT_LT(q_function(6.0), 1e-8);
}

TEST(Ber, DecreasesWithSnr) {
  const auto table = ModulationTable::standard();
  for (const auto& format : table.formats()) {
    double previous = 1.0;
    for (double snr = 0.0; snr <= 20.0; snr += 1.0) {
      const double ber = approx_ber(format, Db{snr});
      EXPECT_LE(ber, previous + 1e-12);
      previous = ber;
    }
  }
}

TEST(Ber, DenserFormatsNeedMoreSnr) {
  const auto table = ModulationTable::standard();
  const auto formats = table.formats();
  const Db snr{10.0};
  for (std::size_t i = 1; i < formats.size(); ++i)
    EXPECT_GE(approx_ber(formats[i], snr), approx_ber(formats[i - 1], snr));
}

TEST(Ber, ViableAtThresholdInfeasibleFarBelow) {
  const auto table = ModulationTable::standard();
  for (const auto& format : table.formats()) {
    EXPECT_TRUE(format_viable(format, format.min_snr))
        << format.name << " must be viable at its own threshold";
    EXPECT_FALSE(format_viable(format, format.min_snr - Db{3.0}))
        << format.name << " must fail 3 dB below threshold";
  }
}

TEST(Evm, MatchesTheoreticalInverseSqrtSnr) {
  EXPECT_NEAR(expected_evm(Db{10.0}), 1.0 / std::sqrt(10.0), 1e-9);
  EXPECT_NEAR(expected_evm(Db{20.0}), 0.1, 1e-9);
  EXPECT_GT(expected_evm(Db{5.0}), expected_evm(Db{15.0}));
}

// The hybrid formats interpolate between their bracketing formats.
TEST(Ber, HybridBetweenBracketingFormats) {
  const auto table = ModulationTable::standard();
  const auto& qpsk = table.format_for(100_Gbps);
  const auto& hybrid = table.format_for(125_Gbps);
  const auto& qam8 = table.format_for(150_Gbps);
  const Db snr{9.0};
  const double lo = approx_ber(qpsk, snr);
  const double hi = approx_ber(qam8, snr);
  const double mid = approx_ber(hybrid, snr);
  EXPECT_GE(mid, lo);
  EXPECT_LE(mid, hi);
}

}  // namespace
}  // namespace rwc::optical
