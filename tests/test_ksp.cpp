// Tests for Yen's k-shortest-paths.
#include <gtest/gtest.h>

#include <set>

#include "graph/dijkstra.hpp"
#include "graph/ksp.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace rwc::graph {
namespace {

using namespace util::literals;

Graph ladder() {
  // Classic KSP example with several distinct path lengths.
  Graph g;
  const NodeId c = g.add_node("C");
  const NodeId d = g.add_node("D");
  const NodeId e = g.add_node("E");
  const NodeId f = g.add_node("F");
  const NodeId gg = g.add_node("G");
  const NodeId h = g.add_node("H");
  g.add_edge(c, d, 100_Gbps, 0.0, 3.0);
  g.add_edge(c, e, 100_Gbps, 0.0, 2.0);
  g.add_edge(d, f, 100_Gbps, 0.0, 4.0);
  g.add_edge(e, d, 100_Gbps, 0.0, 1.0);
  g.add_edge(e, f, 100_Gbps, 0.0, 2.0);
  g.add_edge(e, gg, 100_Gbps, 0.0, 3.0);
  g.add_edge(f, gg, 100_Gbps, 0.0, 2.0);
  g.add_edge(f, h, 100_Gbps, 0.0, 1.0);
  g.add_edge(gg, h, 100_Gbps, 0.0, 2.0);
  return g;
}

TEST(Ksp, MatchesKnownYenExample) {
  Graph g = ladder();
  const NodeId c = *g.find_node("C");
  const NodeId h = *g.find_node("H");
  const auto paths = k_shortest_paths(g, c, h, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].weight, 5.0);  // C-E-F-H
  EXPECT_DOUBLE_EQ(paths[1].weight, 7.0);  // C-E-G-H
  EXPECT_DOUBLE_EQ(paths[2].weight, 8.0);  // C-D-F-H / C-E-F-G-H / C-E-D-F-H
  EXPECT_EQ(path_to_string(g, paths[0]), "C -> E -> F -> H");
  EXPECT_EQ(path_to_string(g, paths[1]), "C -> E -> G -> H");
}

TEST(Ksp, FirstPathEqualsDijkstra) {
  Graph g = sim::abilene();
  const NodeId src = *g.find_node("SEA");
  const NodeId dst = *g.find_node("NYC");
  const auto paths = k_shortest_paths(g, src, dst, 4);
  ASSERT_FALSE(paths.empty());
  const Path direct = shortest_path(g, src, dst);
  EXPECT_DOUBLE_EQ(paths[0].weight, direct.weight);
}

TEST(Ksp, ReturnsFewerWhenGraphHasFewerPaths) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 1_Gbps);
  const auto paths = k_shortest_paths(g, a, b, 10);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(Ksp, EmptyWhenUnreachable) {
  Graph g;
  const NodeId a = g.add_node("a");
  g.add_node("b");
  const auto paths = k_shortest_paths(g, a, NodeId{1}, 3);
  EXPECT_TRUE(paths.empty());
}

TEST(Ksp, RejectsSelfLoopQueryAndZeroK) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 1_Gbps);
  EXPECT_THROW(k_shortest_paths(g, a, a, 3), util::CheckError);
  EXPECT_THROW(k_shortest_paths(g, a, b, 0), util::CheckError);
}

class KspPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(KspPropertySweep, SortedLooplessDistinctAndValid) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  Graph g = sim::waxman(10, rng);
  for (EdgeId e : g.edge_ids()) g.edge(e).weight = rng.uniform(0.5, 4.0);

  const NodeId src{0};
  const NodeId dst{9};
  const auto paths = k_shortest_paths(g, src, dst, 6);
  ASSERT_FALSE(paths.empty());

  std::set<std::vector<EdgeId>> seen;
  double previous = 0.0;
  for (const Path& p : paths) {
    // Valid contiguous path src -> dst.
    const auto nodes = path_nodes(g, p);
    EXPECT_EQ(nodes.front(), src);
    EXPECT_EQ(nodes.back(), dst);
    // Loopless: all nodes distinct.
    std::set<std::int32_t> distinct;
    for (NodeId n : nodes) EXPECT_TRUE(distinct.insert(n.value).second);
    // Weight consistent with its edges.
    double w = 0.0;
    for (EdgeId e : p.edges) w += g.edge(e).weight;
    EXPECT_NEAR(w, p.weight, 1e-9);
    // Sorted ascending, all distinct.
    EXPECT_GE(p.weight, previous - 1e-9);
    previous = p.weight;
    EXPECT_TRUE(seen.insert(p.edges).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspPropertySweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace rwc::graph
