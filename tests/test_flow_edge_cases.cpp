// Edge-case and failure-injection tests for the flow solvers.
#include <gtest/gtest.h>

#include "flow/cycle_cancel.hpp"
#include "flow/decompose.hpp"
#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/mincost.hpp"
#include "util/check.hpp"

namespace rwc::flow {
namespace {

TEST(FlowEdgeCases, ParallelArcsAddCapacity) {
  ResidualNetwork net(2);
  net.add_arc(0, 1, 3.0);
  net.add_arc(0, 1, 4.0);
  net.add_arc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 1), 12.0);
}

TEST(FlowEdgeCases, ParallelArcsWithDifferentCostsFillCheapestFirst) {
  ResidualNetwork net(2);
  const int pricey = net.add_arc(0, 1, 10.0, 5.0);
  const int cheap = net.add_arc(0, 1, 10.0, 1.0);
  const auto result = min_cost_max_flow(net, 0, 1, 12.0);
  EXPECT_DOUBLE_EQ(result.flow, 12.0);
  EXPECT_DOUBLE_EQ(net.flow(cheap), 10.0);
  EXPECT_DOUBLE_EQ(net.flow(pricey), 2.0);
  EXPECT_DOUBLE_EQ(result.cost, 10.0 * 1.0 + 2.0 * 5.0);
}

TEST(FlowEdgeCases, SelfLoopArcCarriesNothingToSink) {
  ResidualNetwork net(2);
  net.add_arc(0, 0, 100.0);
  net.add_arc(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 1), 2.0);
}

TEST(FlowEdgeCases, BackAndForthArcsDoNotInflateFlow) {
  ResidualNetwork net(3);
  net.add_arc(0, 1, 5.0);
  net.add_arc(1, 0, 5.0);  // reverse direction physical arc
  net.add_arc(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 2), 3.0);
}

TEST(FlowEdgeCases, ZeroFlowLimitRoutesNothing) {
  ResidualNetwork net(2);
  net.add_arc(0, 1, 5.0, 1.0);
  const auto result = min_cost_max_flow(net, 0, 1, 0.0);
  EXPECT_DOUBLE_EQ(result.flow, 0.0);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(FlowEdgeCases, ResetRestoresFullCapacity) {
  ResidualNetwork net(2);
  net.add_arc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 1), 5.0);
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 1), 0.0);  // saturated
  net.reset();
  EXPECT_DOUBLE_EQ(max_flow_dinic(net, 0, 1), 5.0);
}

TEST(FlowEdgeCases, FractionalCapacitiesStayConsistent) {
  ResidualNetwork net(3);
  net.add_arc(0, 1, 0.125);
  net.add_arc(1, 2, 0.0625);
  const double flow = max_flow_dinic(net, 0, 2);
  EXPECT_NEAR(flow, 0.0625, 1e-12);
  const auto decomposition = decompose_flow(net, 0, 2);
  ASSERT_EQ(decomposition.paths.size(), 1u);
  EXPECT_NEAR(decomposition.paths[0].amount, 0.0625, 1e-12);
}

TEST(FlowEdgeCases, SameSourceSinkRejected) {
  ResidualNetwork net(2);
  net.add_arc(0, 1, 5.0);
  EXPECT_THROW(max_flow_dinic(net, 1, 1), util::CheckError);
  EXPECT_THROW(min_cost_max_flow(net, 0, 0), util::CheckError);
  EXPECT_THROW(decompose_flow(net, 1, 1), util::CheckError);
}

TEST(FlowEdgeCases, InvalidArcEndpointsRejected) {
  ResidualNetwork net(2);
  EXPECT_THROW(net.add_arc(0, 2, 1.0), util::CheckError);
  EXPECT_THROW(net.add_arc(-1, 1, 1.0), util::CheckError);
  EXPECT_THROW(net.add_arc(0, 1, -1.0), util::CheckError);
}

TEST(FlowEdgeCases, NegativeCycleSolverOnEmptyNetwork) {
  ResidualNetwork net(3);
  EXPECT_FALSE(find_negative_cycle(net).has_value());
  EXPECT_DOUBLE_EQ(cancel_negative_cycles(net), 0.0);
}

TEST(FlowEdgeCases, MinCutOnSaturatedSingleArc) {
  ResidualNetwork net(2);
  net.add_arc(0, 1, 7.0);
  max_flow_dinic(net, 0, 1);
  const auto side = min_cut_source_side(net, 0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[1]);
  EXPECT_DOUBLE_EQ(cut_capacity(net, side), 7.0);
}

TEST(FlowEdgeCases, DecomposePrefersNoCyclesWhenNoneExist) {
  // A dag with two junctions: decomposition covers all flow exactly once.
  ResidualNetwork net(5);
  net.add_arc(0, 1, 4.0);
  net.add_arc(0, 2, 4.0);
  net.add_arc(1, 3, 4.0);
  net.add_arc(2, 3, 4.0);
  net.add_arc(3, 4, 6.0);
  const double flow = max_flow_dinic(net, 0, 4);
  EXPECT_DOUBLE_EQ(flow, 6.0);
  const auto decomposition = decompose_flow(net, 0, 4);
  EXPECT_DOUBLE_EQ(decomposition.cancelled_cycle_flow, 0.0);
  double total = 0.0;
  for (const auto& pf : decomposition.paths) total += pf.amount;
  EXPECT_NEAR(total, 6.0, 1e-9);
}

}  // namespace
}  // namespace rwc::flow
