// Differential tests of the dataplane against the solver allocation
// (docs/DATAPLANE.md §5): the gap oracle for both TE engines over two
// seeds, capacity safety, bitwise determinism across thread-pool sizes
// and fleet shard counts, checkpoint restore-then-continue, and the
// dataplane-backed demand counter source certifying exact recovery on a
// clean round.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/controller.hpp"
#include "dataplane/counters.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/xcheck.hpp"
#include "demand/estimator.hpp"
#include "demand/routing_matrix.hpp"
#include "exec/thread_pool.hpp"
#include "fault/registry.hpp"
#include "fleet/dataplane_sweep.hpp"
#include "optical/modulation.hpp"
#include "replay/checkpoint.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc {
namespace {

using dataplane::XcheckConfig;
using dataplane::XcheckEngine;
using dataplane::XcheckOutcome;
using dataplane::run_xcheck;

XcheckConfig small_config(std::uint64_t seed, XcheckEngine engine) {
  XcheckConfig config;
  config.seed = seed;
  config.rounds = 3;
  config.engine = engine;
  return config;
}

TEST(DataplaneDifferential, GapOracleHoldsForMcf) {
  for (const std::uint64_t seed : {11ull, 23ull}) {
    const XcheckOutcome outcome =
        run_xcheck(small_config(seed, XcheckEngine::kMcf));
    EXPECT_TRUE(outcome.pass) << "seed " << seed << ": " << outcome.failure;
    EXPECT_EQ(outcome.capacity_violations, 0u) << "seed " << seed;
  }
}

TEST(DataplaneDifferential, GapOracleHoldsForSwan) {
  for (const std::uint64_t seed : {11ull, 23ull}) {
    const XcheckOutcome outcome =
        run_xcheck(small_config(seed, XcheckEngine::kSwan));
    EXPECT_TRUE(outcome.pass) << "seed " << seed << ": " << outcome.failure;
    EXPECT_EQ(outcome.capacity_violations, 0u) << "seed " << seed;
  }
}

TEST(DataplaneDifferential, GapOracleHoldsOnDemandAwareWorkload) {
  XcheckConfig config = small_config(31, XcheckEngine::kMcf);
  config.demand_aware = true;
  const XcheckOutcome outcome = run_xcheck(config);
  EXPECT_TRUE(outcome.pass) << outcome.failure;
}

TEST(DataplaneDifferential, ChainIsBitIdenticalAcrossPoolSizes) {
  const XcheckConfig config = small_config(17, XcheckEngine::kMcf);
  const XcheckOutcome reference = run_xcheck(config);
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    exec::ThreadPool pool(pool_size);
    XcheckConfig pooled = config;
    pooled.pool = &pool;
    const XcheckOutcome outcome = run_xcheck(pooled);
    EXPECT_EQ(outcome.chain, reference.chain) << "pool " << pool_size;
  }
}

TEST(DataplaneDifferential, CheckpointRestoreThenContinueIsBitIdentical) {
  const XcheckConfig config = small_config(19, XcheckEngine::kMcf);
  const XcheckOutcome reference = run_xcheck(config);
  for (const std::size_t at : {std::size_t{1}, std::size_t{2}}) {
    XcheckConfig restored = config;
    restored.checkpoint_round = at;
    const XcheckOutcome outcome = run_xcheck(restored);
    EXPECT_EQ(outcome.chain, reference.chain) << "checkpoint before round "
                                              << at;
    EXPECT_TRUE(outcome.pass) << outcome.failure;
  }
}

TEST(DataplaneDifferential, SweepChainIsInvariantToShardCount) {
  fleet::DataplaneSweepConfig config;
  config.instances = 4;
  config.seed = 5;
  config.base.rounds = 2;
  config.base.nodes = 8;

  config.shards = 1;
  const fleet::DataplaneSweepResult serial =
      fleet::run_dataplane_sweep(config);
  EXPECT_EQ(serial.failed_instances, 0u) << serial.first_failure;

  config.shards = 3;
  const fleet::DataplaneSweepResult sharded =
      fleet::run_dataplane_sweep(config);
  EXPECT_EQ(sharded.sweep_chain, serial.sweep_chain);

  // An instance run in isolation equals its slot in the sharded sweep.
  const fleet::DataplaneInstanceResult alone =
      fleet::run_dataplane_instance(config, 2);
  EXPECT_EQ(alone.chain, sharded.instances[2].chain);
}

TEST(DataplaneDifferential, SimStateRoundTripsThroughSaveRestore) {
  util::Rng topo_rng = util::Rng::stream(29, 810);
  const graph::Graph topology = sim::waxman(8, topo_rng);
  dataplane::DataplaneConfig config;
  dataplane::DataplaneSim sim(topology, 12, config);
  const std::vector<std::byte> state = sim.save_state();

  dataplane::DataplaneSim restored(topology, 12, config);
  restored.restore_state(state);
  EXPECT_EQ(restored.state_signature(), sim.state_signature());

  // Corrupt payloads are rejected, not absorbed.
  std::vector<std::byte> corrupt = state;
  corrupt[corrupt.size() / 2] ^= std::byte{0x40};
  dataplane::DataplaneSim victim(topology, 12, config);
  EXPECT_THROW(victim.restore_state(corrupt), util::CheckError);
  // Mismatched shape (different OD count) is rejected too.
  dataplane::DataplaneSim other(topology, 13, config);
  EXPECT_THROW(other.restore_state(state), util::CheckError);
}

TEST(DataplaneDifferential, CheckpointCarriesTheDataplaneSection) {
  replay::Checkpoint checkpoint;
  checkpoint.dataplane_present = true;
  checkpoint.dataplane_payload = {std::byte{0x52}, std::byte{0x57},
                                  std::byte{0x43}, std::byte{0x44}};
  const std::vector<std::byte> encoded = replay::encode(checkpoint);
  replay::Checkpoint decoded;
  ASSERT_EQ(replay::decode(encoded, decoded), replay::Error::kNone);
  EXPECT_TRUE(decoded.dataplane_present);
  EXPECT_EQ(decoded.dataplane_payload, checkpoint.dataplane_payload);
}

// The dataplane-backed counter source (docs/DATAPLANE.md §6): on a clean
// measured round every link reconciles with the installed analytic model,
// the exported counters equal the synthetic zero-noise stream
// byte-for-byte, and the estimator certifies exact recovery from them.
TEST(DataplaneDifferential, CleanRoundCountersCertifyExactRecovery) {
  util::Rng topo_rng = util::Rng::stream(37, 810);
  const graph::Graph topology = sim::waxman(8, topo_rng);
  util::Rng demand_rng = util::Rng::stream(37, 811);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{topology.total_capacity().value * 0.3};
  te::TrafficMatrix demands =
      sim::gravity_matrix(topology, gravity, demand_rng);
  for (te::Demand& demand : demands)
    demand.volume = util::Gbps{demand::snap_to_grid(demand.volume.value)};

  const te::McfTe engine;
  core::DynamicCapacityController controller(
      topology, optical::ModulationTable::standard(), engine, {});
  const std::vector<util::Db> snr(topology.edge_count(), util::Db{20.0});
  controller.run_round(snr, demands);
  const te::FlowAssignment& assignment = controller.last_assignment();

  // Steady capacities, no schedule: the whole trailing half measures.
  const std::span<const util::Gbps> configured =
      controller.configured_capacities();
  const std::vector<util::Gbps> caps(configured.begin(), configured.end());
  dataplane::DataplaneConfig dp_config;
  const dataplane::CapacityTimeline timeline = dataplane::build_timeline(
      caps, caps, nullptr, dp_config.ticks_per_round, dp_config.tick_seconds);
  dataplane::DataplaneSim sim(topology, demands.size(), dp_config);
  const dataplane::RoundResult result = sim.run_round(assignment, timeline);

  std::vector<double> volumes;
  for (const te::Demand& demand : demands)
    volumes.push_back(demand.volume.value);
  const demand::RoutingMatrix matrix =
      demand::build_routing_matrix(topology.edge_count(), demands, assignment);

  const std::vector<demand::DataplaneLinkObservation> observations =
      dataplane::counter_observations(result, matrix, volumes);
  std::size_t reconciled = 0;
  for (const demand::DataplaneLinkObservation& obs : observations)
    reconciled += obs.reconcilable ? 1 : 0;
  EXPECT_EQ(reconciled, observations.size())
      << "a clean measured round must reconcile every link";

  demand::DemandConfig demand_config;
  const demand::CounterSet set = demand::counters_from_observations(
      matrix, volumes, observations, demand_config.interval_seconds, 1);
  // Byte-for-byte the zero-noise synthetic stream (the estimator's
  // record/replay substrate, so the log composes with both sources).
  const demand::CounterSet synthetic =
      demand::synthesize_counters(matrix, volumes, {}, demand_config, 1);
  ASSERT_EQ(set.samples.size(), synthetic.samples.size());
  for (std::size_t i = 0; i < set.samples.size(); ++i)
    EXPECT_EQ(set.samples[i], synthetic.samples[i]) << "link " << i;

  demand::CounterLog log(4);
  log.append(set);
  ASSERT_EQ(log.size(), 1u);

  const demand::EstimateResult estimate = demand::estimate_od_volumes(
      matrix, log.at(0), volumes, {}, demand_config);
  EXPECT_TRUE(estimate.stats.exact)
      << "exact-recovery certificate must fire on reconciled counters";
  ASSERT_EQ(estimate.volumes.size(), volumes.size());
  for (std::size_t j = 0; j < volumes.size(); ++j)
    EXPECT_EQ(estimate.volumes[j], volumes[j]) << "od " << j;
}

// A mid-measurement downshift breaks reconciliation on the affected
// links: the source degrades to raw measured counters instead of lying
// with the analytic model.
TEST(DataplaneDifferential, CongestedRoundDoesNotReconcile) {
  util::Rng topo_rng = util::Rng::stream(41, 810);
  const graph::Graph topology = sim::waxman(8, topo_rng);
  util::Rng demand_rng = util::Rng::stream(41, 811);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{topology.total_capacity().value * 0.4};
  te::TrafficMatrix demands =
      sim::gravity_matrix(topology, gravity, demand_rng);

  const te::McfTe engine;
  core::DynamicCapacityController controller(
      topology, optical::ModulationTable::standard(), engine, {});
  const std::vector<util::Db> snr(topology.edge_count(), util::Db{20.0});
  controller.run_round(snr, demands);
  const te::FlowAssignment& assignment = controller.last_assignment();

  const std::span<const util::Gbps> configured =
      controller.configured_capacities();
  const std::vector<util::Gbps> caps(configured.begin(), configured.end());
  dataplane::DataplaneConfig dp_config;
  dataplane::CapacityTimeline timeline = dataplane::build_timeline(
      caps, caps, nullptr, dp_config.ticks_per_round, dp_config.tick_seconds);
  const std::vector<double>& load = assignment.edge_load_gbps;
  std::size_t busiest = 0;
  for (std::size_t e = 1; e < load.size(); ++e)
    if (load[e] > load[busiest]) busiest = e;
  ASSERT_GT(load[busiest], 0.0);
  timeline.add_event(
      busiest,
      static_cast<std::uint32_t>(dp_config.ticks_per_round * 3 / 4),
      load[busiest] * 0.25);

  dataplane::DataplaneSim sim(topology, demands.size(), dp_config);
  const dataplane::RoundResult result = sim.run_round(assignment, timeline);

  std::vector<double> volumes;
  for (const te::Demand& demand : demands)
    volumes.push_back(demand.volume.value);
  const demand::RoutingMatrix matrix =
      demand::build_routing_matrix(topology.edge_count(), demands, assignment);
  const std::vector<demand::DataplaneLinkObservation> observations =
      dataplane::counter_observations(result, matrix, volumes);
  EXPECT_FALSE(observations[busiest].reconcilable)
      << "the downshifted link must not reconcile";
  // The degraded export still feeds the estimator without tripping it.
  demand::DemandConfig demand_config;
  const demand::CounterSet set = demand::counters_from_observations(
      matrix, volumes, observations, demand_config.interval_seconds, 1);
  const demand::EstimateResult estimate = demand::estimate_od_volumes(
      matrix, set, volumes, {}, demand_config);
  for (const double volume : estimate.volumes) {
    EXPECT_TRUE(std::isfinite(volume));
    EXPECT_GE(volume, 0.0);
  }
}

}  // namespace
}  // namespace rwc
