// Cross-thread stress for the observability layer: instruments record from
// many pool workers at once, registry lookups race with recordings, and the
// per-thread span stack keeps nesting paths isolated between threads.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace rwc::obs {
namespace {

TEST(ObsConcurrent, CountersSumExactlyUnderContention) {
  auto& counter = Registry::global().counter("test.obs.stress.counter");
  const std::uint64_t before = counter.value();
  exec::ThreadPool pool(8);
  constexpr std::size_t kIncrements = 20000;
  exec::parallel_for(pool, kIncrements, [&](std::size_t) { counter.add(); });
  EXPECT_EQ(counter.value(), before + kIncrements);
}

TEST(ObsConcurrent, HistogramCountAndSumStayConsistent) {
  auto& histogram =
      Registry::global().histogram("test.obs.stress.histogram");
  const std::uint64_t count_before = histogram.count();
  const double sum_before = histogram.sum();
  exec::ThreadPool pool(8);
  constexpr std::size_t kObservations = 10000;
  exec::parallel_for(pool, kObservations,
                     [&](std::size_t) { histogram.observe(1.0); });
  EXPECT_EQ(histogram.count(), count_before + kObservations);
  EXPECT_NEAR(histogram.sum(), sum_before + static_cast<double>(kObservations),
              1e-6);
}

TEST(ObsConcurrent, RegistryLookupsRaceSafelyWithRecordings) {
  // Concurrent first-time registrations of distinct names, repeated lookups
  // of one shared name, and recordings — all through the same registry.
  exec::ThreadPool pool(8);
  auto& shared = Registry::global().counter("test.obs.stress.shared");
  const std::uint64_t before = shared.value();
  exec::parallel_for(pool, 512, [&](std::size_t i) {
    auto& unique = Registry::global().counter(
        "test.obs.stress.unique." + std::to_string(i % 64));
    unique.add();
    Registry::global().counter("test.obs.stress.shared").add();
  });
  EXPECT_EQ(shared.value(), before + 512);
  std::uint64_t unique_total = 0;
  for (int i = 0; i < 64; ++i)
    unique_total += Registry::global()
                        .counter("test.obs.stress.unique." +
                                 std::to_string(i))
                        .value();
  EXPECT_EQ(unique_total, 512u);
}

TEST(ObsConcurrent, SpanStacksAreThreadLocal) {
  // Each worker nests its own spans; the dotted path must reflect only the
  // worker's own stack, never a sibling thread's. A cross-thread leak would
  // produce paths like "a.a" or mismatched accumulations.
  exec::ThreadPool pool(8);
  std::atomic<int> bad_paths{0};
  exec::parallel_for(pool, 256, [&](std::size_t i) {
    const std::string outer_name =
        "test.span.t" + std::to_string(i % 8);
    double outer_seconds = 0.0;
    {
      Span outer(outer_name, &outer_seconds);
      if (outer.path() != outer_name) ++bad_paths;
      Span inner("leaf");
      if (inner.path() != outer_name + ".leaf") ++bad_paths;
    }
    if (outer_seconds <= 0.0) ++bad_paths;
  });
  EXPECT_EQ(bad_paths.load(), 0);
}

}  // namespace
}  // namespace rwc::obs
