// graph::PathCache: cached k-shortest-path results must equal direct
// computation, invalidate correctly, and stay bounded.
#include <gtest/gtest.h>

#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "fault/plan.hpp"
#include "fault/registry.hpp"
#include "graph/graph.hpp"
#include "graph/ksp.hpp"
#include "graph/path_cache.hpp"
#include "obs/registry.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc::graph {
namespace {

Graph make_graph(std::uint64_t seed, int nodes = 12) {
  util::Rng rng = util::Rng::stream(seed, 0);
  return rwc::sim::waxman(nodes, rng);
}

void expect_same_paths(const std::vector<Path>& a,
                       const std::vector<Path>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edges, b[i].edges);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

TEST(PathCache, HitReturnsExactlyTheDirectResult) {
  const Graph g = make_graph(1);
  PathCache cache;
  const NodeId src{0};
  const NodeId dst{11};
  const auto direct = k_shortest_paths(g, src, dst, 4);
  const auto miss = cache.k_shortest(g, src, dst, 4);  // computes
  const auto hit = cache.k_shortest(g, src, dst, 4);   // cached
  expect_same_paths(direct, miss);
  expect_same_paths(direct, hit);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PathCache, DistinguishesQueryAndGraph) {
  const Graph a = make_graph(1);
  const Graph b = make_graph(2);
  PathCache cache;
  cache.k_shortest(a, NodeId{0}, NodeId{11}, 4);
  cache.k_shortest(a, NodeId{0}, NodeId{11}, 2);  // different k
  cache.k_shortest(a, NodeId{1}, NodeId{11}, 4);  // different source
  cache.k_shortest(b, NodeId{0}, NodeId{11}, 4);  // different graph
  EXPECT_EQ(cache.size(), 4u);
  expect_same_paths(cache.k_shortest(b, NodeId{0}, NodeId{11}, 4),
                    k_shortest_paths(b, NodeId{0}, NodeId{11}, 4));
}

TEST(PathCache, WeightFingerprintIgnoresCapacityOnly) {
  Graph g = make_graph(3);
  const std::uint64_t base = PathCache::weight_fingerprint(g);
  g.edge(EdgeId{0}).capacity = util::Gbps{12345.0};
  EXPECT_EQ(PathCache::weight_fingerprint(g), base)
      << "capacity must not affect the routing fingerprint";
  g.edge(EdgeId{0}).weight += 1.0;
  EXPECT_NE(PathCache::weight_fingerprint(g), base);
}

TEST(PathCache, TopologyChangeDropsEverything) {
  const Graph g = make_graph(4);
  PathCache cache;
  cache.k_shortest(g, NodeId{0}, NodeId{11}, 4);
  cache.k_shortest(g, NodeId{1}, NodeId{11}, 4);
  const std::uint64_t version = cache.version();
  cache.note_topology_change();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.version(), version + 1);
}

TEST(PathCache, CapacityChangeDropsOnlyTraversingEntries) {
  const Graph g = make_graph(5);
  PathCache cache;
  const auto paths = cache.k_shortest(g, NodeId{0}, NodeId{11}, 2);
  ASSERT_FALSE(paths.empty());
  ASSERT_FALSE(paths.front().edges.empty());
  const EdgeId used = paths.front().edges.front();

  // A second entry that cannot traverse `used`: find an edge absent from
  // every cached path of some other query.
  cache.k_shortest(g, NodeId{1}, NodeId{2}, 1);
  const std::size_t before = cache.size();

  cache.note_capacity_change(PathCache::weight_fingerprint(g), used);
  EXPECT_LT(cache.size(), before);

  // Recomputation after invalidation still matches direct results.
  expect_same_paths(cache.k_shortest(g, NodeId{0}, NodeId{11}, 2),
                    k_shortest_paths(g, NodeId{0}, NodeId{11}, 2));
}

TEST(PathCache, EvictsOldestBeyondCapacity) {
  const Graph g = make_graph(6);
  PathCache cache(2);
  cache.k_shortest(g, NodeId{0}, NodeId{11}, 1);
  cache.k_shortest(g, NodeId{1}, NodeId{11}, 1);
  cache.k_shortest(g, NodeId{2}, NodeId{11}, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PathCache, ForcedInvalidationUnderConcurrentRoundsStaysCorrect) {
  // The cache.path.lookup fault site force-invalidates entries mid-round
  // while concurrent solvers query the shared cache. The contract
  // (docs/FAULTS.md): an invalidation changes timing only — every query
  // still returns exactly the direct Yen result.
  const Graph g = make_graph(9, 14);
  PathCache cache;
  std::vector<std::vector<Path>> direct;
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (std::int32_t src = 0; src < 6; ++src)
    for (std::int32_t dst = 8; dst < 14; ++dst) {
      queries.emplace_back(NodeId{src}, NodeId{dst});
      direct.push_back(k_shortest_paths(g, NodeId{src}, NodeId{dst}, 3));
    }

  static auto& invalidations =
      rwc::obs::Registry::global().counter("cache.path.invalidations");
  const std::uint64_t invalidations_before = invalidations.value();
  rwc::fault::ScopedPlan armed(
      rwc::fault::FaultPlan::parse("cache.path.lookup%3@0:invalidate"));
  rwc::exec::ThreadPool pool(8);
  for (int round = 0; round < 4; ++round) {
    const auto results = rwc::exec::parallel_map(
        pool, queries.size(), [&](std::size_t i) {
          return cache.k_shortest(g, queries[i].first, queries[i].second, 3);
        });
    for (std::size_t i = 0; i < queries.size(); ++i)
      expect_same_paths(results[i], direct[i]);
  }
  // Vacuity guard: the schedule must actually have invalidated entries.
  EXPECT_GT(invalidations.value(), invalidations_before);
}

TEST(SwanPathCache, CachedEngineMatchesUncachedEngine) {
  const Graph g = make_graph(7);
  util::Rng rng = util::Rng::stream(7, 1);
  rwc::sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 3.0};
  gravity.sparsity = 0.9;
  const auto demands = rwc::sim::gravity_matrix(g, gravity, rng);

  rwc::te::SwanTe::Options uncached_options;
  uncached_options.use_path_cache = false;
  const rwc::te::SwanTe uncached(uncached_options);
  const rwc::te::SwanTe cached;  // use_path_cache defaults on

  const auto expected = uncached.solve(g, demands);
  for (int round = 0; round < 3; ++round) {
    const auto got = cached.solve(g, demands);
    ASSERT_EQ(got.total_routed.value, expected.total_routed.value);
    ASSERT_EQ(got.total_cost, expected.total_cost);
    ASSERT_EQ(got.edge_load_gbps, expected.edge_load_gbps);
  }
}

}  // namespace
}  // namespace rwc::graph
