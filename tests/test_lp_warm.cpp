// LP warm starts (docs/SOLVERS.md): a solve through an LpWarmCache must be
// bit-identical to a cold solve on every path — exact-fingerprint memo,
// verified pivot replay across an rhs-only perturbation, and rollback to a
// cold solve when the ratio test diverges.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "lp/simplex.hpp"
#include "obs/registry.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc::lp {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

void expect_bit_identical(const LpSolution& a, const LpSolution& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.values, b.values);
}

/// A small allocation LP with >= rows (phase-1 + artificials), an equality,
/// and a finite upper bound — every structural feature the solver lowers.
LpProblem make_lp(double cap_x, double cap_shared, double floor_y) {
  LpProblem p(Sense::kMaximize);
  const int x = p.add_variable(3.0, 15.0);
  const int y = p.add_variable(2.0);
  const int z = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}}, Relation::kLessEqual, cap_x);
  p.add_constraint({{x, 1.0}, {y, 1.0}, {z, 1.0}}, Relation::kLessEqual,
                   cap_shared);
  p.add_constraint({{y, 1.0}}, Relation::kGreaterEqual, floor_y);
  p.add_constraint({{y, 1.0}, {z, -1.0}}, Relation::kEqual, 2.0);
  return p;
}

TEST(LpFingerprints, StructuralIgnoresRhsMagnitudesOnly) {
  const auto base = make_lp(5.0, 20.0, 3.0).fingerprints();
  // rhs-only perturbation: structural equal, exact differs.
  const auto perturbed = make_lp(4.0, 18.0, 2.5).fingerprints();
  EXPECT_EQ(base.structural, perturbed.structural);
  EXPECT_NE(base.exact, perturbed.exact);

  // An rhs SIGN flip is structural (the row is normalized differently).
  const auto flipped = make_lp(5.0, 20.0, -3.0).fingerprints();
  EXPECT_NE(base.structural, flipped.structural);

  // Coefficients, relations, sense, bounds: all structural.
  LpProblem coeff = make_lp(5.0, 20.0, 3.0);
  coeff.add_constraint({{0, 2.0}}, Relation::kLessEqual, 100.0);
  EXPECT_NE(coeff.fingerprints().structural, base.structural);
  LpProblem sense = make_lp(5.0, 20.0, 3.0);
  sense.set_sense(Sense::kMinimize);
  EXPECT_NE(sense.fingerprints().structural, base.structural);
}

TEST(LpWarm, MemoReturnsRecordedSolutionBitwise) {
  LpWarmCache cache;
  LpProblem p = make_lp(5.0, 20.0, 3.0);
  const LpSolution cold = p.solve();
  ASSERT_TRUE(cold.optimal());

  const LpSolution first = p.solve(&cache);
  expect_bit_identical(cold, first);

  const std::uint64_t memo_before = counter_value("lp.basis_reuse_memo_hits");
  const LpSolution memo = p.solve(&cache);
  expect_bit_identical(cold, memo);
  EXPECT_EQ(counter_value("lp.basis_reuse_memo_hits"), memo_before + 1);
}

TEST(LpWarm, RhsPerturbedReplayMatchesColdBitwise) {
  LpWarmCache cache;
  (void)make_lp(5.0, 20.0, 3.0).solve(&cache);  // record

  // Sweep rhs perturbations, small and large; every warm result must be
  // bit-identical to a cold solve of the same problem, whether it came
  // from a verified replay or a rollback-and-resolve.
  const double caps_x[] = {4.5, 5.5, 6.0, 1.0};
  const double caps_shared[] = {19.0, 21.0, 10.0, 30.0};
  const double floors_y[] = {2.0, 3.5, 0.5, 8.0};
  const std::uint64_t activity_before =
      counter_value("lp.basis_reuse_hits") +
      counter_value("lp.basis_reuse_rollbacks");
  for (double cx : caps_x)
    for (double cs : caps_shared)
      for (double fy : floors_y) {
        LpProblem p = make_lp(cx, cs, fy);
        const LpSolution cold = p.solve();
        const LpSolution warm = p.solve(&cache);
        expect_bit_identical(cold, warm);
      }
  EXPECT_GT(counter_value("lp.basis_reuse_hits") +
                counter_value("lp.basis_reuse_rollbacks"),
            activity_before);
}

TEST(LpWarm, InfeasiblePerturbationMatchesCold) {
  LpWarmCache cache;
  (void)make_lp(5.0, 20.0, 3.0).solve(&cache);  // record a feasible solve

  // floor_y above cap_shared: no feasible point, same rhs signs. The warm
  // solve must report kInfeasible exactly like the cold one (whether the
  // replay's phase-1 feasibility recheck caught it or a rollback re-solved
  // cold), and must not poison the cache for later feasible rounds.
  LpProblem infeasible = make_lp(5.0, 4.0, 6.0);
  const LpSolution cold = infeasible.solve();
  ASSERT_EQ(cold.status, LpStatus::kInfeasible);
  const LpSolution warm = infeasible.solve(&cache);
  expect_bit_identical(cold, warm);

  LpProblem feasible = make_lp(5.0, 21.0, 3.0);
  expect_bit_identical(feasible.solve(), feasible.solve(&cache));
}

TEST(LpWarm, StructureChangeMissesAndRerecords) {
  LpWarmCache cache;
  (void)make_lp(5.0, 20.0, 3.0).solve(&cache);

  LpProblem different = make_lp(5.0, 20.0, 3.0);
  different.add_constraint({{2, 1.0}}, Relation::kLessEqual, 7.0);
  const std::uint64_t misses_before = counter_value("lp.basis_reuse_misses");
  const LpSolution cold = different.solve();
  const LpSolution warm = different.solve(&cache);
  expect_bit_identical(cold, warm);
  EXPECT_EQ(counter_value("lp.basis_reuse_misses"), misses_before + 1);
  EXPECT_EQ(cache.size(), 2u);  // the new structure was recorded too
}

TEST(LpWarm, RandomizedPerturbationSweepStaysBitIdentical) {
  // Heavier adversarial sweep: random LPs, then random rhs perturbations
  // of each, all solved warm against a shared cache and compared to cold.
  util::Rng rng(2024);
  LpWarmCache cache;
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform(0.0, 3.0));
    const int m = 2 + static_cast<int>(rng.uniform(0.0, 4.0));
    std::vector<double> rhs_base(static_cast<std::size_t>(m));
    LpProblem base(trial % 2 == 0 ? Sense::kMaximize : Sense::kMinimize);
    std::vector<std::vector<Term>> rows;
    for (int v = 0; v < n; ++v)
      base.add_variable(rng.uniform(0.5, 3.0),
                        rng.bernoulli(0.3)
                            ? rng.uniform(5.0, 15.0)
                            : std::numeric_limits<double>::infinity());
    for (int r = 0; r < m; ++r) {
      std::vector<Term> terms;
      for (int v = 0; v < n; ++v)
        if (rng.bernoulli(0.7)) terms.push_back({v, rng.uniform(0.5, 2.0)});
      if (terms.empty()) terms.push_back({0, 1.0});
      rows.push_back(terms);
      rhs_base[static_cast<std::size_t>(r)] = rng.uniform(2.0, 25.0);
      base.add_constraint(std::move(terms),
                          r % 3 == 2 ? Relation::kGreaterEqual
                                     : Relation::kLessEqual,
                          rhs_base[static_cast<std::size_t>(r)]);
    }
    (void)base.solve(&cache);  // record (if optimal)

    for (int round = 0; round < 4; ++round) {
      LpProblem p(trial % 2 == 0 ? Sense::kMaximize : Sense::kMinimize);
      for (int v = 0; v < n; ++v)
        p.add_variable(base.objective_coefficient(v), base.upper_bound(v));
      for (int r = 0; r < m; ++r)
        p.add_constraint(rows[static_cast<std::size_t>(r)],
                         r % 3 == 2 ? Relation::kGreaterEqual
                                    : Relation::kLessEqual,
                         rhs_base[static_cast<std::size_t>(r)] *
                             rng.uniform(0.7, 1.3));
      const LpSolution cold = p.solve();
      const LpSolution warm = p.solve(&cache);
      expect_bit_identical(cold, warm);
    }
  }
}

TEST(LpWarmCacheUnit, StoresFindsAndEvictsFifo) {
  LpWarmCache cache(2);
  auto make = [](std::uint64_t exact, std::uint64_t structural) {
    auto rec = std::make_shared<PivotRecording>();
    rec->exact_fingerprint = exact;
    rec->structural_fingerprint = structural;
    return rec;
  };
  cache.store(make(1, 100));
  cache.store(make(2, 200));
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.find(100), nullptr);

  // Latest recording wins per structure without consuming a FIFO slot.
  cache.store(make(9, 100));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(100)->exact_fingerprint, 9u);

  cache.store(make(3, 300));  // evicts structure 100 (oldest insertion)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(100), nullptr);
  ASSERT_NE(cache.find(200), nullptr);
  ASSERT_NE(cache.find(300), nullptr);
}

TEST(SwanTeWarm, PerturbedRoundMatchesEngineWithoutWarmBasis) {
  // End-to-end through SWAN: across a capacity perturbation the LPs are
  // rhs-only perturbations of round 1's, so the warm-basis engine must
  // engage the replay tier and still route identically to an engine with
  // warm starts disabled.
  util::Rng topo_rng = util::Rng::stream(31, 0);
  const graph::Graph base = sim::waxman(12, topo_rng);
  util::Rng demand_rng = util::Rng::stream(31, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{base.total_capacity().value / 3.0};
  gravity.sparsity = 0.8;
  const te::TrafficMatrix demands =
      sim::gravity_matrix(base, gravity, demand_rng);

  graph::Graph perturbed;
  for (graph::NodeId node : base.node_ids())
    perturbed.add_node(base.node_name(node));
  for (graph::EdgeId edge : base.edge_ids()) {
    const graph::Edge& e = base.edge(edge);
    const util::Gbps capacity =
        edge.value == 0 ? util::Gbps{e.capacity.value * 0.8} : e.capacity;
    perturbed.add_edge(e.src, e.dst, capacity, e.cost, e.weight);
  }

  te::SwanTe::Options cold_options;
  cold_options.warm_basis = false;
  const te::SwanTe cold_engine(cold_options);
  const te::SwanTe warm_engine;  // warm_basis defaults on

  (void)cold_engine.solve(base, demands);
  (void)warm_engine.solve(base, demands);

  const std::uint64_t activity_before =
      counter_value("lp.basis_reuse_hits") +
      counter_value("lp.basis_reuse_memo_hits") +
      counter_value("lp.basis_reuse_rollbacks");
  const auto cold = cold_engine.solve(perturbed, demands);
  const auto warm = warm_engine.solve(perturbed, demands);
  EXPECT_GT(counter_value("lp.basis_reuse_hits") +
                counter_value("lp.basis_reuse_memo_hits") +
                counter_value("lp.basis_reuse_rollbacks"),
            activity_before);

  ASSERT_EQ(warm.total_routed.value, cold.total_routed.value);
  ASSERT_EQ(warm.edge_load_gbps, cold.edge_load_gbps);
  ASSERT_EQ(warm.routings.size(), cold.routings.size());
  for (std::size_t d = 0; d < warm.routings.size(); ++d) {
    ASSERT_EQ(warm.routings[d].paths.size(), cold.routings[d].paths.size());
    for (std::size_t p = 0; p < warm.routings[d].paths.size(); ++p) {
      EXPECT_EQ(warm.routings[d].paths[p].second.value,
                cold.routings[d].paths[p].second.value);
      EXPECT_EQ(warm.routings[d].paths[p].first.edges,
                cold.routings[d].paths[p].first.edges);
    }
  }
}

}  // namespace
}  // namespace rwc::lp
