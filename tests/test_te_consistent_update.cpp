// Tests for the consistent-update transition planner (Section 4.2 (ii)).
#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "sim/topology.hpp"
#include "te/consistent_update.hpp"

namespace rwc::te {
namespace {

using util::Gbps;
using namespace util::literals;

FlowAssignment assignment_on_path(const graph::Graph& g,
                                  const std::string& src,
                                  const std::string& dst,
                                  const graph::Path& path, Gbps volume) {
  FlowAssignment a;
  FlowAssignment::DemandRouting routing;
  routing.demand = Demand{*g.find_node(src), *g.find_node(dst), volume, 0};
  routing.paths.emplace_back(path, volume);
  a.routings.push_back(std::move(routing));
  finalize_assignment(g, a);
  return a;
}

TEST(ConsistentUpdate, EmptyTransitionHasNoSteps) {
  graph::Graph g = sim::fig7_square();
  const auto a = assignment_on_path(
      g, "A", "B",
      graph::shortest_path(g, *g.find_node("A"), *g.find_node("B")),
      50_Gbps);
  const auto plan = plan_transition(g, a, a);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_TRUE(validate_transition(g, a, plan));
}

TEST(ConsistentUpdate, RemovalsPrecedeAdditions) {
  graph::Graph g = sim::fig7_square();
  const auto nA = *g.find_node("A");
  const auto nB = *g.find_node("B");
  const graph::Path direct = graph::shortest_path(g, nA, nB);
  // Indirect path A-C-D-B.
  graph::Path indirect;
  indirect.edges = {*g.find_edge(nA, *g.find_node("C")),
                    *g.find_edge(*g.find_node("C"), *g.find_node("D")),
                    *g.find_edge(*g.find_node("D"), nB)};
  const auto before = assignment_on_path(g, "A", "B", direct, 80_Gbps);
  const auto after = assignment_on_path(g, "A", "B", indirect, 80_Gbps);
  const auto plan = plan_transition(g, before, after);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].kind, UpdateStep::Kind::kRemove);
  EXPECT_EQ(plan.steps[1].kind, UpdateStep::Kind::kAdd);
  EXPECT_TRUE(validate_transition(g, before, plan));
}

TEST(ConsistentUpdate, VolumeDeltaOnSamePath) {
  graph::Graph g = sim::fig7_square();
  const graph::Path direct =
      graph::shortest_path(g, *g.find_node("A"), *g.find_node("B"));
  const auto before = assignment_on_path(g, "A", "B", direct, 80_Gbps);
  const auto after = assignment_on_path(g, "A", "B", direct, 30_Gbps);
  const auto plan = plan_transition(g, before, after);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].kind, UpdateStep::Kind::kRemove);
  EXPECT_NEAR(plan.steps[0].volume.value, 50.0, 1e-9);
  EXPECT_TRUE(validate_transition(g, before, plan));
}

TEST(ConsistentUpdate, DetectsOverloadWhenCapacityShrinks) {
  graph::Graph g = sim::fig7_square();
  const graph::Path direct =
      graph::shortest_path(g, *g.find_node("A"), *g.find_node("B"));
  const auto before = assignment_on_path(g, "A", "B", direct, 80_Gbps);
  const auto after = assignment_on_path(g, "A", "B", direct, 80_Gbps);
  // The A-B link flaps down to 50 G: the old state itself violates it.
  graph::Graph shrunk = g;
  shrunk.edge(direct.edges[0]).capacity = 50_Gbps;
  const auto plan = plan_transition(shrunk, before, after);
  std::string violation;
  EXPECT_FALSE(validate_transition(shrunk, before, plan, &violation));
  EXPECT_NE(violation.find("overloaded"), std::string::npos);
}

TEST(ConsistentUpdate, PeakLoadTracksIntermediateStates) {
  graph::Graph g = sim::fig7_square();
  const auto nA = *g.find_node("A");
  const auto nB = *g.find_node("B");
  const graph::Path direct = graph::shortest_path(g, nA, nB);
  const auto before = assignment_on_path(g, "A", "B", direct, 60_Gbps);
  const auto after = assignment_on_path(g, "A", "B", direct, 90_Gbps);
  const auto plan = plan_transition(g, before, after);
  const auto ab = direct.edges[0];
  EXPECT_NEAR(
      plan.peak_edge_load_gbps[static_cast<std::size_t>(ab.value)], 90.0,
      1e-9);
  EXPECT_TRUE(validate_transition(g, before, plan));
}

TEST(ConsistentUpdate, MultiDemandSwapStaysFeasible) {
  // Two demands swap their paths; the remove-then-add order keeps every
  // intermediate state under capacity.
  graph::Graph g = sim::fig7_square();
  const auto nA = *g.find_node("A");
  const auto nB = *g.find_node("B");
  const auto nC = *g.find_node("C");
  const auto nD = *g.find_node("D");
  graph::Path top;
  top.edges = {*g.find_edge(nA, nB)};
  graph::Path around;
  around.edges = {*g.find_edge(nA, nC), *g.find_edge(nC, nD),
                  *g.find_edge(nD, nB)};

  auto build = [&](const graph::Path& p0, const graph::Path& p1) {
    FlowAssignment a;
    FlowAssignment::DemandRouting r0;
    r0.demand = Demand{nA, nB, 70_Gbps, 0};
    r0.paths.emplace_back(p0, 70_Gbps);
    FlowAssignment::DemandRouting r1;
    r1.demand = Demand{nA, nB, 70_Gbps, 0};
    r1.paths.emplace_back(p1, 70_Gbps);
    a.routings.push_back(std::move(r0));
    a.routings.push_back(std::move(r1));
    finalize_assignment(g, a);
    return a;
  };
  const auto before = build(top, around);
  const auto after = build(around, top);
  const auto plan = plan_transition(g, before, after);
  EXPECT_EQ(plan.steps.size(), 4u);
  EXPECT_TRUE(validate_transition(g, before, plan));
}

}  // namespace
}  // namespace rwc::te
