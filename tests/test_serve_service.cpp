// Tests for the serve control-plane state machine (serve/service.hpp):
// ingest backpressure and sanitization, epoch publication, determinism
// over the recorded log, and checkpoint/restore round-trips. Concurrent
// stress lives in tests/serve/ (tier2).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "exec/rcu.hpp"
#include "fault/registry.hpp"
#include "serve/service.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace rwc::serve {
namespace {

struct Fixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  te::McfTe engine;

  Fixture() {
    util::Rng topo_rng = util::Rng::stream(99, 0);
    topology = sim::waxman(8, topo_rng);
    util::Rng demand_rng = util::Rng::stream(99, 1);
    sim::GravityParams gravity;
    gravity.total = util::Gbps{topology.total_capacity().value * 0.3};
    demands = sim::gravity_matrix(topology, gravity, demand_rng);
  }

  ServeService make(ServeConfig config = ServeConfig{}) const {
    return ServeService(topology, engine, demands, config);
  }
};

TEST(ServeIngest, BoundedQueueShedsOldestByDefault) {
  IngestQueue queue(/*capacity=*/3, ShedPolicy::kDropOldest);
  for (std::uint32_t i = 0; i < 5; ++i)
    EXPECT_TRUE(queue.offer({IngestType::kSnr, i, 10.0}));
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.dropped(), 2u);
  const std::vector<IngestEvent> drained = queue.drain();
  ASSERT_EQ(drained.size(), 3u);
  // Oldest two were evicted: indices 2, 3, 4 remain in FIFO order.
  EXPECT_EQ(drained[0].index, 2u);
  EXPECT_EQ(drained[2].index, 4u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ServeIngest, DropNewestRejectsTheIncomingEvent) {
  IngestQueue queue(/*capacity=*/2, ShedPolicy::kDropNewest);
  EXPECT_TRUE(queue.offer({IngestType::kSnr, 0, 10.0}));
  EXPECT_TRUE(queue.offer({IngestType::kSnr, 1, 10.0}));
  EXPECT_FALSE(queue.offer({IngestType::kSnr, 2, 10.0}));
  const std::vector<IngestEvent> drained = queue.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[1].index, 1u);
}

TEST(ServeService, StepPublishesConsistentMonotoneEpochs) {
  const Fixture fixture;
  ServeService service = fixture.make();
  exec::RcuReader reader(service.rcu_domain());
  {
    exec::RcuGuard<PlanEpoch> before(service.epoch_cell(), reader);
    EXPECT_FALSE(before);  // nothing published yet
  }
  service.step();
  service.queue().offer({IngestType::kSnr, 0, 6.0});
  service.step();
  exec::RcuGuard<PlanEpoch> epoch(service.epoch_cell(), reader);
  ASSERT_TRUE(epoch);
  EXPECT_EQ(epoch->epoch, 2u);
  EXPECT_EQ(epoch->round, 1u);
  EXPECT_TRUE(epoch->consistent());
  EXPECT_EQ(epoch->capacity_gbps.size(), fixture.topology.edge_count());
  EXPECT_EQ(epoch->signature_chain, service.signature_chain());
}

TEST(ServeService, SanitizationClampsGarbageAndKeepsStateOnNan) {
  const Fixture fixture;
  ServeService service = fixture.make();
  const double before = service.link_snr()[1].value;
  service.queue().offer(
      {IngestType::kSnr, 1, std::numeric_limits<double>::quiet_NaN()});
  service.queue().offer({IngestType::kSnr, 2, 1.0e12});
  service.queue().offer({IngestType::kSnr, 3, -500.0});
  service.queue().offer({IngestType::kDemand, 0, -8.0});
  // Unroutable index: deterministically ignored, never UB.
  service.queue().offer({IngestType::kSnr, 1u << 30, 12.0});
  service.step();
  EXPECT_EQ(service.link_snr()[1].value, before);  // NaN carried nothing
  EXPECT_EQ(service.link_snr()[2].value, 40.0);    // clamped to ceiling
  EXPECT_EQ(service.link_snr()[3].value, -10.0);   // clamped to floor
  EXPECT_EQ(service.demands()[0].volume.value, 0.0);
}

TEST(ServeService, ReplayingTheRecordedLogReproducesTheChain) {
  const Fixture fixture;
  ServeService live = fixture.make();
  util::Rng rng = util::Rng::stream(7, 0);
  for (int round = 0; round < 6; ++round) {
    const int events = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < events; ++i)
      live.queue().offer(
          {IngestType::kSnr,
           static_cast<std::uint32_t>(rng.uniform_int(
               0, static_cast<std::int64_t>(
                      fixture.topology.edge_count()) - 1)),
           rng.uniform(4.0, 20.0)});
    live.step();
  }

  ServeService replayed = fixture.make();
  for (std::size_t round = 0; round < live.log().rounds(); ++round)
    replayed.step(live.log().batch(round));
  EXPECT_EQ(replayed.round(), live.round());
  EXPECT_EQ(replayed.signature_chain(), live.signature_chain());
  // The replayed service's own log must equal the live log (a second-order
  // replay would reproduce again).
  EXPECT_EQ(replayed.log().batches(), live.log().batches());
}

TEST(ServeService, FaultedIngestIsAbsorbedByTheLogContract) {
  const Fixture fixture;
  ServeService live = fixture.make();
  {
    // Drop every third offer and corrupt one: the log only ever holds what
    // the service consumed, so a fault-free replay still matches.
    fault::ScopedPlan plan(fault::FaultPlan::parse(
        "serve.ingest%3@0:drop;serve.ingest%5@1:garbage"));
    for (std::uint32_t i = 0; i < 12; ++i)
      live.queue().offer({IngestType::kSnr, i % 4, 8.0 + i});
    live.step();
    live.step();
  }
  ServeService replayed = fixture.make();
  for (std::size_t round = 0; round < live.log().rounds(); ++round)
    replayed.step(live.log().batch(round));
  EXPECT_EQ(replayed.signature_chain(), live.signature_chain());
}

TEST(ServeService, CheckpointRestoreContinuesBitIdentically) {
  const Fixture fixture;
  ServeService reference = fixture.make();
  ServeService restored = fixture.make();

  auto batch_for = [&](std::uint64_t round) {
    std::vector<IngestEvent> batch;
    util::Rng round_rng = util::Rng::stream(11, 100 + round);
    const int events = static_cast<int>(round_rng.uniform_int(1, 3));
    for (int i = 0; i < events; ++i)
      batch.push_back(
          {IngestType::kSnr,
           static_cast<std::uint32_t>(round_rng.uniform_int(
               0, static_cast<std::int64_t>(
                      fixture.topology.edge_count()) - 1)),
           round_rng.uniform(4.0, 20.0)});
    return batch;
  };

  for (std::uint64_t round = 0; round < 4; ++round)
    reference.step(batch_for(round));
  const replay::Checkpoint checkpoint = reference.checkpoint();
  for (std::uint64_t round = 4; round < 8; ++round)
    reference.step(batch_for(round));

  ASSERT_EQ(restored.restore(checkpoint), replay::Error::kNone);
  EXPECT_EQ(restored.round(), 4u);
  for (std::uint64_t round = 4; round < 8; ++round)
    restored.step(batch_for(round));
  EXPECT_EQ(restored.signature_chain(), reference.signature_chain());
  EXPECT_EQ(restored.epochs_published(), reference.epochs_published());
}

TEST(ServeService, CheckpointSurvivesTheWireFormat) {
  const Fixture fixture;
  ServeService service = fixture.make();
  service.queue().offer({IngestType::kSnr, 0, 9.5});
  service.step();
  service.step();

  const replay::Checkpoint checkpoint = service.checkpoint();
  const std::vector<std::byte> bytes = replay::encode(checkpoint);
  replay::Checkpoint decoded;
  ASSERT_EQ(replay::decode(bytes, decoded), replay::Error::kNone);
  EXPECT_TRUE(decoded.serve_present);
  EXPECT_EQ(decoded.serve_payload, checkpoint.serve_payload);

  ServeService restored = fixture.make();
  ASSERT_EQ(restored.restore(decoded), replay::Error::kNone);
  EXPECT_EQ(restored.round(), service.round());
  EXPECT_EQ(restored.signature_chain(), service.signature_chain());
  EXPECT_EQ(restored.link_snr()[0].value, service.link_snr()[0].value);
}

TEST(ServeService, RestoreRejectsForeignAndServelessCheckpoints) {
  const Fixture fixture;
  ServeService service = fixture.make();
  service.step();
  replay::Checkpoint checkpoint = service.checkpoint();

  ServeService other = fixture.make();
  replay::Checkpoint foreign = checkpoint;
  foreign.config_fingerprint ^= 1;
  EXPECT_EQ(other.restore(foreign), replay::Error::kConfigMismatch);

  replay::Checkpoint serveless = checkpoint;
  serveless.serve_present = false;
  EXPECT_EQ(other.restore(serveless), replay::Error::kMissingSection);

  replay::Checkpoint truncated = checkpoint;
  truncated.serve_payload.resize(truncated.serve_payload.size() / 2);
  EXPECT_EQ(other.restore(truncated), replay::Error::kMalformed);
  // Rejected restores leave the service untouched.
  EXPECT_EQ(other.round(), 0u);
}

TEST(ServeService, FingerprintSeparatesConfigsButNotTuningKnobs) {
  const Fixture fixture;
  ServeConfig base;
  const ServeService a = fixture.make(base);

  ServeConfig margin = base;
  margin.snr_margin = util::Db{1.5};
  EXPECT_NE(fixture.make(margin).config_fingerprint(),
            a.config_fingerprint());

  ServeConfig tuning = base;
  tuning.queue_capacity = 7;
  tuning.shed = ShedPolicy::kDropNewest;
  tuning.incremental = !base.incremental;
  tuning.max_readers = 3;
  EXPECT_EQ(fixture.make(tuning).config_fingerprint(),
            a.config_fingerprint());
}

}  // namespace
}  // namespace rwc::serve
