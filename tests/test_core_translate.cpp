// Tests for the translation step (Theorem 1, step 3): augmented TE output
// -> capacity changes + physical routing. Includes the paper's Fig. 7 and
// Fig. 8 walk-throughs.
#include <gtest/gtest.h>

#include "core/augment.hpp"
#include "core/translate.hpp"
#include "sim/topology.hpp"
#include "te/mcf_te.hpp"

namespace rwc::core {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Gbps;
using namespace util::literals;

/// One 100 G link that could run at 200 G.
struct SingleLinkFixture {
  graph::Graph base;
  EdgeId ab;
  NodeId a, b;

  SingleLinkFixture() {
    a = base.add_node("A");
    b = base.add_node("B");
    ab = base.add_edge(a, b, 100_Gbps);
  }
};

TEST(Translate, UpgradeExtractedWhenFakeEdgeCarriesFlow) {
  SingleLinkFixture fx;
  const std::vector<VariableLink> variable = {{fx.ab, 200_Gbps}};
  const auto augmented =
      augment_topology(fx.base, variable, FixedPenalty{2.0});
  const te::TrafficMatrix demands = {{fx.a, fx.b, 150_Gbps, 0}};
  const auto assignment = te::McfTe{}.solve(augmented.graph, demands);
  EXPECT_NEAR(assignment.total_routed.value, 150.0, 1e-6);

  const auto plan =
      translate_assignment(fx.base, augmented, variable, assignment);
  ASSERT_EQ(plan.upgrades.size(), 1u);
  const CapacityChange& change = plan.upgrades[0];
  EXPECT_EQ(change.edge, fx.ab);
  EXPECT_EQ(change.from, 100_Gbps);
  EXPECT_EQ(change.to, 200_Gbps);
  EXPECT_TRUE(change.is_upgrade());
  EXPECT_NEAR(change.upgrade_traffic.value, 50.0, 1e-6);
  EXPECT_NEAR(change.penalty_paid, 100.0, 1e-6);  // 50 Gbps * 2.0
  EXPECT_NEAR(plan.total_penalty, 100.0, 1e-6);

  // The physical assignment's paths all live on the base edge.
  EXPECT_NEAR(plan.physical_assignment.total_routed.value, 150.0, 1e-6);
  for (const auto& [path, volume] :
       plan.physical_assignment.routings[0].paths)
    for (EdgeId e : path.edges) EXPECT_EQ(e, fx.ab);
  EXPECT_NEAR(plan.physical_assignment.edge_load_gbps[0], 150.0, 1e-6);
}

TEST(Translate, NoUpgradeWhenDemandFitsCurrentCapacity) {
  SingleLinkFixture fx;
  const std::vector<VariableLink> variable = {{fx.ab, 200_Gbps}};
  const auto augmented =
      augment_topology(fx.base, variable, FixedPenalty{2.0});
  const te::TrafficMatrix demands = {{fx.a, fx.b, 80_Gbps, 0}};
  const auto assignment = te::McfTe{}.solve(augmented.graph, demands);
  const auto plan =
      translate_assignment(fx.base, augmented, variable, assignment);
  EXPECT_TRUE(plan.upgrades.empty());
  EXPECT_DOUBLE_EQ(plan.total_penalty, 0.0);
  EXPECT_NEAR(plan.physical_assignment.total_routed.value, 80.0, 1e-6);
}

TEST(Translate, GadgetPathsProjectToSinglePhysicalEdge) {
  SingleLinkFixture fx;
  const std::vector<VariableLink> variable = {{fx.ab, 200_Gbps}};
  AugmentOptions options;
  options.unsplittable_gadget = true;
  const auto augmented = augment_topology(fx.base, variable,
                                          FixedPenalty{2.0}, {}, options);
  const te::TrafficMatrix demands = {{fx.a, fx.b, 150_Gbps, 0}};
  const auto assignment = te::McfTe{}.solve(augmented.graph, demands);
  EXPECT_NEAR(assignment.total_routed.value, 150.0, 1e-6);
  const auto plan =
      translate_assignment(fx.base, augmented, variable, assignment);
  ASSERT_EQ(plan.upgrades.size(), 1u);
  EXPECT_EQ(plan.upgrades[0].to, 200_Gbps);
  // Every projected path is exactly [ab]: gadget plumbing disappears.
  for (const auto& [path, volume] :
       plan.physical_assignment.routings[0].paths) {
    ASSERT_EQ(path.edges.size(), 1u);
    EXPECT_EQ(path.edges[0], fx.ab);
  }
  EXPECT_NEAR(plan.physical_assignment.total_routed.value, 150.0, 1e-6);
}

TEST(Translate, Fig8UnsplittableFullRateSinglePath) {
  // With the gadget, a single unsplittable 200 G flow can cross the link on
  // ONE augmented path (the paper's Fig. 8 point). Plain-mode augmentation
  // cannot do this (it needs two parallel edges).
  SingleLinkFixture fx;
  const std::vector<VariableLink> variable = {{fx.ab, 200_Gbps}};
  AugmentOptions options;
  options.unsplittable_gadget = true;
  const auto augmented = augment_topology(fx.base, variable,
                                          FixedPenalty{2.0}, {}, options);
  // The fake entry edge alone must admit the full 200 G.
  const EdgeId fake = augmented.fake_edge_of[0];
  const graph::Path single{{fake, EdgeId{fake.value + 1},
                            EdgeId{fake.value + 2}},
                           0.0};
  EXPECT_EQ(graph::path_bottleneck(augmented.graph, single), 200_Gbps);

  // Plain mode: no single augmented path carries 200 G.
  const auto plain = augment_topology(fx.base, variable, FixedPenalty{2.0});
  for (EdgeId e : plain.graph.edge_ids())
    EXPECT_LT(plain.graph.edge(e).capacity.value, 200.0);
}

TEST(Translate, ApplyPlanUpdatesTopology) {
  SingleLinkFixture fx;
  ReconfigurationPlan plan;
  CapacityChange change;
  change.edge = fx.ab;
  change.from = 100_Gbps;
  change.to = 175_Gbps;
  plan.upgrades.push_back(change);
  graph::Graph topology = fx.base;
  apply_plan(topology, plan);
  EXPECT_EQ(topology.edge(fx.ab).capacity, 175_Gbps);
}

TEST(Translate, Fig7PenaltyMinimizingUpgrade) {
  // Paper Fig. 7: square topology, demands A->B and C->D grow from 100 to
  // 125 Gbps; links (A,B) and (C,D) can double; penalty 100 per unit on the
  // fake links. A cost-optimal solution exists that activates only ONE fake
  // link; the min-cost engine must not pay more penalty than that solution
  // (25 Gbps of upgraded traffic).
  graph::Graph base = sim::fig7_square();
  const NodeId a = *base.find_node("A");
  const NodeId b = *base.find_node("B");
  const NodeId c = *base.find_node("C");
  const NodeId d = *base.find_node("D");
  const EdgeId ab = *base.find_edge(a, b);
  const EdgeId cd = *base.find_edge(c, d);
  const std::vector<VariableLink> variable = {{ab, 200_Gbps},
                                              {cd, 200_Gbps}};
  const auto augmented =
      augment_topology(base, variable, FixedPenalty{100.0});
  const te::TrafficMatrix demands = {{a, b, 125_Gbps, 0},
                                     {c, d, 125_Gbps, 0}};
  const auto assignment = te::McfTe{}.solve(augmented.graph, demands);
  const auto plan =
      translate_assignment(base, augmented, variable, assignment);
  // Full demand served.
  EXPECT_NEAR(plan.physical_assignment.total_routed.value, 250.0, 1e-5);
  // Cost no worse than the one-upgrade solution: 50 Gbps of extra traffic
  // on upgraded capacity is the optimum (25 via each demand's reroute or
  // 50 through one link); penalty <= 50 * 100.
  EXPECT_LE(plan.total_penalty, 5000.0 + 1e-5);
  EXPECT_GE(plan.upgrades.size(), 1u);
}

}  // namespace
}  // namespace rwc::core
